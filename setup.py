"""Setuptools entry point.

Kept as a plain ``setup.py`` so that ``pip install -e .`` works in
offline environments whose pip/setuptools combination cannot build
PEP 660 editable wheels (no ``wheel`` package available).  Installing
exposes the ``repro`` console script, equivalent to ``python -m repro``.
"""

from setuptools import find_packages, setup

setup(
    name="repro-ssr",
    version="1.8.0",
    description=(
        "Reproduction of 'Silent Self-Stabilizing Ranking: Time Optimal "
        "and Space Efficient' (ICDCS 2025)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    entry_points={
        "console_scripts": ["repro=repro.experiments.cli:main"],
    },
)
