"""Setuptools entry point.

The pyproject.toml carries all metadata; this file exists so that
``pip install -e .`` works in offline environments whose pip/setuptools
combination cannot build PEP 660 editable wheels (no ``wheel`` package
available).
"""

from setuptools import setup

setup()
