"""Cross-engine differential test harness.

One driver runs the same ``(protocol, workload, n, seed)`` cell on every
backend that claims it can, and compares the outcomes according to each
backend's declared exactness class:

* ``"trajectory"`` backends (reference, array, array-jit, the batched
  engine's lanes) must be **bit-identical** — same stopping interaction,
  same counters, same final states, same metric series;
* ``"distribution"`` backends (aggregate, group) must be **consistent in
  distribution** — matched ensembles of an observable pass a two-sample
  Kolmogorov–Smirnov test.

The ad-hoc per-engine equivalence tests grew one comparison helper per
test module; this harness centralizes the canonical trajectory snapshot
(:func:`snapshot`), the bit-identity assertion (:func:`assert_identical`)
and the KS helper (:func:`ks_2sample`, scipy-free) so every suite makes
the same comparison, and adding a backend means adding capability
answers, not new test plumbing.

Conventions baked in (they are what make bit-identity well-defined):

* every engine runs with ``convergence_interval=n`` so stopping decisions
  land on the same interaction;
* per-seed cells derive their generator from the seed integer alone —
  exactly what the study layer's
  :func:`repro.core.rng.cell_seed_sequences` guarantees per cell;
* the batched engine is compared lane-by-lane against the serial run of
  the matching seed, each side with its own fresh
  :class:`~repro.core.array_engine.EngineCache` (sharing one cache is
  *also* exact, but separate caches make the comparison adversarial:
  the two sides tabulate in different orders).
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.array_engine import EngineCache
from repro.core.backends import capability_matrix, get_backend
from repro.core.batched_engine import BatchedArraySimulator

__all__ = [
    "Trajectory",
    "snapshot",
    "assert_identical",
    "trajectory_engines",
    "run_serial",
    "run_batched",
    "differential_trajectories",
    "assert_batched_matches_serial",
    "ks_2sample",
    "assert_ks_consistent",
]


# ----------------------------------------------------------------------
# Canonical trajectory snapshot
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Trajectory:
    """Everything a trajectory-exact engine must reproduce bit-for-bit."""

    converged: bool
    interactions: int
    rank_assignments: int
    resets: int
    states: Tuple[tuple, ...]
    series: Tuple[Tuple[str, Tuple[int, ...], tuple], ...] = ()


def _state_tuple(state) -> tuple:
    as_tuple = getattr(state, "as_tuple", None)
    if as_tuple is not None:
        return as_tuple()
    # States without the interning protocol: dataclasses (slotted or not)
    # canonicalize by field order, anything else by public attributes.
    if dataclasses.is_dataclass(state):
        return dataclasses.astuple(state)
    public = {
        k: v for k, v in vars(state).items() if not k.startswith("_")
    }
    return tuple(sorted(public.items()))


def snapshot(result) -> Trajectory:
    """Canonicalize a :class:`~repro.core.simulation.SimulationResult`."""
    series = tuple(
        (name, tuple(s.interactions), tuple(s.values))
        for name, s in sorted(result.metrics.items())
    )
    return Trajectory(
        converged=bool(result.converged),
        interactions=int(result.interactions),
        rank_assignments=int(result.rank_assignments),
        resets=int(result.resets),
        states=tuple(
            _state_tuple(state) for state in result.configuration.states
        ),
        series=series,
    )


def assert_identical(
    expected: Trajectory, actual: Trajectory, context: str = ""
) -> None:
    """Field-by-field bit-identity with a readable failure message."""
    prefix = f"{context}: " if context else ""
    assert actual.interactions == expected.interactions, (
        f"{prefix}stopped at {actual.interactions}, "
        f"expected {expected.interactions}"
    )
    assert actual.converged == expected.converged, (
        f"{prefix}converged={actual.converged}, "
        f"expected {expected.converged}"
    )
    assert actual.rank_assignments == expected.rank_assignments, (
        f"{prefix}rank_assignments {actual.rank_assignments} != "
        f"{expected.rank_assignments}"
    )
    assert actual.resets == expected.resets, (
        f"{prefix}resets {actual.resets} != {expected.resets}"
    )
    if actual.states != expected.states:
        diff = [
            index
            for index, (a, b) in enumerate(
                zip(actual.states, expected.states)
            )
            if a != b
        ]
        raise AssertionError(
            f"{prefix}final states differ at agent indices {diff[:8]}"
            + ("…" if len(diff) > 8 else "")
        )
    assert actual.series == expected.series, (
        f"{prefix}metric series differ"
    )


# ----------------------------------------------------------------------
# Drivers
# ----------------------------------------------------------------------
def trajectory_engines(
    protocol, workload: str = "fresh", n: Optional[int] = None, **probe
) -> List[str]:
    """Names of agent-kind backends answering trajectory-exact support."""
    n = protocol.n if n is None else n
    names = []
    for name, capability in capability_matrix(
        protocol, workload, n, **probe
    ).items():
        backend = get_backend(name)
        if (
            backend.kind == "agent"
            and not backend.batches
            and capability.supported
            and capability.exactness == "trajectory"
        ):
            names.append(name)
    return names


def run_serial(
    engine: str,
    protocol_factory: Callable[[int], object],
    n: int,
    seed: int,
    *,
    budget: int,
    stop_on_convergence: bool = True,
    cache: Optional[EngineCache] = None,
    metrics_factory: Optional[Callable[[], object]] = None,
    topology=None,
) -> Trajectory:
    """Run one cell on one registered agent backend and snapshot it.

    ``topology`` is a built :class:`repro.topologies.Topology` (or None
    for the complete-graph default) — exactly what the study layer hands
    the backends for a restricted cell.
    """
    backend = get_backend(engine)
    kwargs = dict(
        random_state=seed,
        convergence_interval=n,
    )
    if metrics_factory is not None:
        kwargs["metrics"] = metrics_factory()
    if backend.uses_cache:
        kwargs["cache"] = cache if cache is not None else EngineCache()
    if topology is not None:
        kwargs["topology"] = topology
    simulator = backend.create(protocol_factory(n), **kwargs)
    return snapshot(
        simulator.run(
            max_interactions=budget,
            stop_on_convergence=stop_on_convergence,
        )
    )


def run_batched(
    protocol_factory: Callable[[int], object],
    n: int,
    seeds: Sequence[int],
    *,
    budget: int,
    stop_on_convergence: bool = True,
    cache: Optional[EngineCache] = None,
    metrics_factory: Optional[Callable[[], object]] = None,
    use_soa_kernel: bool = False,
    topology=None,
) -> List[Trajectory]:
    """Run a seed group through one lockstep batched simulator.

    Constructs the :class:`BatchedArraySimulator` directly (not through
    the registry) so unsupported-for-batching protocols still run — they
    take the engine's exact per-lane serial fallback, which the harness
    deliberately also exercises.
    """
    batch = BatchedArraySimulator(
        [protocol_factory(n) for _ in seeds],
        random_states=[np.random.default_rng(seed) for seed in seeds],
        metrics=(
            [metrics_factory() for _ in seeds]
            if metrics_factory is not None
            else None
        ),
        convergence_interval=n,
        cache=cache if cache is not None else EngineCache(),
        use_soa_kernel=use_soa_kernel,
        topology=topology,
    )
    return [
        snapshot(result)
        for result in batch.run(
            budget, stop_on_convergence=stop_on_convergence
        )
    ]


def differential_trajectories(
    protocol_factory: Callable[[int], object],
    n: int,
    seeds: Sequence[int],
    *,
    budget: int,
    workload: str = "fresh",
    stop_on_convergence: bool = True,
    metrics_factory: Optional[Callable[[], object]] = None,
    topology=None,
) -> Dict[str, List[Trajectory]]:
    """Every capable trajectory engine's per-seed snapshots, plus batched.

    Returns ``{engine_name: [trajectory per seed]}`` with ``"reference"``
    always present (the comparison anchor) and ``"array-batched"`` holding
    the lockstep engine's lanes.  Each engine uses one cache across its
    seeds, mirroring how a study amortizes tabulation.  ``topology`` (a
    built :class:`repro.topologies.Topology`) restricts the interaction
    graph on every engine; capability filtering uses its family name, so
    distribution-class backends drop out exactly as they do in a study.
    """
    results: Dict[str, List[Trajectory]] = {}
    probe = {"topology": topology.family} if topology is not None else {}
    for engine in trajectory_engines(protocol_factory(n), workload, n, **probe):
        cache = EngineCache()
        results[engine] = [
            run_serial(
                engine,
                protocol_factory,
                n,
                seed,
                budget=budget,
                stop_on_convergence=stop_on_convergence,
                cache=cache,
                metrics_factory=metrics_factory,
                topology=topology,
            )
            for seed in seeds
        ]
    results["array-batched"] = run_batched(
        protocol_factory,
        n,
        seeds,
        budget=budget,
        stop_on_convergence=stop_on_convergence,
        metrics_factory=metrics_factory,
        topology=topology,
    )
    return results


def assert_batched_matches_serial(
    protocol_factory: Callable[[int], object],
    n: int,
    seeds: Sequence[int],
    *,
    budget: int,
    stop_on_convergence: bool = True,
    metrics_factory: Optional[Callable[[], object]] = None,
    topology=None,
) -> Dict[str, List[Trajectory]]:
    """The headline differential claim, as one call.

    Runs every capable trajectory engine plus the batched engine and
    asserts each against the reference lane-by-lane; returns the full
    result map for further inspection.
    """
    results = differential_trajectories(
        protocol_factory,
        n,
        seeds,
        budget=budget,
        stop_on_convergence=stop_on_convergence,
        metrics_factory=metrics_factory,
        topology=topology,
    )
    anchor = results["reference"]
    for engine, trajectories in results.items():
        if engine == "reference":
            continue
        assert len(trajectories) == len(anchor)
        for seed, expected, actual in zip(seeds, anchor, trajectories):
            assert_identical(
                expected,
                actual,
                context=f"{engine} n={n} seed={seed}",
            )
    return results


# ----------------------------------------------------------------------
# Distribution-class comparison
# ----------------------------------------------------------------------
def ks_2sample(a: Sequence[float], b: Sequence[float]) -> Tuple[float, float]:
    """Two-sample Kolmogorov–Smirnov statistic and asymptotic p-value.

    Implemented on numpy alone (the tier-1 environment does not ship
    scipy) with the standard asymptotic Kolmogorov tail
    ``Q(λ) = 2 Σ (-1)^{k-1} e^{-2 k² λ²}`` — accurate enough for the
    coarse significance levels differential tests use (≥ 1e-4).
    """
    a = np.sort(np.asarray(a, dtype=float))
    b = np.sort(np.asarray(b, dtype=float))
    if a.size == 0 or b.size == 0:
        raise ValueError("both samples must be non-empty")
    grid = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, grid, side="right") / a.size
    cdf_b = np.searchsorted(b, grid, side="right") / b.size
    statistic = float(np.abs(cdf_a - cdf_b).max())
    effective = a.size * b.size / (a.size + b.size)
    lam = (math.sqrt(effective) + 0.12 + 0.11 / math.sqrt(effective)) * statistic
    p_value = 0.0
    sign = 1.0
    for k in range(1, 101):
        term = sign * math.exp(-2.0 * (k * lam) ** 2)
        p_value += term
        if abs(term) < 1e-10:
            break
        sign = -sign
    return statistic, float(min(max(2.0 * p_value, 0.0), 1.0))


def assert_ks_consistent(
    a: Sequence[float],
    b: Sequence[float],
    *,
    alpha: float = 1e-3,
    context: str = "",
) -> None:
    """Fail when two observable ensembles differ beyond significance
    ``alpha`` (fixed-seed ensembles make this deterministic)."""
    statistic, p_value = ks_2sample(a, b)
    prefix = f"{context}: " if context else ""
    assert p_value >= alpha, (
        f"{prefix}KS statistic {statistic:.4f} has p={p_value:.2e} "
        f"< alpha={alpha:.0e}; the distributions differ"
    )
