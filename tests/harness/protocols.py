"""Synthetic protocols shared across engine test suites."""

from repro.core.protocol import PopulationProtocol, TransitionResult
from repro.core.state import AgentState


class LateRandomProtocol(PopulationProtocol):
    """Deterministic counters that start consuming rng at a threshold.

    The per-agent counter space (0…200) overflows the dense-table budget,
    so the engines start on the lazy path; the first agent to reach the
    threshold makes its transition consume randomness, which raises
    ``RandomnessConsumed`` inside the tabulated walk and exercises the
    *mid-run* demotion to the object path — per lane, at staggered times,
    in the batched engine.
    """

    name = "late-random"
    THRESHOLD = 100

    def initial_state(self):
        return AgentState(aux=0)

    def transition(self, u, v, rng):
        u.aux = min((u.aux or 0) + 1, 200)
        if u.aux >= self.THRESHOLD:
            if int(rng.integers(0, 2)):
                v.aux = 0
        return TransitionResult(changed=True)

    def has_converged(self, configuration):
        return False
