"""Shared test harnesses (importable because ``tests/`` is on ``sys.path``
via the root ``tests/conftest.py``)."""
