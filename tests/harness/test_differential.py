"""Cross-engine differential matrix, driven by the shared harness.

The acceptance matrix for the batched replica engine: for StableRanking,
the one-way epidemic and all three comparison baselines, at population
sizes 2, 16 and 64, every lane of one lockstep batched run is
bit-identical to the serial run of the matching seed — and every other
trajectory-class backend the registry offers for the cell agrees too.
The token-counter baseline declares rng-consuming transitions, so its
"batched" run takes the engine's exact per-lane serial fallback; keeping
it in the matrix pins that degradation path to the same bit-identity bar.
"""

import numpy as np
import pytest

from harness.differential import (
    assert_batched_matches_serial,
    assert_identical,
    assert_ks_consistent,
    differential_trajectories,
    ks_2sample,
    run_batched,
    run_serial,
    trajectory_engines,
)
from repro.baselines.burman_ranking import BurmanStyleRanking
from repro.baselines.cai_ranking import CaiRanking
from repro.baselines.token_counter_ranking import TokenCounterRanking
from repro.core.metrics import MetricsCollector, standard_ranking_probes
from repro.protocols.primitives.one_way_epidemic import OneWayEpidemicProtocol
from repro.protocols.ranking.stable_ranking import StableRanking

PROTOCOLS = {
    "stable-ranking": StableRanking,
    "epidemic": OneWayEpidemicProtocol,
    "burman": BurmanStyleRanking,
    "cai": CaiRanking,
    "token-counter": TokenCounterRanking,
}

SEEDS = (0, 1, 3)


class TestTrajectoryMatrix:
    @pytest.mark.parametrize("name", sorted(PROTOCOLS))
    @pytest.mark.parametrize("n", [2, 16, 64])
    def test_fixed_budget_bit_identity(self, name, n):
        budget = 20 * n * n if n > 2 else 400
        assert_batched_matches_serial(
            PROTOCOLS[name],
            n,
            SEEDS,
            budget=budget,
            stop_on_convergence=False,
        )

    @pytest.mark.parametrize("name", ["stable-ranking", "burman", "cai"])
    def test_convergence_stop_bit_identity(self, name):
        # With stop_on_convergence every engine must stop each seed on the
        # exact same interaction — the property the study layer records.
        n = 16
        results = assert_batched_matches_serial(
            PROTOCOLS[name], n, SEEDS, budget=3000 * n * n
        )
        assert all(t.converged for t in results["reference"])

    def test_registry_offers_array_for_every_matrix_protocol(self):
        # The matrix is only meaningful if the engines under test actually
        # serve these cells: reference and array must answer capable for
        # every protocol (token-counter via the array object fallback).
        for name, factory in PROTOCOLS.items():
            engines = trajectory_engines(factory(16))
            assert "reference" in engines, name
            assert "array" in engines, name

    def test_metric_series_bit_identity(self):
        n = 16
        make_metrics = lambda: MetricsCollector(
            standard_ranking_probes(), interval=500
        )
        results = differential_trajectories(
            StableRanking,
            n,
            SEEDS,
            budget=20_000,
            stop_on_convergence=False,
            metrics_factory=make_metrics,
        )
        anchor = results["reference"]
        assert all(t.series for t in anchor)
        for engine, trajectories in results.items():
            for seed, expected, actual in zip(SEEDS, anchor, trajectories):
                assert_identical(
                    expected, actual, context=f"{engine} seed={seed}"
                )

    @pytest.mark.parametrize("n", [8, 32])
    def test_soa_kernel_path_keeps_bit_identity(self, n):
        # The SoA kernel lockstep path is opt-in (the table walk wins on
        # study-shaped workloads) but must stay exact: same matrix, with
        # the kernel's decline-resolving walk handling every segment.
        serial = [
            run_serial("array", StableRanking, n, seed, budget=3000 * n * n)
            for seed in SEEDS
        ]
        batched = run_batched(
            StableRanking,
            n,
            SEEDS,
            budget=3000 * n * n,
            use_soa_kernel=True,
        )
        for seed, expected, actual in zip(SEEDS, serial, batched):
            assert_identical(
                expected, actual, context=f"kernel-path n={n} seed={seed}"
            )

    def test_batched_convergence_dropout_keeps_bit_identity(self):
        # Seeds converge at different times; lanes that converge mid-run
        # are masked out while the rest continue.  Every lane must still
        # report the exact serial stopping interaction and final states.
        n = 16
        seeds = range(8)
        serial = [
            run_serial(
                "array", StableRanking, n, seed, budget=3000 * n * n
            )
            for seed in seeds
        ]
        batched = run_batched(
            StableRanking, n, list(seeds), budget=3000 * n * n
        )
        stops = {t.interactions for t in serial}
        assert len(stops) > 1  # the dropout actually staggers
        for seed, expected, actual in zip(seeds, serial, batched):
            assert_identical(expected, actual, context=f"lane seed={seed}")


class TestKsHelper:
    def test_same_distribution_passes(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=400)
        b = rng.normal(size=400)
        statistic, p_value = ks_2sample(a, b)
        assert 0.0 <= statistic <= 1.0
        assert p_value > 0.05
        assert_ks_consistent(a, b)

    def test_shifted_distribution_fails(self):
        rng = np.random.default_rng(1)
        a = rng.normal(size=400)
        b = rng.normal(loc=1.0, size=400)
        _, p_value = ks_2sample(a, b)
        assert p_value < 1e-3
        with pytest.raises(AssertionError, match="distributions differ"):
            assert_ks_consistent(a, b)

    def test_agrees_with_scipy_when_available(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        rng = np.random.default_rng(2)
        a = rng.exponential(size=150)
        b = rng.exponential(scale=1.3, size=170)
        statistic, p_value = ks_2sample(a, b)
        expected = scipy_stats.ks_2samp(a, b)
        assert statistic == pytest.approx(expected.statistic, abs=1e-12)
        assert p_value == pytest.approx(expected.pvalue, rel=0.1, abs=5e-3)
