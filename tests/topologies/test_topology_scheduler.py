"""Scheduler-level determinism contracts for the topology subsystem.

The study layer's bit-identity guarantees all reduce to two facts pinned
here: (1) the complete-graph :class:`TopologyScheduler` consumes the rng
exactly like :class:`UniformPairScheduler`, and (2) for every family the
buffered ``sample()`` path and the whole-chunk ``sample_chunk()`` path
read the same stream — the same invariant the reference and array
engines rely on for the uniform scheduler.
"""

import numpy as np
import pytest

from repro.core.errors import ProtocolError
from repro.core.scheduler import PairScheduler, UniformPairScheduler
from repro.topologies import TopologyScheduler, build_topology, topology_names


FAMILIES = sorted(topology_names())


def test_topology_scheduler_is_a_pair_scheduler():
    scheduler = TopologyScheduler(build_topology("ring", 8))
    assert isinstance(scheduler, PairScheduler)
    assert scheduler.n == 8
    assert scheduler.topology.family == "ring"


def test_complete_topology_matches_uniform_scheduler_bitwise():
    uniform = UniformPairScheduler(16, np.random.default_rng(9))
    restricted = TopologyScheduler(
        build_topology("complete", 16), np.random.default_rng(9)
    )
    for _ in range(10_000):
        assert uniform.sample() == restricted.sample()


@pytest.mark.parametrize("name", FAMILIES)
def test_buffered_and_chunked_paths_read_the_same_stream(name):
    n = 16
    chunk = 64
    buffered = TopologyScheduler(
        build_topology(name, n), np.random.default_rng(3), chunk_size=chunk
    )
    chunked = TopologyScheduler(
        build_topology(name, n), np.random.default_rng(3), chunk_size=chunk
    )
    singles = [buffered.sample() for _ in range(4 * chunk)]
    chunks = np.concatenate([chunked.sample_chunk(chunk) for _ in range(4)])
    assert singles == [tuple(pair) for pair in chunks]


@pytest.mark.parametrize("name", FAMILIES)
def test_sampled_pairs_stay_on_the_edge_set(name):
    n = 12
    topology = build_topology(name, n)
    pairs, _ = topology.pair_distribution()
    allowed = {(int(i), int(j)) for i, j in pairs}
    scheduler = TopologyScheduler(topology, np.random.default_rng(1))
    drawn = scheduler.sample_chunk(512)
    assert {(int(i), int(j)) for i, j in drawn} <= allowed


def test_delayed_scheduler_conserves_pairs_one_in_one_out():
    scheduler = TopologyScheduler(
        build_topology("delayed", 8, {"base": "ring", "delay": "fixed"}),
        np.random.default_rng(2),
    )
    out = scheduler.sample_chunk(256)
    assert out.shape == (256, 2)
    # With a fixed delay the queue is FIFO: the output is the base stream
    # shifted by the (deterministic) warm-up, so exactly `count` pairs
    # emerge per `count` requested and none are dropped.
    pending = scheduler._stream.pending
    assert pending >= 0


def test_tiny_population_rejected_like_uniform():
    with pytest.raises(ProtocolError):
        UniformPairScheduler(1)
    # The topology itself refuses n < 2 before the scheduler is reached.
    from repro.core.errors import ExperimentError

    with pytest.raises(ExperimentError):
        build_topology("ring", 1)


def test_sample_chunk_rejects_negative_counts():
    scheduler = TopologyScheduler(build_topology("ring", 8))
    with pytest.raises(ValueError):
        scheduler.sample_chunk(-1)
