"""Cross-engine differential matrix under restricted topologies.

The acceptance matrix for the topology subsystem: for three protocols,
across ring / grid2d / power_law / delayed, at population sizes 2, 16
and 64, every capable trajectory engine — reference, array, the jit tier
when present, and every lane of the lockstep batched engine — produces
bit-identical runs from the same seed.  The runs are budget-capped, not
convergence-gated: the ranking protocols rely on complete-graph mixing
and legitimately do not stabilize on a restricted graph, but their
trajectories must still agree to the bit.
"""

import pytest

from harness.differential import assert_batched_matches_serial
from repro.baselines.cai_ranking import CaiRanking
from repro.protocols.primitives.one_way_epidemic import OneWayEpidemicProtocol
from repro.protocols.ranking.stable_ranking import StableRanking
from repro.topologies import build_topology

PROTOCOLS = {
    "epidemic": OneWayEpidemicProtocol,
    "stable-ranking": StableRanking,
    "cai": CaiRanking,
}

SEEDS = (0, 1, 3)


def _build(family: str, n: int):
    # power_law needs n > m: drop to the m=1 tree at the degenerate n=2.
    if family == "power_law" and n <= 2:
        return build_topology(family, n, {"m": 1})
    return build_topology(family, n)


class TestTopologyTrajectoryMatrix:
    @pytest.mark.parametrize("family", ["ring", "grid2d", "power_law", "delayed"])
    @pytest.mark.parametrize("protocol", sorted(PROTOCOLS))
    @pytest.mark.parametrize("n", [2, 16, 64])
    def test_fixed_budget_bit_identity(self, protocol, family, n):
        budget = 10 * n * n if n > 2 else 400
        assert_batched_matches_serial(
            PROTOCOLS[protocol],
            n,
            SEEDS,
            budget=budget,
            stop_on_convergence=False,
            topology=_build(family, n),
        )

    @pytest.mark.parametrize("family", ["ring", "grid2d", "power_law"])
    def test_epidemic_convergence_stop_bit_identity(self, family):
        # The epidemic does complete on every connected topology, so the
        # convergence-stop decision itself (which interaction the engines
        # stop on) is also pinned across engines.
        n = 16
        results = assert_batched_matches_serial(
            OneWayEpidemicProtocol,
            n,
            SEEDS,
            budget=200 * n * n,
            topology=_build(family, n),
        )
        assert all(t.converged for t in results["reference"])

    def test_complete_topology_object_matches_no_topology(self):
        # Passing the explicit complete topology must not perturb the
        # stream: the run is bit-identical to the default scheduler path.
        n = 16
        plain = assert_batched_matches_serial(
            StableRanking, n, SEEDS, budget=5 * n * n,
            stop_on_convergence=False,
        )
        routed = assert_batched_matches_serial(
            StableRanking, n, SEEDS, budget=5 * n * n,
            stop_on_convergence=False,
            topology=build_topology("complete", n),
        )
        assert plain["reference"] == routed["reference"]
