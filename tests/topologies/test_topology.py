"""Unit tests for the topology subsystem: registry, construction,
determinism and — the statistical heart — chi-square uniformity of the
sampled edges against each family's declared pair distribution.
"""

import numpy as np
import pytest

from repro.core.errors import ExperimentError
from repro.topologies import (
    DELAY_DISTRIBUTIONS,
    AliasSampler,
    CompleteTopology,
    DelayedTopology,
    build_csr,
    build_topology,
    connected_components,
    describe_topology,
    get_topology,
    topology_names,
)
from repro.topologies.topology import _CACHE


FAMILIES = (
    "complete",
    "ring",
    "grid2d",
    "random_regular",
    "erdos_renyi",
    "power_law",
    "delayed",
)


class TestRegistry:
    def test_all_families_registered(self):
        assert set(FAMILIES) <= set(topology_names())

    def test_get_unknown_raises_with_choices(self):
        with pytest.raises(ExperimentError, match="unknown topology"):
            get_topology("moebius")

    def test_build_rejects_bad_params(self):
        with pytest.raises(ExperimentError):
            build_topology("ring", 8, {"degree": 3})
        with pytest.raises(ExperimentError):
            build_topology("grid2d", 8, {"rows": 3})  # 3 does not divide 8
        with pytest.raises(ExperimentError):
            build_topology("random_regular", 8, {"degree": 3})  # odd
        with pytest.raises(ExperimentError):
            build_topology("power_law", 4, {"m": 4})  # needs n > m
        with pytest.raises(ExperimentError):
            build_topology("erdos_renyi", 8, {"p": 0.0})

    def test_tiny_populations_rejected(self):
        for name in FAMILIES:
            with pytest.raises(ExperimentError):
                build_topology(name, 1)

    def test_describe_has_family_facts_and_degrees(self):
        info = describe_topology("ring", 8)
        assert info["family"] == "ring"
        assert info["kind"] == "implicit"
        assert (info["deg_min"], info["deg_mean"], info["deg_max"]) == (2, 2.0, 2)
        assert info["pairs"] == 16  # 8 nodes x 2 directed neighbors


class TestDeterminism:
    @pytest.mark.parametrize("name", ["random_regular", "erdos_renyi", "power_law"])
    def test_graph_rebuild_is_identical_across_cache_clears(self, name):
        first = build_topology(name, 32, {"graph_seed": 3})
        pairs_a, probs_a = first.pair_distribution()
        _CACHE.clear()
        second = build_topology(name, 32, {"graph_seed": 3})
        pairs_b, probs_b = second.pair_distribution()
        assert np.array_equal(pairs_a, pairs_b)
        assert np.array_equal(probs_a, probs_b)

    def test_graph_seed_changes_the_graph(self):
        a, _ = build_topology("erdos_renyi", 32, {"graph_seed": 0}).pair_distribution()
        b, _ = build_topology("erdos_renyi", 32, {"graph_seed": 1}).pair_distribution()
        assert not (a.shape == b.shape and np.array_equal(a, b))

    def test_identity_includes_family_n_and_params(self):
        a = build_topology("grid2d", 12, {"rows": 3})
        b = build_topology("grid2d", 12, {"rows": 4})
        c = build_topology("grid2d", 12, {"rows": 3})
        assert a.identity() != b.identity()
        assert a.identity() == c.identity()

    def test_build_cache_returns_the_same_object(self):
        a = build_topology("power_law", 16)
        b = build_topology("power_law", 16)
        assert a is b


class TestPairDistributions:
    @pytest.mark.parametrize("name", FAMILIES)
    @pytest.mark.parametrize("n", [8, 64])
    def test_distribution_is_normalized_and_loop_free(self, name, n):
        topology = build_topology(name, n)
        pairs, probs = topology.pair_distribution()
        assert pairs.shape == (len(probs), 2)
        assert np.all(pairs[:, 0] != pairs[:, 1])
        assert np.all((pairs >= 0) & (pairs < n))
        assert probs.sum() == pytest.approx(1.0)
        assert np.all(probs > 0)

    def test_complete_distribution_is_uniform_over_ordered_pairs(self):
        pairs, probs = CompleteTopology(8).pair_distribution()
        assert len(pairs) == 8 * 7
        assert np.allclose(probs, 1.0 / (8 * 7))

    @pytest.mark.parametrize("name", ["ring", "grid2d", "power_law"])
    @pytest.mark.parametrize("n", [8, 64])
    def test_sampled_edges_match_declared_weights_chi_square(self, name, n):
        """Chi-square goodness of fit: long-run edge frequencies must match
        ``pair_distribution`` for every family the sweep exercises."""
        topology = build_topology(name, n)
        pairs, probs = topology.pair_distribution()
        draws = 200_000
        rng = np.random.default_rng(7)
        sampled = topology.sample_pairs(rng, draws)
        # Count draws per declared pair via a dense (i, j) -> index map.
        index = {(int(i), int(j)): k for k, (i, j) in enumerate(pairs)}
        counts = np.zeros(len(pairs), dtype=np.int64)
        for i, j in sampled:
            counts[index[(int(i), int(j))]] += 1
        assert counts.sum() == draws  # nothing sampled off the edge set
        expected = probs * draws
        assert expected.min() >= 5  # chi-square validity
        statistic = float(((counts - expected) ** 2 / expected).sum())
        dof = len(pairs) - 1
        # Normal approximation of the chi-square tail: mean=dof, var=2*dof.
        # 5 sigma keeps the fixed-seed test deterministic and far from
        # flaky while still catching any systematic weighting error.
        assert statistic < dof + 5.0 * np.sqrt(2.0 * dof), (
            f"{name} n={n}: chi2={statistic:.1f} dof={dof}"
        )

    def test_power_law_has_hubs(self):
        stats = build_topology("power_law", 256).degree_stats()
        assert stats["deg_max"] > 4 * stats["deg_min"]


class TestDelayedTopology:
    def test_default_wraps_complete_with_geometric_delays(self):
        topology = build_topology("delayed", 16)
        assert topology.params["base"] == "complete"
        assert topology.params["delay"] == "geometric"
        assert not topology.is_complete

    def test_rejects_nested_delayed_base(self):
        with pytest.raises(ExperimentError):
            DelayedTopology(16, base="delayed")

    def test_rejects_unknown_delay_distribution(self):
        with pytest.raises(ExperimentError):
            DelayedTopology(16, delay="zipf")
        assert set(DELAY_DISTRIBUTIONS) == {"geometric", "fixed", "uniform"}

    def test_direct_sampling_is_refused(self):
        topology = build_topology("delayed", 16)
        with pytest.raises(ExperimentError, match="stream"):
            topology.sample_pairs(np.random.default_rng(0), 4)

    @pytest.mark.parametrize("delay", sorted(DELAY_DISTRIBUTIONS))
    def test_delayed_stream_emits_only_base_edges(self, delay):
        topology = DelayedTopology(12, base="ring", delay=delay)
        pairs, _ = topology.pair_distribution()
        allowed = {(int(i), int(j)) for i, j in pairs}
        stream = topology.stream()
        rng = np.random.default_rng(5)
        out = np.concatenate(
            [stream.sample_chunk(rng, 64) for _ in range(4)]
        )
        assert len(out) == 256
        assert {(int(i), int(j)) for i, j in out} <= allowed


class TestSamplingPrimitives:
    def test_alias_sampler_matches_weights(self):
        weights = np.array([1.0, 2.0, 3.0, 4.0])
        sampler = AliasSampler(weights)
        draws = sampler.sample(np.random.default_rng(11), 100_000)
        freq = np.bincount(draws, minlength=4) / 100_000
        assert np.allclose(freq, weights / weights.sum(), atol=0.01)

    def test_build_csr_rejects_self_loops(self):
        with pytest.raises(ValueError):
            build_csr(4, np.array([[0, 0]]))

    def test_connected_components_labels(self):
        labels = connected_components(5, np.array([[0, 1], [3, 4]]))
        assert labels[0] == labels[1]
        assert labels[3] == labels[4]
        assert labels[0] != labels[3] != labels[2]
