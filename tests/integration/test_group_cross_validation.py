"""Statistical cross-validation of the group-count engine.

The group engine's correctness claim is exactness *in distribution*: the
lumped count process visits the same multiset trajectory law as the
agent-level reference simulator, so any observable that is a function of
the counts must have the same distribution under both engines.  These
tests check that claim empirically with two-sample tests on matched
ensembles of independently seeded runs:

* Kolmogorov–Smirnov on exact stabilization times (the reference runs
  with ``convergence_interval=1``, so both sides record the exact first
  interaction at which the goal holds) — through the shared differential
  harness's scipy-free KS helper, so the comparison runs on the minimal
  tier-1 environment;
* chi-square (contingency) on the distribution of the informed count
  after a fixed interaction budget (scipy-only; skipped without it).

The protocols used here (the one-way epidemic and the Cai baseline) have
small state spaces that every seed revisits, so one shared
:class:`~repro.core.group_engine.GroupTransitionModel` serves the whole
ensemble and the suite stays fast.  The significance level is 0.001 with
fixed seeds: the test is deterministic, and the ensembles were checked to
pass comfortably — a failure means a real distribution change, not noise.
"""

import numpy as np
import pytest

from harness.differential import assert_ks_consistent
from repro.baselines.cai_ranking import CaiRanking
from repro.core.group_engine import GroupCountSimulator, GroupTransitionModel
from repro.core.simulation import Simulator
from repro.protocols.primitives.one_way_epidemic import OneWayEpidemicProtocol

ALPHA = 0.001


def reference_stabilization_time(protocol, seed):
    """Exact first interaction at which the protocol's goal holds."""
    simulator = Simulator(
        protocol,
        configuration=protocol.initial_configuration(),
        random_state=seed,
        convergence_interval=1,
    )
    result = simulator.run(max_interactions=10**9)
    assert result.converged
    return result.interactions


def group_stabilization_time(protocol, seed, model):
    simulator = GroupCountSimulator(
        protocol,
        configuration=protocol.initial_configuration(),
        model=model,
        random_state=seed,
    )
    result = simulator.run(max_interactions=10**9)
    assert result.converged
    return result.interactions


class TestStabilizationTimeDistributions:
    @pytest.mark.parametrize("n,runs", [(8, 300), (16, 200), (32, 120)])
    def test_epidemic_times_match_reference(self, n, runs):
        protocol = OneWayEpidemicProtocol(n)
        model = GroupTransitionModel(protocol)
        reference = [
            reference_stabilization_time(OneWayEpidemicProtocol(n), seed)
            for seed in range(runs)
        ]
        group = [
            group_stabilization_time(OneWayEpidemicProtocol(n), seed, model)
            for seed in range(1000, 1000 + runs)
        ]
        assert_ks_consistent(
            reference,
            group,
            alpha=ALPHA,
            context=f"epidemic stabilization times at n={n}",
        )

    @pytest.mark.parametrize("n,runs", [(8, 200), (16, 120)])
    def test_cai_ranking_times_match_reference(self, n, runs):
        protocol = CaiRanking(n)
        model = GroupTransitionModel(protocol)
        reference = [
            reference_stabilization_time(CaiRanking(n), seed)
            for seed in range(runs)
        ]
        group = [
            group_stabilization_time(CaiRanking(n), seed, model)
            for seed in range(1000, 1000 + runs)
        ]
        assert_ks_consistent(
            reference,
            group,
            alpha=ALPHA,
            context=f"Cai stabilization times at n={n}",
        )


class TestFixedBudgetMarginals:
    def test_epidemic_informed_count_after_fixed_budget(self):
        """Chi-square on the informed count after exactly T interactions."""
        stats = pytest.importorskip("scipy.stats")
        n, T, runs = 16, 3 * 16, 400
        reference_counts = []
        for seed in range(runs):
            protocol = OneWayEpidemicProtocol(n)
            simulator = Simulator(
                protocol,
                configuration=protocol.initial_configuration(),
                random_state=seed,
            )
            simulator.run(max_interactions=T, stop_on_convergence=False)
            reference_counts.append(
                protocol.informed_count(simulator.configuration)
            )
        shared_protocol = OneWayEpidemicProtocol(n)
        model = GroupTransitionModel(shared_protocol)
        group_counts = []
        for seed in range(1000, 1000 + runs):
            protocol = OneWayEpidemicProtocol(n)
            simulator = GroupCountSimulator(
                protocol,
                state_counts=protocol.count_profile(),
                model=model,
                random_state=seed,
            )
            simulator.run(max_interactions=T)
            group_counts.append(simulator.goal.measure())
        # Contingency chi-square over the informed-count marginals, with
        # sparse tail bins pooled to keep expected cell counts healthy.
        values = sorted(set(reference_counts) | set(group_counts))
        table = np.array(
            [
                [sum(1 for c in sample if c == value) for value in values]
                for sample in (reference_counts, group_counts)
            ]
        )
        pooled = [table[:, 0]]
        for column in table.T[1:]:
            if pooled[-1].sum() < 10:
                pooled[-1] = pooled[-1] + column
            else:
                pooled.append(column)
        table = np.array(pooled).T
        result = stats.chi2_contingency(table)
        assert result.pvalue > ALPHA, (
            f"informed-count marginals diverge after T={T}: "
            f"chi2={result.statistic:.2f} p={result.pvalue:.2e}"
        )
