"""End-to-end integration tests across modules.

These tests exercise the full stack — workload generators, protocols,
simulator, metrics, analysis — the way the examples and benchmarks do, on
population sizes small enough for CI.
"""

import math

import pytest

from repro import (
    SpaceEfficientRanking,
    StableRanking,
    Simulator,
    MetricsCollector,
    standard_ranking_probes,
)
from repro.analysis import (
    normalized_stabilization_time,
    summarize,
    theorem1_interaction_bound,
)
from repro.baselines import CaiRanking
from repro.core.rng import spawn_rngs
from repro.experiments import (
    duplicate_rank_configuration,
    figure2_initial_configuration,
    figure3_initial_configuration,
)
from repro.protocols.ranking import AggregateSpaceEfficientRanking


class TestTheorem1EndToEnd:
    """SpaceEfficientRanking: valid ranking in O(n² log n), n + Θ(log n) states."""

    def test_repeated_runs_all_converge_within_theorem_bound(self):
        n = 48
        budget = int(theorem1_interaction_bound(n, constant=40.0))
        times = []
        for rng in spawn_rngs(0, 5):
            simulator = Simulator(SpaceEfficientRanking(n), random_state=rng)
            result = simulator.run(max_interactions=budget)
            assert result.converged
            times.append(result.interactions)
        normalized = [normalized_stabilization_time(t, n) for t in times]
        assert summarize(normalized).mean < 20

    def test_leader_election_output_follows_from_ranking(self):
        n = 32
        protocol = SpaceEfficientRanking(n)
        simulator = Simulator(protocol, random_state=1)
        result = simulator.run(max_interactions=400 * n * n)
        assert result.converged
        leaders = [
            index
            for index, state in enumerate(result.configuration.states)
            if protocol.leader_output(state)
        ]
        assert len(leaders) == 1
        assert result.configuration[leaders[0]].rank == 1


class TestTheorem2EndToEnd:
    """StableRanking: stabilization from arbitrary configurations."""

    def test_metrics_capture_reset_and_recovery(self):
        n = 48
        protocol = StableRanking(n, l_max=4 * int(math.log2(n)))
        configuration = figure2_initial_configuration(protocol)
        metrics = MetricsCollector(standard_ranking_probes(), interval=n * n // 2)
        simulator = Simulator(
            protocol, configuration=configuration, random_state=2, metrics=metrics
        )
        result = simulator.run(max_interactions=3000 * n * n)
        assert result.converged
        ranked = metrics.get("ranked_agents").values
        # The series starts at n-1, dips after the reset and ends at n.
        assert ranked[0] == n - 1
        assert min(ranked) < n - 1
        assert ranked[-1] == n

    def test_recovery_from_duplicate_ranks_is_fast(self):
        n = 32
        protocol = StableRanking(n)
        configuration = duplicate_rank_configuration(n, duplicates=4, random_state=3)
        simulator = Simulator(protocol, configuration=configuration, random_state=4)
        result = simulator.run(max_interactions=4000 * n * n)
        assert result.converged
        assert result.resets >= 1


class TestEngineAgreement:
    def test_reference_and_aggregate_reach_the_same_final_state_shape(self):
        n = 64
        protocol = SpaceEfficientRanking(n)
        configuration = figure3_initial_configuration(protocol)
        simulator = Simulator(protocol, configuration=configuration, random_state=5)
        reference = simulator.run(max_interactions=500 * n * n)
        assert reference.converged

        engine = AggregateSpaceEfficientRanking(n, random_state=6)
        aggregate = engine.run(max_interactions=10**12)
        assert aggregate.converged
        # Same asymptotic regime: both within a factor ~3 of each other.
        ratio = reference.interactions / aggregate.interactions
        assert 1 / 3 < ratio < 3


class TestBaselineComparisonEndToEnd:
    def test_cai_grows_cubically_while_stable_stays_near_quadratic(self):
        """Normalized (by n²) time of the Cai baseline roughly doubles when n
        doubles, while StableRanking's grows only logarithmically — the
        state/time trade-off the paper's comparison is about."""

        def mean_normalized(protocol_factory, n, seeds):
            times = []
            for seed in seeds:
                result = Simulator(protocol_factory(n), random_state=seed).run(
                    max_interactions=4000 * n * n
                )
                assert result.converged
                times.append(result.interactions / (n * n))
            return summarize(times).mean

        cai_small = mean_normalized(CaiRanking, 24, range(3))
        cai_large = mean_normalized(CaiRanking, 48, range(3))
        stable_small = mean_normalized(StableRanking, 24, range(3))
        stable_large = mean_normalized(StableRanking, 48, range(3))

        cai_growth = cai_large / cai_small
        stable_growth = stable_large / stable_small
        assert cai_growth > 1.5  # ~linear growth of the normalized time
        assert stable_growth < cai_growth
