"""Root test configuration.

Puts ``tests/`` itself on ``sys.path`` so suites in any subdirectory can
import the shared :mod:`harness` package (pytest only auto-inserts each
test file's own directory), and exposes the differential harness as
fixtures for suites that prefer injection over imports.
"""

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))

from harness import differential  # noqa: E402  (needs the path insert)


@pytest.fixture
def engine_cache():
    """A fresh shared :class:`~repro.core.array_engine.EngineCache`."""
    from repro.core.array_engine import EngineCache

    return EngineCache()


@pytest.fixture
def differential_harness():
    """The cross-engine differential driver module (see its docstring)."""
    return differential


@pytest.fixture
def assert_batched_matches_serial():
    """The harness's one-call batched-vs-serial bit-identity assertion."""
    return differential.assert_batched_matches_serial
