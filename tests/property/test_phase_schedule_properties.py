"""Property-based tests for the phase schedule."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocols.ranking.phases import PhaseSchedule, wait_count_init

population_sizes = st.integers(min_value=2, max_value=5000)


@given(n=population_sizes)
@settings(max_examples=100, deadline=None)
def test_f_sequence_is_decreasing_and_ends_at_one(n):
    schedule = PhaseSchedule(n)
    values = [schedule.f(k) for k in range(1, schedule.phase_count + 2)]
    assert values[0] == n
    assert values[-1] == 1
    assert all(values[i] > values[i + 1] for i in range(len(values) - 1))


@given(n=population_sizes)
@settings(max_examples=100, deadline=None)
def test_halving_property(n):
    """Each f_{k+1} is exactly ⌈f_k / 2⌉."""
    schedule = PhaseSchedule(n)
    for k in range(1, schedule.phase_count + 1):
        assert schedule.f(k + 1) == math.ceil(schedule.f(k) / 2)


@given(n=population_sizes)
@settings(max_examples=100, deadline=None)
def test_phases_partition_ranks_two_to_n(n):
    schedule = PhaseSchedule(n)
    assigned = []
    for k in range(1, schedule.phase_count + 1):
        assigned.extend(schedule.ranks_in_phase(k))
    assert sorted(assigned) == list(range(2, n + 1))


@given(n=population_sizes)
@settings(max_examples=100, deadline=None)
def test_phase_count_is_ceil_log2(n):
    assert PhaseSchedule(n).phase_count == max(1, math.ceil(math.log2(n)))


@given(n=population_sizes, rank=st.integers(min_value=2, max_value=5000))
@settings(max_examples=100, deadline=None)
def test_phase_of_rank_is_consistent_with_ranges(n, rank):
    if rank > n:
        rank = 2 + (rank % (n - 1)) if n > 2 else 2
    schedule = PhaseSchedule(n)
    phase = schedule.phase_of_rank(rank)
    assert rank in schedule.ranks_in_phase(phase)


@given(n=population_sizes, c_wait=st.floats(min_value=0.5, max_value=8.0))
@settings(max_examples=60, deadline=None)
def test_wait_count_matches_formula(n, c_wait):
    assert wait_count_init(n, c_wait) == max(1, math.ceil(c_wait * math.log2(n)))


@given(n=population_sizes, phase=st.integers(min_value=1, max_value=20))
@settings(max_examples=100, deadline=None)
def test_unranked_leader_threshold_matches_floor_formula(n, phase):
    schedule = PhaseSchedule(n)
    assert schedule.unranked_leader_threshold(phase) == n // (2**phase) or (
        schedule.unranked_leader_threshold(phase) == math.floor(n * 2.0**-phase)
    )
