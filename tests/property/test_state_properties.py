"""Property-based tests for agent states and configurations."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.configuration import Configuration
from repro.core.state import AgentState, Role, classify_role

optional_small = st.one_of(st.none(), st.integers(min_value=0, max_value=50))
optional_positive = st.one_of(st.none(), st.integers(min_value=1, max_value=50))

agent_states = st.builds(
    AgentState,
    rank=optional_positive,
    phase=optional_positive,
    wait_count=optional_positive,
    coin=st.one_of(st.none(), st.integers(min_value=0, max_value=1)),
    alive_count=optional_small,
    reset_count=optional_small,
    delay_count=optional_small,
    is_leader=st.one_of(st.none(), st.integers(min_value=0, max_value=1)),
    leader_done=st.one_of(st.none(), st.integers(min_value=0, max_value=1)),
    le_count=optional_small,
    coin_count=optional_small,
    le_level=optional_small,
)


@given(state=agent_states)
@settings(max_examples=200, deadline=None)
def test_copy_preserves_equality_and_independence(state):
    clone = state.copy()
    assert clone.as_tuple() == state.as_tuple()
    clone.rank = (clone.rank or 0) + 1
    assert clone.as_tuple() != state.as_tuple()


@given(state=agent_states)
@settings(max_examples=200, deadline=None)
def test_clear_keep_coin_only_preserves_coin(state):
    coin_before = state.coin
    state.clear(keep_coin=True)
    blank = AgentState(coin=coin_before)
    assert state.as_tuple() == blank.as_tuple()


@given(state=agent_states)
@settings(max_examples=200, deadline=None)
def test_classification_is_total_and_consistent(state):
    role = classify_role(state)
    assert isinstance(role, Role)
    if role is Role.RANKED:
        assert state.rank is not None
        assert not state.is_propagating and not state.is_dormant
    if role is Role.PROPAGATING:
        assert state.reset_count is not None and state.reset_count > 0
    if role is Role.DORMANT:
        assert state.reset_count == 0 and state.delay_count not in (None, 0)


@given(state=agent_states)
@settings(max_examples=200, deadline=None)
def test_double_coin_toggle_is_identity(state):
    before = state.coin
    state.toggle_coin()
    state.toggle_coin()
    assert state.coin == before


@given(ranks=st.lists(st.integers(min_value=1, max_value=30), min_size=1, max_size=30))
@settings(max_examples=200, deadline=None)
def test_valid_ranking_iff_permutation(ranks):
    config = Configuration([AgentState(rank=r) for r in ranks])
    expected = sorted(ranks) == list(range(1, len(ranks) + 1))
    assert config.is_valid_ranking() == expected
    assert config.ranked_count() == len(ranks)


@given(
    ranks=st.lists(
        st.one_of(st.none(), st.integers(min_value=1, max_value=20)),
        min_size=1,
        max_size=20,
    )
)
@settings(max_examples=200, deadline=None)
def test_duplicate_detection_matches_multiset(ranks):
    config = Configuration([AgentState(rank=r) for r in ranks])
    assigned = [r for r in ranks if r is not None]
    expected_duplicates = sorted({r for r in assigned if assigned.count(r) > 1})
    assert config.duplicate_ranks() == expected_duplicates
