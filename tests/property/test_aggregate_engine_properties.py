"""Property-based tests for the event-driven SpaceEfficientRanking engine.

The engine's correctness rests on two bookkeeping invariants that must hold
after *every* event, whatever random trajectory is taken: the population is
conserved across the tracked groups, and the event weights always describe a
valid probability decomposition over ordered pairs.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocols.ranking.aggregate_space_efficient import (
    AggregateSpaceEfficientRanking,
)


def population_accounted_for(engine: AggregateSpaceEfficientRanking) -> int:
    """Number of agents the aggregate state accounts for."""
    phase_agents = sum(engine.phase_counts.values())
    leader = 1  # the leader exists in either mode ("rank" or "wait")
    ranked_others = engine.ranked_count() - (1 if engine.leader_mode == "rank" else 0)
    return engine.unconverted + phase_agents + ranked_others + leader


@given(
    n=st.integers(min_value=4, max_value=256),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    steps=st.integers(min_value=1, max_value=400),
)
@settings(max_examples=60, deadline=None)
def test_population_is_conserved_along_any_trajectory(n, seed, steps):
    engine = AggregateSpaceEfficientRanking(n, random_state=seed)
    assert population_accounted_for(engine) == n
    for _ in range(steps):
        if engine.is_done() or engine.step_event() is None:
            break
        assert population_accounted_for(engine) == n
        assert engine.unconverted >= 0
        assert all(count > 0 for count in engine.phase_counts.values())


@given(
    n=st.integers(min_value=4, max_value=256),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    steps=st.integers(min_value=0, max_value=300),
)
@settings(max_examples=60, deadline=None)
def test_event_weights_remain_a_valid_decomposition(n, seed, steps):
    engine = AggregateSpaceEfficientRanking(n, random_state=seed)
    for _ in range(steps):
        weights = engine.event_weights()
        assert all(weight >= 0 for weight in weights.values())
        assert sum(weights.values()) <= engine.total_ordered_pairs
        if engine.is_done() or engine.step_event() is None:
            break


@given(
    n=st.integers(min_value=4, max_value=128),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=30, deadline=None)
def test_completed_runs_assign_every_rank_exactly_once(n, seed):
    engine = AggregateSpaceEfficientRanking(n, random_state=seed)
    result = engine.run(max_interactions=10**12)
    assert result.converged
    assert engine.ranked_count() == n
    # The leader keeps rank 1; the other agents received 2 … n exactly once.
    assert engine.ranked_fraction() == 1.0


@given(
    n=st.integers(min_value=4, max_value=128),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=30, deadline=None)
def test_interactions_never_decrease_and_exceed_events(n, seed):
    engine = AggregateSpaceEfficientRanking(n, random_state=seed)
    previous = 0
    for _ in range(200):
        if engine.is_done() or engine.step_event() is None:
            break
        assert engine.interactions > previous
        previous = engine.interactions
        assert engine.interactions >= engine.events
