"""Property-based tests for the batched replica engine.

The engine's contract is a single sentence — *lane ``k`` of a batched run
is bit-identical to a serial array run with seed ``k``* — which makes it
a natural property: hypothesis draws random protocol/population/seed
matrices (duplicate seeds included: two lanes with the same stream must
produce the same trajectory twice), random budgets that cut runs off
mid-flight or let lanes converge and drop out at staggered times, and
protocols spanning every engine mode — dense complete tables (epidemic,
Cai at small ``n``), lazy tabulation (StableRanking, Burman), declared
rng consumption (serial fallback), and the *mid-run* demotion of lanes
that start consuming randomness at a state threshold
(:class:`LateRandomProtocol`, shared with the serial engine's own
demotion tests).

Budgets stay small: the property is about lockstep bookkeeping edges
(masking, demotion, fallback), not throughput — the 100-seed wall-clock
claims live in ``benchmarks/``.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from harness.differential import (
    assert_identical,
    run_batched,
    run_serial,
    snapshot,
)
from harness.protocols import LateRandomProtocol
from repro.baselines.burman_ranking import BurmanStyleRanking
from repro.baselines.cai_ranking import CaiRanking
from repro.core.array_engine import ArraySimulator, EngineCache
from repro.protocols.primitives.one_way_epidemic import OneWayEpidemicProtocol
from repro.protocols.ranking.stable_ranking import StableRanking

PROTOCOLS = [
    StableRanking,
    OneWayEpidemicProtocol,
    BurmanStyleRanking,
    CaiRanking,
]

seed_lists = st.lists(
    st.integers(min_value=0, max_value=2**31 - 1),
    min_size=1,
    max_size=6,
)


@given(
    factory=st.sampled_from(PROTOCOLS),
    n=st.sampled_from([2, 5, 16, 33]),
    seeds=seed_lists,
    budget_factor=st.integers(min_value=1, max_value=40),
    stop=st.booleans(),
)
@settings(max_examples=25, deadline=None)
def test_batched_lane_equals_serial_seed(factory, n, seeds, budget_factor, stop):
    budget = budget_factor * n * n
    serial = [
        run_serial(
            "array", factory, n, seed, budget=budget,
            stop_on_convergence=stop,
        )
        for seed in seeds
    ]
    batched = run_batched(
        factory, n, seeds, budget=budget, stop_on_convergence=stop,
    )
    for seed, expected, actual in zip(seeds, serial, batched):
        assert_identical(
            expected, actual,
            context=f"{factory.__name__} n={n} seed={seed} budget={budget}",
        )


@given(
    seeds=st.lists(
        st.integers(min_value=0, max_value=10_000), min_size=2, max_size=5
    ),
    threshold=st.integers(min_value=3, max_value=40),
    budget=st.integers(min_value=50, max_value=4_000),
)
@settings(max_examples=15, deadline=None)
def test_mixed_mid_run_demotion_keeps_lane_identity(seeds, threshold, budget):
    """Lanes demote to the object path at per-lane random times.

    ``LateRandomProtocol`` counters grow deterministically until the
    threshold, then transitions start consuming rng — so each lane hits
    ``RandomnessConsumed`` at a different step and the batched engine must
    demote exactly that lane mid-segment, re-executing the raising pair on
    the object path with the same generator state the serial engine has.
    """
    n = 8

    def factory(population):
        protocol = LateRandomProtocol(population)
        protocol.THRESHOLD = threshold
        return protocol

    serial = []
    for seed in seeds:
        simulator = ArraySimulator(
            factory(n),
            random_state=seed,
            convergence_interval=n,
            cache=EngineCache(),
        )
        serial.append(
            simulator.run(max_interactions=budget, stop_on_convergence=False)
        )
    batched = run_batched(
        factory, n, seeds, budget=budget, stop_on_convergence=False,
    )
    for seed, expected, actual in zip(seeds, serial, batched):
        assert_identical(
            snapshot(expected), actual,
            context=f"late-random seed={seed} threshold={threshold}",
        )


@given(
    n=st.sampled_from([4, 16]),
    seeds=st.lists(
        st.integers(min_value=0, max_value=500), min_size=3, max_size=6
    ),
)
@settings(max_examples=10, deadline=None)
def test_convergence_dropout_masks_exactly(n, seeds):
    """Runs long enough that lanes converge and drop out at different
    interactions; masked lanes must keep their serial stopping point."""
    budget = 3000 * n * n
    serial = [
        run_serial("array", StableRanking, n, seed, budget=budget)
        for seed in seeds
    ]
    batched = run_batched(StableRanking, n, seeds, budget=budget)
    for seed, expected, actual in zip(seeds, serial, batched):
        assert_identical(
            expected, actual, context=f"dropout n={n} seed={seed}"
        )
    assert all(t.converged for t in batched)
