"""Property-based invariants of the group-count engine.

The engine's exactness argument rests on bookkeeping that must hold after
*every* event on *any* trajectory: the count vector is a distribution of
exactly ``n`` agents over states, the incremental row-sum cache matches a
from-scratch recomputation, the total productive weight never exceeds the
number of ordered pairs, and the goal's incrementally maintained measure
agrees with a direct evaluation over the counts.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.cai_ranking import CaiRanking
from repro.core.group_engine import GroupCountSimulator
from repro.protocols.primitives.one_way_epidemic import OneWayEpidemicProtocol


def fresh_simulator(protocol, seed):
    profile = protocol.count_profile()
    if profile is not None:
        return GroupCountSimulator(
            protocol, state_counts=profile, random_state=seed
        )
    return GroupCountSimulator(
        protocol,
        configuration=protocol.initial_configuration(),
        random_state=seed,
    )


def check_invariants(simulator, n):
    counts = simulator.count_vector()
    assert counts.sum() == n
    assert (counts >= 0).all()
    # The incremental row-sum cache matches a from-scratch recomputation.
    cached = simulator._row_sums.copy()
    simulator._recompute_row_sums()
    assert np.array_equal(cached, simulator._row_sums)
    # The productive weight is a sub-distribution over ordered pairs.
    row_weights, total = simulator._row_weights()
    assert (row_weights >= 0).all()
    assert 0 <= total <= n * (n - 1)
    # The goal's incremental measure agrees with direct evaluation.
    goal = simulator.goal
    direct = sum(
        count
        for code, count in simulator.state_counts().items()
        if getattr(simulator.codec.prototype(code), "informed", True)
    )
    if isinstance(simulator._protocol, OneWayEpidemicProtocol):
        assert goal.measure() == direct


@given(
    n=st.integers(min_value=4, max_value=128),
    m_fraction=st.floats(min_value=0.25, max_value=1.0),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    steps=st.integers(min_value=1, max_value=200),
)
@settings(max_examples=40, deadline=None)
def test_epidemic_invariants_along_any_trajectory(n, m_fraction, seed, steps):
    protocol = OneWayEpidemicProtocol(n, m=max(1, int(m_fraction * n)))
    simulator = fresh_simulator(protocol, seed)
    check_invariants(simulator, n)
    for _ in range(steps):
        if simulator.is_done() or simulator.step() is None:
            break
        check_invariants(simulator, n)


@given(
    n=st.integers(min_value=4, max_value=24),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    steps=st.integers(min_value=1, max_value=120),
)
@settings(max_examples=25, deadline=None)
def test_cai_ranking_invariants_along_any_trajectory(n, seed, steps):
    protocol = CaiRanking(n)
    simulator = fresh_simulator(protocol, seed)
    check_invariants(simulator, n)
    for _ in range(steps):
        if simulator.is_done() or simulator.step() is None:
            break
        check_invariants(simulator, n)
    # The goal certifies a permutation exactly when the counts do.
    if simulator.is_done():
        ranks = []
        for code, count in simulator.state_counts().items():
            rank = getattr(simulator.codec.prototype(code), "rank", None)
            if rank is not None:
                ranks.extend([rank] * count)
        assert sorted(ranks) == list(range(1, n + 1))
