"""Property-based tests on protocol transition invariants.

These tests throw randomly generated (but state-space-respecting) agent
pairs at the transition functions and check invariants that must hold for
*every* interaction, not just those reachable from a fresh start — exactly
the situation the self-stabilizing protocol must cope with.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rng import make_rng
from repro.core.state import AgentState
from repro.protocols.ranking.phases import PhaseSchedule
from repro.protocols.ranking.rules import RankingRules
from repro.protocols.ranking.stable_ranking import StableRanking
from repro.protocols.reset.propagate_reset import PropagateReset

N = 32
SCHEDULE = PhaseSchedule(N)
STABLE = StableRanking(N)


def main_agent_states():
    """States from StableRanking's main state space plus LE and reset states."""
    coin = st.integers(min_value=0, max_value=1)
    ranked = st.builds(AgentState, rank=st.integers(min_value=1, max_value=N))
    phase_agent = st.builds(
        AgentState,
        phase=st.integers(min_value=1, max_value=SCHEDULE.phase_count),
        coin=coin,
        alive_count=st.integers(min_value=1, max_value=STABLE.l_max),
    )
    waiting = st.builds(
        AgentState,
        wait_count=st.integers(min_value=1, max_value=STABLE.wait_init),
        coin=coin,
        alive_count=st.integers(min_value=1, max_value=STABLE.l_max),
    )
    electing = st.builds(
        AgentState,
        coin=coin,
        le_count=st.integers(min_value=1, max_value=STABLE.l_max),
        coin_count=st.integers(min_value=0, max_value=5),
        leader_done=st.integers(min_value=0, max_value=1),
        is_leader=st.integers(min_value=0, max_value=1),
    )
    resetting = st.builds(
        AgentState,
        coin=coin,
        reset_count=st.integers(min_value=0, max_value=STABLE.reset.r_max),
        delay_count=st.integers(min_value=1, max_value=STABLE.reset.d_max),
    )
    return st.one_of(ranked, phase_agent, waiting, electing, resetting)


def _in_state_space(state: AgentState) -> bool:
    """Whether a state lies in StableRanking's state space (loose check)."""
    if state.rank is not None and not state.in_reset and not state.in_leader_election:
        return 1 <= state.rank <= N
    if state.phase is not None:
        if not 1 <= state.phase <= SCHEDULE.phase_count:
            return False
    if state.wait_count is not None:
        if not 0 <= state.wait_count <= STABLE.wait_init:
            return False
    if state.alive_count is not None and not 0 <= state.alive_count <= STABLE.l_max:
        return False
    if state.reset_count is not None and not 0 <= state.reset_count <= STABLE.reset.r_max:
        return False
    if state.delay_count is not None and not 0 <= state.delay_count <= STABLE.reset.d_max:
        return False
    return True


class TestRankingRulesInvariants:
    @given(
        leader_rank=st.integers(min_value=1, max_value=N),
        phase=st.integers(min_value=1, max_value=SCHEDULE.phase_count),
    )
    @settings(max_examples=200, deadline=None)
    def test_assigned_ranks_lie_in_the_phase_range(self, leader_rank, phase):
        rules = RankingRules(SCHEDULE, wait_init=4)
        leader = AgentState(rank=leader_rank)
        agent = AgentState(phase=phase)
        outcome = rules.apply(leader, agent)
        if outcome.rank_assigned is not None:
            assert outcome.rank_assigned in SCHEDULE.ranks_in_phase(phase)
            assert agent.rank == outcome.rank_assigned

    @given(
        phase_u=st.integers(min_value=1, max_value=SCHEDULE.phase_count),
        phase_v=st.integers(min_value=1, max_value=SCHEDULE.phase_count),
    )
    @settings(max_examples=100, deadline=None)
    def test_phase_epidemic_never_decreases_phases(self, phase_u, phase_v):
        rules = RankingRules(SCHEDULE, wait_init=4)
        u, v = AgentState(phase=phase_u), AgentState(phase=phase_v)
        rules.apply(u, v)
        assert u.phase >= phase_u
        assert v.phase >= phase_v
        assert u.phase == v.phase == max(phase_u, phase_v)


class TestStableRankingInvariants:
    @given(u=main_agent_states(), v=main_agent_states())
    @settings(max_examples=300, deadline=None)
    def test_transitions_stay_inside_the_state_space(self, u, v):
        protocol = StableRanking(N)
        rng = make_rng(0)
        protocol.transition(u, v, rng)
        assert _in_state_space(u)
        assert _in_state_space(v)

    @given(u=main_agent_states(), v=main_agent_states())
    @settings(max_examples=300, deadline=None)
    def test_transition_is_deterministic_given_states(self, u, v):
        """The transition uses no hidden randomness beyond the rng argument."""
        protocol_a, protocol_b = StableRanking(N), StableRanking(N)
        u_a, v_a = u.copy(), v.copy()
        u_b, v_b = u.copy(), v.copy()
        protocol_a.transition(u_a, v_a, make_rng(7))
        protocol_b.transition(u_b, v_b, make_rng(7))
        assert u_a.as_tuple() == u_b.as_tuple()
        assert v_a.as_tuple() == v_b.as_tuple()

    @given(u=main_agent_states(), v=main_agent_states())
    @settings(max_examples=300, deadline=None)
    def test_duplicate_ranks_always_trigger_a_reset(self, u, v):
        protocol = StableRanking(N)
        u.rank = 5
        u.phase = None
        u.wait_count = None
        u.reset_count = None
        u.delay_count = None
        u.leader_done = None
        u.is_leader = None
        u.le_count = None
        u.coin = None
        u.alive_count = None
        v = u.copy()
        before = protocol.reset.triggered_count
        result = protocol.transition(u, v, make_rng(0))
        assert result.reset_triggered
        assert protocol.reset.triggered_count == before + 1


class TestPropagateResetInvariants:
    reset_states = st.builds(
        AgentState,
        coin=st.integers(min_value=0, max_value=1),
        reset_count=st.one_of(st.none(), st.integers(min_value=0, max_value=10)),
        delay_count=st.one_of(st.none(), st.integers(min_value=1, max_value=20)),
        rank=st.one_of(st.none(), st.integers(min_value=1, max_value=N)),
    )

    @given(u=reset_states, v=reset_states)
    @settings(max_examples=300, deadline=None)
    def test_counters_never_go_negative(self, u, v):
        reset = PropagateReset(10, 20, restart=lambda agent: None)
        reset.apply(u, v)
        for agent in (u, v):
            assert agent.reset_count is None or agent.reset_count >= 0
            assert agent.delay_count is None or agent.delay_count >= 0
