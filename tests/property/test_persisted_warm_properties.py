"""Persisted-warm runs are bit-identical to cold runs, as a property.

The table store's headline claim is that it changes *when* transition
tables are computed, never *what* trajectories an engine produces.  This
suite states that as a property over protocols × seeds for each backend
family that persists through the store:

* ``array`` (serial, lazy and dense modes): a fresh cache pointed at a
  populated store replays bit-identically to a plain cold cache;
* ``array-batched``: every lane of a store-warm lockstep run matches the
  cold lockstep run *and* the serial anchor of its seed;
* ``group``: a :class:`GroupTransitionModel` restored from its persisted
  snapshot samples the exact event sequence of the model that wrote it.

Budgets stay small — the property is about key remapping, probe-class
recomputation and snapshot replay ordering, not throughput.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from harness.differential import (
    assert_identical,
    run_batched,
    run_serial,
)
from repro.baselines.burman_ranking import BurmanStyleRanking
from repro.core.array_engine import EngineCache
from repro.core.group_engine import GroupCountSimulator, GroupTransitionModel
from repro.core.table_store import TableStore
from repro.protocols.primitives.one_way_epidemic import OneWayEpidemicProtocol
from repro.protocols.ranking.stable_ranking import StableRanking

#: Lazy-mode (StableRanking, Burman) and dense-mode (epidemic) coverage.
PROTOCOLS = [StableRanking, OneWayEpidemicProtocol, BurmanStyleRanking]

protocol_indices = st.integers(min_value=0, max_value=len(PROTOCOLS) - 1)
seeds = st.integers(min_value=0, max_value=2**31 - 1)
seed_lists = st.lists(seeds, min_size=1, max_size=4)


@settings(max_examples=10, deadline=None)
@given(index=protocol_indices, seed=seeds)
def test_serial_store_warm_matches_cold(tmp_path_factory, index, seed):
    factory = PROTOCOLS[index]
    n = 24
    budget = 60 * n * n
    store = tmp_path_factory.mktemp("tables")

    writer = EngineCache(persist_dir=store)
    cold = run_serial("array", factory, n, seed, budget=budget, cache=writer)
    writer.spill()

    warm = run_serial(
        "array", factory, n, seed, budget=budget,
        cache=EngineCache(persist_dir=store),
    )
    assert_identical(
        cold, warm, context=f"{factory.__name__} seed={seed}"
    )


@settings(max_examples=8, deadline=None)
@given(index=protocol_indices, group=seed_lists)
def test_batched_store_warm_matches_cold_and_serial(
    tmp_path_factory, index, group
):
    factory = PROTOCOLS[index]
    n = 24
    budget = 40 * n * n
    store = tmp_path_factory.mktemp("tables")

    writer = EngineCache(persist_dir=store)
    cold = run_batched(factory, n, group, budget=budget, cache=writer)
    writer.spill()

    warm = run_batched(
        factory, n, group, budget=budget,
        cache=EngineCache(persist_dir=store),
    )
    for seed, cold_lane, warm_lane in zip(group, cold, warm):
        assert_identical(
            cold_lane, warm_lane,
            context=f"{factory.__name__} batched seed={seed}",
        )
        anchor = run_serial(
            "array", factory, n, seed, budget=budget,
            cache=EngineCache(persist_dir=store),
        )
        assert_identical(
            anchor, warm_lane,
            context=f"{factory.__name__} serial-anchor seed={seed}",
        )


def _run_group(protocol, seed, model):
    simulator = GroupCountSimulator(
        protocol,
        state_counts=protocol.count_profile(),
        model=model,
        random_state=np.random.default_rng(seed),
    )
    n = protocol.n
    outcome = simulator.run(max_interactions=50 * n * n)
    return (
        bool(outcome.converged),
        int(outcome.interactions),
        int(outcome.events),
        int(outcome.distinct_states),
    )


@settings(max_examples=10, deadline=None)
@given(seed=seeds)
def test_group_model_snapshot_replays_exactly(tmp_path_factory, seed):
    n = 256
    store = TableStore(tmp_path_factory.mktemp("tables"))

    protocol = OneWayEpidemicProtocol(n)
    model = GroupTransitionModel(protocol)
    cold = _run_group(protocol, seed, model)
    entry = store.entry_for(protocol)
    assert entry.write_group_model(*model.snapshot())

    replay_protocol = OneWayEpidemicProtocol(n)
    snapshot = store.entry_for(replay_protocol).load_group_model()
    assert snapshot is not None
    restored = GroupTransitionModel.from_snapshot(replay_protocol, *snapshot)
    assert restored.tabulated_states == model.tabulated_states
    warm = _run_group(replay_protocol, seed, restored)
    assert warm == cold
