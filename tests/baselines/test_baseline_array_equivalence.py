"""Bit-identity of the three baselines between the reference and array engines.

The comparison experiments pit ``StableRanking`` against the Burman-style,
Cai-style and token-counter baselines; for ``engine="array"`` (and the
``auto`` default that resolves to it) to be trustworthy there, every
baseline must reproduce the reference trajectory exactly for the same
seed — including the token counter, whose GS leader-election substrate
consumes randomness and therefore runs on the array engine's object
fallback path.
"""

import pytest

from repro.baselines.burman_ranking import BurmanStyleRanking
from repro.baselines.cai_ranking import CaiRanking, CaiState
from repro.baselines.token_counter_ranking import TokenCounterRanking
from repro.core.array_engine import ArraySimulator
from repro.core.configuration import Configuration
from repro.core.simulation import Simulator

BASELINES = {
    "burman": BurmanStyleRanking,
    "cai": CaiRanking,
    "token-counter": TokenCounterRanking,
}


def state_snapshot(configuration):
    states = []
    for state in configuration.states:
        as_tuple = getattr(state, "as_tuple", None)
        states.append(as_tuple() if as_tuple is not None else (state.rank,))
    return states


def run_pair(factory, n, seed, interactions, configuration=None):
    def build(engine_cls):
        config = None
        if configuration is not None:
            config = Configuration([state.copy() for state in configuration.states])
        return engine_cls(
            factory(n),
            configuration=config,
            random_state=seed,
            convergence_interval=n,
        )

    reference = build(Simulator)
    array = build(ArraySimulator)
    ref_result = reference.run(
        max_interactions=interactions, stop_on_convergence=False
    )
    arr_result = array.run(
        max_interactions=interactions, stop_on_convergence=False
    )
    return reference, array, ref_result, arr_result


class TestBitIdentity:
    @pytest.mark.parametrize("name", sorted(BASELINES))
    @pytest.mark.parametrize("n", [2, 16, 64])
    def test_fixed_budget_trajectory_matches(self, name, n):
        factory = BASELINES[name]
        budget = 8_000 if n < 64 else 20_000
        reference, array, ref_result, arr_result = run_pair(
            factory, n, seed=11, interactions=budget
        )
        assert arr_result.interactions == ref_result.interactions
        assert arr_result.rank_assignments == ref_result.rank_assignments
        assert arr_result.resets == ref_result.resets
        assert state_snapshot(array.configuration) == state_snapshot(
            reference.configuration
        )

    @pytest.mark.parametrize("name", sorted(BASELINES))
    def test_convergence_stop_parity(self, name):
        # With matched convergence cadences the engines stop on the exact
        # same interaction (this is what the study layer relies on when
        # recording stabilization times from any backend).
        n = 16
        factory = BASELINES[name]
        budget = 3000 * n * n

        def build(engine_cls):
            return engine_cls(
                factory(n), random_state=3, convergence_interval=n
            )

        ref_result = build(Simulator).run(max_interactions=budget)
        arr_result = build(ArraySimulator).run(max_interactions=budget)
        assert ref_result.converged and arr_result.converged
        assert arr_result.interactions == ref_result.interactions

    def test_cai_adversarial_start_matches(self):
        # Self-stabilization path: an arbitrary label multiset, which for
        # small n runs on complete dense tables thanks to the protocol's
        # declared seed states.
        n = 16
        import numpy as np

        rng = np.random.default_rng(5)
        configuration = Configuration(
            [CaiState(rank=int(rng.integers(1, n + 1))) for _ in range(n)]
        )
        reference, array, ref_result, arr_result = run_pair(
            CaiRanking, n, seed=6, interactions=10_000,
            configuration=configuration,
        )
        assert array.mode == "dense"
        assert state_snapshot(array.configuration) == state_snapshot(
            reference.configuration
        )


class TestCodecDeclarations:
    @pytest.mark.parametrize("name", sorted(BASELINES))
    def test_field_columns_cover_declared_fields(self, name):
        # Every baseline declares codec_fields; projecting a populated
        # codec through StateCodec.field_columns must produce one int64
        # column per field with None mapped to the undefined sentinel.
        import numpy as np

        from repro.core.codec import StateCodec

        protocol = BASELINES[name](8)
        fields = protocol.codec_fields()
        assert fields, name
        codec = StateCodec()
        codec.encode_many(protocol.initial_configuration().states)
        columns = codec.field_columns(fields)
        assert set(columns) == set(fields)
        for column in columns.values():
            assert column.dtype == np.int64
            assert len(column) == codec.size

    @pytest.mark.parametrize("name", sorted(BASELINES))
    def test_rng_consumption_is_declared(self, name):
        declared = BASELINES[name](8).consumes_randomness()
        assert declared is (name == "token-counter")


class TestEngineRouting:
    def test_burman_and_cai_run_tabulated(self):
        assert ArraySimulator(BurmanStyleRanking(16), random_state=0).mode == "lazy"
        assert ArraySimulator(CaiRanking(16), random_state=0).mode == "dense"

    def test_cai_large_n_uses_lazy_tables(self):
        assert ArraySimulator(CaiRanking(128), random_state=0).mode == "lazy"

    def test_token_counter_declares_object_path(self):
        # The declaration short-circuits straight to the object path — no
        # doomed tabulation attempt, still bit-exact (tested above).
        assert (
            ArraySimulator(TokenCounterRanking(16), random_state=0).mode
            == "object"
        )
