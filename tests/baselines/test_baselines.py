"""Tests for the baseline ranking protocols (experiment E5 substrate)."""

import pytest

from repro.baselines.burman_ranking import BurmanStyleRanking
from repro.baselines.cai_ranking import CaiRanking, CaiState
from repro.baselines.token_counter_ranking import TokenCounterRanking
from repro.core.configuration import Configuration
from repro.core.rng import make_rng
from repro.core.simulation import Simulator
from repro.core.state import AgentState


class TestCaiRanking:
    def test_initial_configuration_is_all_collisions(self):
        config = CaiRanking(5).initial_configuration()
        assert all(state.rank == 1 for state in config.states)

    def test_collision_moves_responder_to_next_label(self):
        protocol = CaiRanking(4)
        left, right = CaiState(rank=2), CaiState(rank=2)
        result = protocol.transition(left, right, make_rng(0))
        assert result.changed
        assert left.rank == 2 and right.rank == 3

    def test_label_wraps_around(self):
        protocol = CaiRanking(4)
        left, right = CaiState(rank=4), CaiState(rank=4)
        protocol.transition(left, right, make_rng(0))
        assert right.rank == 1

    def test_distinct_labels_are_a_noop(self):
        protocol = CaiRanking(4)
        left, right = CaiState(rank=1), CaiState(rank=2)
        assert not protocol.transition(left, right, make_rng(0)).changed

    def test_uses_exactly_n_states(self):
        assert CaiRanking(17).state_space_size() == 17
        assert CaiRanking(17).overhead_states() == 0

    @pytest.mark.parametrize("n,seed", [(8, 0), (16, 1), (24, 2)])
    def test_converges_from_worst_case(self, n, seed):
        protocol = CaiRanking(n)
        simulator = Simulator(protocol, random_state=seed)
        result = simulator.run(max_interactions=100 * n**3)
        assert result.converged
        assert protocol.is_silent(result.configuration)

    def test_self_stabilizes_from_arbitrary_labels(self):
        n = 16
        rng = make_rng(3)
        config = Configuration([CaiState(rank=int(rng.integers(1, n + 1))) for _ in range(n)])
        protocol = CaiRanking(n)
        simulator = Simulator(protocol, configuration=config, random_state=4)
        assert simulator.run(max_interactions=100 * n**3).converged


class TestBurmanStyleRanking:
    def test_overhead_states_contain_a_linear_counter_term(self):
        # The leader's next-rank counter contributes at least n overhead states,
        # which is the Θ(n) term the paper's protocol eliminates.
        assert BurmanStyleRanking(64).overhead_states() >= 64
        assert BurmanStyleRanking(1024).overhead_states() >= 1024
        difference = BurmanStyleRanking(1024).overhead_states() - BurmanStyleRanking(
            64
        ).overhead_states()
        assert difference >= 1024 - 64

    def test_counter_leader_assigns_sequential_ranks(self):
        protocol = BurmanStyleRanking(8)
        leader = AgentState(rank=1, aux=2)
        unranked = AgentState(coin=0, alive_count=protocol.l_max)
        result = protocol._main_transition(leader, unranked)
        assert result.rank_assigned == 2
        assert unranked.rank == 2
        assert leader.aux == 3

    def test_duplicate_ranks_trigger_reset(self):
        protocol = BurmanStyleRanking(8)
        left, right = AgentState(rank=3), AgentState(rank=3)
        result = protocol._main_transition(left, right)
        assert result.reset_triggered

    def test_two_counter_leaders_trigger_reset(self):
        protocol = BurmanStyleRanking(8)
        left = AgentState(rank=1, aux=4)
        right = AgentState(rank=2, aux=5)
        result = protocol._main_transition(left, right)
        assert result.reset_triggered

    @pytest.mark.parametrize("seed", [0, 1])
    def test_converges_from_fresh_start(self, seed):
        n = 16
        protocol = BurmanStyleRanking(n)
        simulator = Simulator(protocol, random_state=seed)
        result = simulator.run(max_interactions=3000 * n * n)
        assert result.converged

    def test_recovers_from_duplicate_rank_fault(self):
        from repro.experiments.workloads import duplicate_rank_configuration

        n = 16
        protocol = BurmanStyleRanking(n)
        configuration = duplicate_rank_configuration(n, random_state=5)
        simulator = Simulator(protocol, configuration=configuration, random_state=6)
        result = simulator.run(max_interactions=3000 * n * n)
        assert result.converged


class TestTokenCounterRanking:
    def test_overhead_states_are_linear(self):
        assert TokenCounterRanking(100).overhead_states() >= 100

    def test_leader_assigns_in_order(self):
        protocol = TokenCounterRanking(8)
        leader = AgentState(rank=1, aux=2)
        blank = AgentState()
        result = protocol.transition(leader, blank, make_rng(0))
        assert result.rank_assigned == 2
        assert leader.aux == 3

    def test_counter_stops_at_n(self):
        protocol = TokenCounterRanking(4)
        leader = AgentState(rank=1, aux=5)
        blank = AgentState()
        result = protocol.transition(leader, blank, make_rng(0))
        assert result.rank_assigned is None
        assert blank.rank is None

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_converges_from_fresh_start(self, seed):
        n = 32
        protocol = TokenCounterRanking(n)
        simulator = Simulator(protocol, random_state=seed)
        result = simulator.run(max_interactions=400 * n * n)
        assert result.converged
        assert result.configuration.is_valid_ranking()
