"""Tests for the engine-backend registry and capability negotiation."""

import pytest

from repro.baselines.burman_ranking import BurmanStyleRanking
from repro.baselines.cai_ranking import CaiRanking
from repro.baselines.token_counter_ranking import TokenCounterRanking
from repro.core import backends
from repro.core.array_engine import ArraySimulator, make_simulator
from repro.core.errors import ExperimentError
from repro.core.simulation import Simulator
from repro.protocols.ranking.space_efficient import SpaceEfficientRanking
from repro.protocols.ranking.stable_ranking import StableRanking


class TestRegistry:
    def test_builtin_backends_are_registered(self):
        assert backends.backend_names() == (
            "reference", "array", "array-batched", "array-jit",
            "aggregate", "group",
        )
        assert backends.engine_choices() == (
            "reference", "array", "array-batched", "array-jit",
            "aggregate", "group", "auto",
        )

    def test_get_backend(self):
        assert backends.get_backend("array").name == "array"
        with pytest.raises(ExperimentError, match="unknown engine"):
            backends.get_backend("warp")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ExperimentError, match="already registered"):
            backends.register_backend(backends.ReferenceBackend())

    def test_kinds(self):
        assert backends.get_backend("reference").kind == "agent"
        assert backends.get_backend("array").kind == "agent"
        assert backends.get_backend("aggregate").kind == "aggregate"
        assert backends.get_backend("group").kind == "count"


class TestCapabilities:
    def test_reference_supports_everything(self):
        capability = backends.get_backend("reference").capabilities(
            TokenCounterRanking(8), "fresh", 8, series=True
        )
        assert capability.supported
        assert capability.exactness == "trajectory"
        assert capability.throughput_hint == 1.0

    def test_array_negotiates_rng_declaration(self):
        array = backends.get_backend("array")
        tabulated = array.capabilities(StableRanking(8), "fresh", 8)
        fallback = array.capabilities(TokenCounterRanking(8), "fresh", 8)
        assert tabulated.supported and fallback.supported
        assert tabulated.throughput_hint > 1.0
        assert fallback.throughput_hint < 1.0
        assert "object fallback" in fallback.reason

    def test_aggregate_constraints_live_in_its_capabilities(self):
        aggregate = backends.get_backend("aggregate")
        ok = aggregate.capabilities(SpaceEfficientRanking(8), "figure3", 8)
        assert ok.supported and ok.exactness == "distribution"
        wrong_protocol = aggregate.capabilities(StableRanking(8), "figure3", 8)
        assert not wrong_protocol.supported
        assert "space-efficient-ranking" in wrong_protocol.reason
        wrong_workload = aggregate.capabilities(
            SpaceEfficientRanking(8), "fresh", 8
        )
        assert not wrong_workload.supported
        with_series = aggregate.capabilities(
            SpaceEfficientRanking(8), "figure3", 8, series=True
        )
        assert not with_series.supported

    def test_group_negotiates_from_declarations(self):
        from repro.protocols.primitives.one_way_epidemic import (
            OneWayEpidemicProtocol,
        )

        group = backends.get_backend("group")
        # Deterministic protocol with a count goal: supported everywhere,
        # but the hint only beats the agent engines for a compact declared
        # state space at large n.
        small = group.capabilities(OneWayEpidemicProtocol(8), "fresh", 8)
        assert small.supported and small.exactness == "distribution"
        assert small.throughput_hint < 1.0
        large = group.capabilities(
            OneWayEpidemicProtocol(10**6), "fresh", 10**6
        )
        assert large.throughput_hint > backends.ArrayBackend.HINT_TABULATED
        # Undeclared or rng-consuming transitions cannot be lumped exactly.
        rng_consuming = group.capabilities(
            TokenCounterRanking(8), "fresh", 8
        )
        assert not rng_consuming.supported
        assert "consumes_randomness" in rng_consuming.reason
        # Series and mid-run events are agent-level features.
        with_series = group.capabilities(
            OneWayEpidemicProtocol(8), "fresh", 8, series=True
        )
        assert not with_series.supported
        with_events = group.capabilities(
            OneWayEpidemicProtocol(8), "fresh", 8, events=True
        )
        assert not with_events.supported


class TestBatchedCapabilities:
    def test_batch_size_drives_the_hint(self):
        # The lockstep engine only wins when a whole seed group amortizes
        # one tabulation; for one or two seeds the serial array engine
        # must keep the cell.
        batched = backends.get_backend("array-batched")
        protocol = StableRanking(8)
        solo = batched.capabilities(protocol, "fresh", 8, batch_seeds=1)
        group = batched.capabilities(protocol, "fresh", 8, batch_seeds=8)
        assert solo.supported and group.supported
        assert solo.throughput_hint < backends.ArrayBackend.HINT_TABULATED
        assert group.throughput_hint > backends.ArrayBackend.HINT_TABULATED

    def test_auto_resolution_respects_batch_seeds(self):
        protocol = StableRanking(8)
        solo, _ = backends.resolve_backend(
            protocol, "fresh", 8, engine="auto", batch_seeds=1
        )
        group, capability = backends.resolve_backend(
            protocol, "fresh", 8, engine="auto", batch_seeds=100
        )
        assert solo.name == "array"
        assert group.name == "array-batched"
        assert group.batches
        assert capability.exactness == "trajectory"

    def test_declared_rng_and_rank_capacity_are_unsupported(self):
        from repro.core.array_engine import _MAX_RANK

        batched = backends.get_backend("array-batched")
        declared = batched.capabilities(
            TokenCounterRanking(8), "fresh", 8, batch_seeds=8
        )
        assert not declared.supported
        assert "consumes randomness" in declared.reason
        huge = batched.capabilities(
            StableRanking(8), "fresh", _MAX_RANK, batch_seeds=8
        )
        assert not huge.supported
        assert "rank capacity" in huge.reason

    def test_events_are_refused(self):
        capability = backends.get_backend("array-batched").capabilities(
            StableRanking(8), "fresh", 8, events=True, batch_seeds=8
        )
        assert not capability.supported
        assert "lockstep" in capability.reason

    def test_single_cell_create_is_the_serial_engine(self):
        # An explicit engine="array-batched" request for one cell still
        # runs: the serial array engine is the one-lane special case.
        simulator = backends.get_backend("array-batched").create(
            StableRanking(8), random_state=0
        )
        assert isinstance(simulator, ArraySimulator)


class TestResolution:
    def test_auto_picks_array_for_tabulable_protocols(self):
        for protocol in (StableRanking(8), BurmanStyleRanking(8), CaiRanking(8)):
            backend, capability = backends.resolve_backend(
                protocol, "fresh", 8, engine="auto"
            )
            assert backend.name == "array", protocol.name
            assert capability.exactness == "trajectory"

    def test_auto_avoids_array_beyond_rank_capacity(self):
        # At n >= 2^17 the array engine's packed tables cannot hold the
        # ranks and it falls back to the object path, so the capability
        # hint must drop below the reference and auto must not pick it.
        n = 1 << 17
        capability = backends.get_backend("array").capabilities(
            StableRanking(n), "fresh", n
        )
        assert capability.supported
        assert capability.throughput_hint < 1.0
        assert "object fallback" in capability.reason
        backend, _ = backends.resolve_backend(
            StableRanking(n), "fresh", n, engine="auto", kinds=("agent",)
        )
        assert backend.name == "reference"

    def test_auto_prefers_reference_for_rng_consuming_protocols(self):
        backend, _ = backends.resolve_backend(
            TokenCounterRanking(8), "fresh", 8, engine="auto"
        )
        assert backend.name == "reference"

    def test_auto_picks_aggregate_for_figure3_cells(self):
        backend, _ = backends.resolve_backend(
            SpaceEfficientRanking(8), "figure3", 8, engine="auto"
        )
        assert backend.name == "aggregate"
        # ...but not when the cell needs metric series.
        backend, _ = backends.resolve_backend(
            SpaceEfficientRanking(8), "figure3", 8, engine="auto", series=True
        )
        assert backend.name != "aggregate"

    def test_explicit_engine_raises_with_backend_reason(self):
        with pytest.raises(ExperimentError, match="space-efficient-ranking"):
            backends.resolve_backend(
                StableRanking(8), "figure3", 8, engine="aggregate"
            )

    def test_kind_restriction(self):
        backend, _ = backends.resolve_backend(
            SpaceEfficientRanking(8), "figure3", 8, engine="auto",
            kinds=("agent",),
        )
        assert backend.kind == "agent"
        with pytest.raises(ExperimentError):
            backends.resolve_backend(
                StableRanking(8), "fresh", 8, engine="aggregate",
                kinds=("agent",),
            )

    def test_auto_routes_large_compact_cells_to_group(self):
        from repro.protocols.primitives.one_way_epidemic import (
            OneWayEpidemicProtocol,
        )

        backend, capability = backends.resolve_backend(
            OneWayEpidemicProtocol(10**6), "fresh", 10**6, engine="auto"
        )
        assert backend.name == "group"
        assert capability.exactness == "distribution"
        # At small n the agent engines keep the cell.
        backend, _ = backends.resolve_backend(
            OneWayEpidemicProtocol(64), "fresh", 64, engine="auto"
        )
        assert backend.name != "group"

    def test_exactness_pin_filters_auto_and_rejects_mismatches(self):
        from repro.protocols.primitives.one_way_epidemic import (
            OneWayEpidemicProtocol,
        )

        # The pin routes a small cell to the group engine even though the
        # array engine holds the higher hint.
        backend, capability = backends.resolve_backend(
            OneWayEpidemicProtocol(64), "fresh", 64, engine="auto",
            exactness="distribution",
        )
        assert backend.name == "group"
        assert capability.exactness == "distribution"
        # A concrete engine of the wrong class is rejected outright.
        with pytest.raises(ExperimentError, match="exactness"):
            backends.resolve_backend(
                OneWayEpidemicProtocol(64), "fresh", 64,
                engine="reference", exactness="distribution",
            )
        # A pin no backend can satisfy fails with the requirement named.
        with pytest.raises(ExperimentError, match="distribution"):
            backends.resolve_backend(
                TokenCounterRanking(8), "fresh", 8, engine="auto",
                exactness="distribution",
            )

    def test_capability_matrix_covers_all_backends(self):
        matrix = backends.capability_matrix(StableRanking(8), "fresh", 8)
        assert set(matrix) == {
            "reference", "array", "array-batched", "array-jit",
            "aggregate", "group",
        }
        assert matrix["array"].supported
        assert not matrix["aggregate"].supported
        assert matrix["group"].supported


class TestMakeSimulatorAuto:
    def test_auto_builds_the_resolved_engine(self):
        assert isinstance(
            make_simulator(StableRanking(8), engine="auto"), ArraySimulator
        )
        assert isinstance(
            make_simulator(TokenCounterRanking(8), engine="auto"), Simulator
        )
