"""Unit tests for the uniform random pair scheduler."""

import numpy as np
import pytest

from repro.core.errors import ProtocolError
from repro.core.scheduler import UniformPairScheduler


class TestSchedulerBasics:
    def test_rejects_tiny_population(self):
        with pytest.raises(ProtocolError):
            UniformPairScheduler(1)

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(ValueError):
            UniformPairScheduler(4, chunk_size=0)

    def test_total_ordered_pairs(self):
        assert UniformPairScheduler(7).total_ordered_pairs == 42

    def test_sample_returns_distinct_ordered_pair(self):
        scheduler = UniformPairScheduler(5, random_state=0)
        for _ in range(500):
            initiator, responder = scheduler.sample()
            assert 0 <= initiator < 5
            assert 0 <= responder < 5
            assert initiator != responder

    def test_sample_chunk_shape_and_distinctness(self):
        scheduler = UniformPairScheduler(6, random_state=1)
        chunk = scheduler.sample_chunk(1000)
        assert chunk.shape == (1000, 2)
        assert np.all(chunk[:, 0] != chunk[:, 1])
        assert chunk.min() >= 0 and chunk.max() < 6

    def test_sample_chunk_rejects_negative(self):
        with pytest.raises(ValueError):
            UniformPairScheduler(4).sample_chunk(-1)

    def test_pairs_iterator(self):
        scheduler = UniformPairScheduler(4, random_state=2)
        pairs = scheduler.pairs()
        seen = [next(pairs) for _ in range(10)]
        assert len(seen) == 10

    def test_reproducibility_with_same_seed(self):
        first = UniformPairScheduler(8, random_state=42)
        second = UniformPairScheduler(8, random_state=42)
        assert [first.sample() for _ in range(50)] == [second.sample() for _ in range(50)]


class TestSchedulerUniformity:
    def test_marginals_are_roughly_uniform(self):
        """Each ordered pair should appear with probability ~1/(n(n-1))."""
        n = 4
        scheduler = UniformPairScheduler(n, random_state=7)
        counts = np.zeros((n, n))
        samples = 24_000
        for _ in range(samples):
            i, j = scheduler.sample()
            counts[i, j] += 1
        expected = samples / (n * (n - 1))
        off_diagonal = counts[~np.eye(n, dtype=bool)]
        assert np.all(counts.diagonal() == 0)
        # Allow 15% relative deviation — generous for 24k samples over 12 cells.
        assert np.all(np.abs(off_diagonal - expected) < 0.15 * expected)

    def test_chunked_and_single_sampling_agree_statistically(self):
        n = 5
        scheduler = UniformPairScheduler(n, random_state=3)
        chunk = scheduler.sample_chunk(30_000)
        initiator_counts = np.bincount(chunk[:, 0], minlength=n)
        expected = len(chunk) / n
        assert np.all(np.abs(initiator_counts - expected) < 0.1 * expected)
