"""Unit tests for the uniform random pair scheduler."""

import numpy as np
import pytest

from repro.core.errors import ProtocolError
from repro.core.scheduler import UniformPairScheduler


class TestSchedulerBasics:
    def test_rejects_tiny_population(self):
        with pytest.raises(ProtocolError):
            UniformPairScheduler(1)

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(ValueError):
            UniformPairScheduler(4, chunk_size=0)

    def test_total_ordered_pairs(self):
        assert UniformPairScheduler(7).total_ordered_pairs == 42

    def test_sample_returns_distinct_ordered_pair(self):
        scheduler = UniformPairScheduler(5, random_state=0)
        for _ in range(500):
            initiator, responder = scheduler.sample()
            assert 0 <= initiator < 5
            assert 0 <= responder < 5
            assert initiator != responder

    def test_sample_chunk_shape_and_distinctness(self):
        scheduler = UniformPairScheduler(6, random_state=1)
        chunk = scheduler.sample_chunk(1000)
        assert chunk.shape == (1000, 2)
        assert np.all(chunk[:, 0] != chunk[:, 1])
        assert chunk.min() >= 0 and chunk.max() < 6

    def test_sample_chunk_rejects_negative(self):
        with pytest.raises(ValueError):
            UniformPairScheduler(4).sample_chunk(-1)

    def test_pairs_iterator(self):
        scheduler = UniformPairScheduler(4, random_state=2)
        pairs = scheduler.pairs()
        seen = [next(pairs) for _ in range(10)]
        assert len(seen) == 10

    def test_reproducibility_with_same_seed(self):
        first = UniformPairScheduler(8, random_state=42)
        second = UniformPairScheduler(8, random_state=42)
        assert [first.sample() for _ in range(50)] == [second.sample() for _ in range(50)]


class TestSampleChunkEdgeCases:
    def test_count_zero_returns_empty_chunk(self):
        chunk = UniformPairScheduler(5, random_state=0).sample_chunk(0)
        assert chunk.shape == (0, 2)

    def test_count_one(self):
        chunk = UniformPairScheduler(5, random_state=0).sample_chunk(1)
        assert chunk.shape == (1, 2)
        assert chunk[0, 0] != chunk[0, 1]

    def test_minimal_population_only_produces_both_ordered_pairs(self):
        scheduler = UniformPairScheduler(2, random_state=3)
        chunk = scheduler.sample_chunk(2000)
        pairs = {tuple(pair) for pair in chunk.tolist()}
        assert pairs == {(0, 1), (1, 0)}
        # Both orderings should appear in roughly equal proportion.
        first = int(np.sum(chunk[:, 0] == 0))
        assert abs(first - 1000) < 150

    def test_chunk_pairs_are_always_distinct(self):
        for n in (2, 3, 5, 17):
            chunk = UniformPairScheduler(n, random_state=n).sample_chunk(5000)
            assert np.all(chunk[:, 0] != chunk[:, 1])
            assert chunk.min() >= 0 and chunk.max() < n

    def test_ordered_pairs_are_uniform(self):
        """Every ordered pair appears with probability ~1/(n(n-1))."""
        n = 5
        scheduler = UniformPairScheduler(n, random_state=11)
        chunk = scheduler.sample_chunk(40_000)
        counts = np.zeros((n, n))
        np.add.at(counts, (chunk[:, 0], chunk[:, 1]), 1)
        assert np.all(counts.diagonal() == 0)
        expected = len(chunk) / (n * (n - 1))
        off_diagonal = counts[~np.eye(n, dtype=bool)]
        assert np.all(np.abs(off_diagonal - expected) < 0.12 * expected)

    def test_sample_chunk_consumes_same_stream_as_buffered_sampling(self):
        """One sample_chunk call equals chunk_size buffered sample() calls.

        The array engine's same-seed equality with the reference simulator
        rests on this: both issue identical generator calls.
        """
        chunked = UniformPairScheduler(7, random_state=13, chunk_size=64)
        buffered = UniformPairScheduler(7, random_state=13, chunk_size=64)
        chunk = chunked.sample_chunk(64)
        singles = [buffered.sample() for _ in range(64)]
        assert [tuple(pair) for pair in chunk.tolist()] == singles


class TestSchedulerUniformity:
    def test_marginals_are_roughly_uniform(self):
        """Each ordered pair should appear with probability ~1/(n(n-1))."""
        n = 4
        scheduler = UniformPairScheduler(n, random_state=7)
        counts = np.zeros((n, n))
        samples = 24_000
        for _ in range(samples):
            i, j = scheduler.sample()
            counts[i, j] += 1
        expected = samples / (n * (n - 1))
        off_diagonal = counts[~np.eye(n, dtype=bool)]
        assert np.all(counts.diagonal() == 0)
        # Allow 15% relative deviation — generous for 24k samples over 12 cells.
        assert np.all(np.abs(off_diagonal - expected) < 0.15 * expected)

    def test_chunked_and_single_sampling_agree_statistically(self):
        n = 5
        scheduler = UniformPairScheduler(n, random_state=3)
        chunk = scheduler.sample_chunk(30_000)
        initiator_counts = np.bincount(chunk[:, 0], minlength=n)
        expected = len(chunk) / n
        assert np.all(np.abs(initiator_counts - expected) < 0.1 * expected)
