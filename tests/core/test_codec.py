"""Unit tests for the state codec and the dense transition compiler."""

import numpy as np
import pytest

from repro.core.codec import (
    RAISING_RNG,
    StateCodec,
    compile_dense_tables,
    enumerate_reachable_states,
    evaluate_pair,
)
from repro.core.errors import CodecError, RandomnessConsumed, StateSpaceTooLarge
from repro.core.state import AgentState
from repro.protocols.leader_election.gs_leader_election import GSLeaderElectionProtocol
from repro.protocols.primitives.one_way_epidemic import (
    EpidemicState,
    OneWayEpidemicProtocol,
)
from repro.protocols.ranking.stable_ranking import StableRanking


class TestAgentStateHelperParity:
    """The hand-rolled AgentState helpers must track the dataclass fields.

    ``copy``/``as_tuple``/``clear`` enumerate the 13 fields explicitly for
    speed (they are the inner loop of transition tabulation); if a field is
    ever added without updating them, the codec would silently conflate
    distinct states.  This guard turns that silent corruption into a test
    failure.
    """

    def test_as_tuple_covers_every_field_in_order(self):
        import dataclasses

        state = AgentState()
        field_names = [f.name for f in dataclasses.fields(AgentState)]
        sentinel_values = list(range(1, len(field_names) + 1))
        for name, value in zip(field_names, sentinel_values):
            setattr(state, name, value)
        assert list(state.as_tuple()) == sentinel_values

    def test_copy_covers_every_field(self):
        import dataclasses

        state = AgentState()
        for index, f in enumerate(dataclasses.fields(AgentState)):
            setattr(state, f.name, index + 1)
        duplicate = state.copy()
        assert duplicate.as_tuple() == state.as_tuple()
        assert duplicate is not state

    def test_clear_resets_every_field(self):
        import dataclasses

        state = AgentState()
        for index, f in enumerate(dataclasses.fields(AgentState)):
            setattr(state, f.name, index + 1)
        state.clear()
        assert all(value is None for value in state.as_tuple())


class TestStateCodecRoundTrip:
    def test_encode_decode_is_identity_for_agent_states(self):
        codec = StateCodec()
        states = [
            AgentState(),
            AgentState(rank=3),
            AgentState(phase=2, coin=1, alive_count=7),
            AgentState(reset_count=4, delay_count=9, coin=0),
            AgentState(is_leader=1, leader_done=0, le_count=12, coin_count=3),
        ]
        for state in states:
            code = codec.encode(state)
            assert codec.materialize(code).as_tuple() == state.as_tuple()

    def test_encode_decode_is_identity_over_enumerated_space(self):
        protocol = OneWayEpidemicProtocol(8)
        codec = StateCodec()
        start = [codec.encode(s) for s in protocol.initial_configuration().states]
        enumerate_reachable_states(protocol, codec, start, max_states=16)
        for code in range(codec.size):
            state = codec.materialize(code)
            assert codec.encode(state) == code

    def test_equal_states_share_a_code(self):
        codec = StateCodec()
        assert codec.encode(AgentState(rank=5)) == codec.encode(AgentState(rank=5))
        assert codec.encode(AgentState(rank=6)) != codec.encode(AgentState(rank=5))

    def test_codec_copies_are_independent(self):
        codec = StateCodec()
        original = AgentState(rank=1)
        code = codec.encode(original)
        original.rank = 99  # mutating the caller's object must not leak
        assert codec.materialize(code).rank == 1
        materialized = codec.materialize(code)
        materialized.rank = 42
        assert codec.prototype(code).rank == 1

    def test_encode_many_and_prototype_view(self):
        codec = StateCodec()
        states = [AgentState(rank=r) for r in (1, 2, 1, 3)]
        codes = codec.encode_many(states)
        assert codes.tolist() == [0, 1, 0, 2]
        view = codec.prototype_view(codes.tolist())
        assert view[0] is view[2]  # shared prototypes for equal states
        assert [s.rank for s in view] == [1, 2, 1, 3]

    def test_unencodable_state_raises(self):
        codec = StateCodec()
        with pytest.raises(CodecError):
            codec.encode(object())


class TestDenseCompilation:
    def test_epidemic_tables_match_per_pair_evaluation(self):
        protocol = OneWayEpidemicProtocol(8)
        codec = StateCodec()
        start = [codec.encode(s) for s in protocol.initial_configuration().states]
        tables = compile_dense_tables(protocol, codec, start, max_states=16)
        assert tables.size == codec.size
        assert tables.size <= 4  # informed x active, minus unreachable combos
        check = StateCodec()
        for s in protocol.initial_configuration().states:
            check.encode(s)
        for a in range(tables.size):
            for b in range(tables.size):
                outcome = evaluate_pair(protocol, codec, a, b)
                assert tables.next_initiator[a, b] == outcome.next_initiator
                assert tables.next_responder[a, b] == outcome.next_responder
                assert tables.changed[a, b] == outcome.changed

    def test_epidemic_infection_is_tabulated(self):
        protocol = OneWayEpidemicProtocol(4)
        codec = StateCodec()
        informed = codec.encode(EpidemicState(informed=True, active=True))
        uninformed = codec.encode(EpidemicState(informed=False, active=True))
        tables = compile_dense_tables(
            protocol, codec, [informed, uninformed], max_states=8
        )
        assert tables.changed[informed, uninformed]
        assert tables.next_responder[informed, uninformed] == informed
        assert not tables.changed[uninformed, informed]

    def test_large_state_space_aborts(self):
        protocol = StableRanking(32)
        codec = StateCodec()
        start = [codec.encode(s) for s in protocol.initial_configuration().states]
        with pytest.raises(StateSpaceTooLarge):
            compile_dense_tables(protocol, codec, start, max_states=16)

    def test_randomness_consumption_is_detected(self):
        protocol = GSLeaderElectionProtocol(8)
        codec = StateCodec()
        start = [codec.encode(s) for s in protocol.initial_configuration().states]
        with pytest.raises(RandomnessConsumed):
            compile_dense_tables(protocol, codec, start, max_states=64)

    def test_raising_rng_raises_on_any_use(self):
        with pytest.raises(RandomnessConsumed):
            RAISING_RNG.integers(0, 2)
        with pytest.raises(RandomnessConsumed):
            RAISING_RNG.random()


class TestEvaluatePair:
    def test_stable_ranking_pair_outcomes_are_deterministic(self):
        protocol = StableRanking(16)
        codec = StateCodec()
        initial = codec.encode(protocol.initial_state())
        first = evaluate_pair(protocol, codec, initial, initial)
        second = evaluate_pair(protocol, codec, initial, initial)
        assert first == second

    def test_rank_assignment_is_recorded(self):
        protocol = StableRanking(8)
        codec = StateCodec()
        # An unaware leader with rank 1 meeting a phase-1 agent with coin 1
        # (coin-gated rules run) assigns the next rank of phase 1.
        leader = codec.encode(AgentState(rank=1))
        phase_agent = codec.encode(
            AgentState(phase=1, coin=1, alive_count=protocol.alive_reset)
        )
        outcome = evaluate_pair(protocol, codec, leader, phase_agent)
        assert outcome.rank_assigned == protocol.schedule.f(2) + 1
        assert outcome.changed


class TestFieldColumns:
    """Struct-of-arrays projection (the SoA kernels' substrate)."""

    def test_projects_fields_with_undefined_sentinel(self):
        codec = StateCodec()
        a = codec.encode(AgentState(rank=4))
        b = codec.encode(AgentState(phase=2, coin=1, alive_count=0))
        columns = codec.field_columns(("rank", "phase", "coin", "alive_count"))
        assert columns["rank"].tolist() == [4, -1]
        assert columns["phase"].tolist() == [-1, 2]
        assert columns["coin"].tolist() == [-1, 1]
        assert columns["alive_count"].tolist() == [-1, 0]
        assert columns["rank"].dtype == np.int64
        assert a == 0 and b == 1

    def test_start_offset_projects_only_new_codes(self):
        codec = StateCodec()
        codec.encode(AgentState(rank=1))
        codec.encode(AgentState(rank=2))
        columns = codec.field_columns(("rank",), start=1)
        assert columns["rank"].tolist() == [2]

    def test_booleans_project_to_integers(self):
        codec = StateCodec()
        codec.encode(EpidemicState(informed=True, active=False))
        columns = codec.field_columns(("informed", "active"))
        assert columns["informed"].tolist() == [1]
        assert columns["active"].tolist() == [0]

    def test_missing_field_raises(self):
        codec = StateCodec()
        codec.encode(AgentState())
        with pytest.raises(CodecError):
            codec.field_columns(("no_such_field",))


class TestVariantCode:
    def test_variant_interns_and_round_trips(self):
        codec = StateCodec()
        base = codec.encode(AgentState(phase=3, coin=0, alive_count=9))
        variant = codec.variant_code(base, coin=1, alive_count=2)
        state = codec.materialize(variant)
        assert (state.phase, state.coin, state.alive_count) == (3, 1, 2)
        # identical updates return the interned code, and the base state
        # is untouched
        assert codec.variant_code(base, coin=1, alive_count=2) == variant
        assert codec.materialize(base).coin == 0

    def test_variant_with_none_clears_a_field(self):
        codec = StateCodec()
        base = codec.encode(AgentState(phase=3, coin=0, alive_count=9))
        cleared = codec.variant_code(
            base, phase=None, coin=None, alive_count=None, rank=7
        )
        state = codec.materialize(cleared)
        assert state.rank == 7
        assert state.phase is None and state.coin is None
        assert state.alive_count is None

    def test_variant_of_unchanged_fields_is_identity(self):
        codec = StateCodec()
        base = codec.encode(AgentState(rank=5))
        assert codec.variant_code(base, rank=5) == base
