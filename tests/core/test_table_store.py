"""Tests for the persistent cross-process tabulation store.

The store's contract has two halves, and this suite pins both:

* **Warmth transfers**: a fresh :class:`EngineCache` pointed at a
  populated store merges the persisted pairs / dense tables before its
  first interning, and the resulting trajectories are bit-identical to
  cold runs — the store changes *when* tables are computed, never what.
* **Corruption cannot poison**: a truncated spill payload, a stale
  format stamp or plain garbage is warned about, deleted, and rebuilt by
  ordinary retabulation; it can never crash a run or change a row.

Concurrency is exercised the way production hits it: two *processes*
spill into one store simultaneously, and a third load sees the union.
"""

import json
import os
import subprocess
import sys
import textwrap
import warnings
from pathlib import Path

import numpy as np
import pytest

from harness.differential import assert_identical, run_serial
from repro.core.array_engine import EngineCache
from repro.core.table_store import (
    FORMAT_VERSION,
    TableStore,
    consume_session_stats,
    protocol_key,
    session_stats,
)
from repro.protocols.primitives.one_way_epidemic import OneWayEpidemicProtocol
from repro.protocols.ranking.stable_ranking import StableRanking

N = 32
SEED = 7
BUDGET = 200 * N * N


def _run_lazy(cache, seed=SEED):
    return run_serial(
        "array", StableRanking, N, seed, budget=BUDGET, cache=cache
    )


def _spill_files(store_dir):
    return sorted(Path(store_dir).glob("*/pairs/spill-*"))


class TestPairSpillRoundTrip:
    def test_cold_spill_then_warm_load_is_bit_identical(self, tmp_path):
        store = tmp_path / "tables"
        consume_session_stats()

        cold_cache = EngineCache(persist_dir=store)
        cold = _run_lazy(cold_cache)
        assert cold_cache.spill() > 0
        written = consume_session_stats()
        assert written["spills_written"] == 1
        assert written["pairs_spilled"] == len(cold_cache.pair_cache)

        warm_cache = EngineCache(persist_dir=store)
        warm = _run_lazy(warm_cache)
        loaded = consume_session_stats()
        assert loaded["pairs_loaded"] == written["pairs_spilled"]
        assert loaded["spills_loaded"] == 1
        assert_identical(cold, warm, context="persisted-warm")

    def test_incremental_spill_writes_only_the_delta(self, tmp_path):
        store = tmp_path / "tables"
        cache = EngineCache(persist_dir=store)
        _run_lazy(cache, seed=1)
        first = cache.spill()
        assert first == len(cache.pair_cache)
        # A second run over the same cache adds few (or no) pairs; the
        # spill must cover exactly the watermarked delta, not re-write
        # the whole cache.
        _run_lazy(cache, seed=2)
        second = cache.spill()
        assert first + second == len(cache.pair_cache)
        assert cache.spill() == 0  # nothing new: no third artifact
        assert len(_spill_files(store)) == (2 if second else 1)

    def test_plain_cache_never_touches_disk(self, tmp_path):
        consume_session_stats()
        cache = EngineCache()
        _run_lazy(cache)
        assert cache.spill() == 0
        stats = consume_session_stats()
        assert stats["pairs_spilled"] == 0
        assert stats["spills_written"] == 0
        assert list(tmp_path.iterdir()) == []


class TestDenseArtifact:
    def test_dense_tables_persist_and_reload(self, tmp_path):
        store = tmp_path / "tables"
        consume_session_stats()
        cold_cache = EngineCache(persist_dir=store)
        cold = run_serial(
            "array", OneWayEpidemicProtocol, 64, SEED,
            budget=100 * 64 * 64, cache=cold_cache,
        )
        assert cold_cache.mode == "dense"
        cold_cache.spill()
        assert (next(Path(store).iterdir()) / "dense").is_dir()

        consume_session_stats()
        warm_cache = EngineCache(persist_dir=store)
        warm = run_serial(
            "array", OneWayEpidemicProtocol, 64, SEED,
            budget=100 * 64 * 64, cache=warm_cache,
        )
        stats = consume_session_stats()
        assert stats["dense_loaded"] == 1
        assert_identical(cold, warm, context="dense persisted-warm")


class TestCorruptionRecovery:
    def _cold_and_store(self, tmp_path):
        store = tmp_path / "tables"
        cache = EngineCache(persist_dir=store)
        cold = _run_lazy(cache)
        cache.spill()
        return cold, store

    def test_truncated_spill_payload_warns_and_rebuilds(self, tmp_path):
        cold, store = self._cold_and_store(tmp_path)
        (spill,) = _spill_files(store)
        keys = spill / "keys.npy"
        # Tear the payload mid-array: the header still promises the full
        # count, so the mmap load must fail — and the artifact must be
        # discarded, not trusted.
        keys.write_bytes(keys.read_bytes()[: keys.stat().st_size // 2])

        consume_session_stats()
        warm_cache = EngineCache(persist_dir=store)
        with pytest.warns(UserWarning, match="discarding unreadable"):
            warm = _run_lazy(warm_cache)
        stats = session_stats()
        assert stats["artifacts_discarded"] == 1
        assert stats["pairs_loaded"] == 0
        assert not spill.exists()
        assert_identical(cold, warm, context="after truncated spill")
        # The retabulated pairs spill into a replacement artifact.
        assert warm_cache.spill() > 0
        assert len(_spill_files(store)) == 1

    def test_stale_format_version_is_discarded(self, tmp_path):
        cold, store = self._cold_and_store(tmp_path)
        (spill,) = _spill_files(store)
        manifest = json.loads((spill / "manifest.json").read_text())
        manifest["format"] = FORMAT_VERSION + 1
        (spill / "manifest.json").write_text(json.dumps(manifest))

        warm_cache = EngineCache(persist_dir=store)
        with pytest.warns(UserWarning, match="discarding unreadable"):
            warm = _run_lazy(warm_cache)
        assert not spill.exists()
        assert_identical(cold, warm, context="after stale format")

    def test_garbage_manifest_is_discarded(self, tmp_path):
        cold, store = self._cold_and_store(tmp_path)
        (spill,) = _spill_files(store)
        (spill / "manifest.json").write_bytes(b"\x00not json\xff")

        warm_cache = EngineCache(persist_dir=store)
        with pytest.warns(UserWarning, match="discarding unreadable"):
            warm = _run_lazy(warm_cache)
        assert not spill.exists()
        assert_identical(cold, warm, context="after garbage manifest")

    def test_unwritable_store_degrades_to_plain_cache(self, tmp_path):
        # A store path that is actually a file: binding the entry fails,
        # the cache warns once and runs cold — never raises.
        store = tmp_path / "tables"
        store.write_text("not a directory")
        cache = EngineCache(persist_dir=store)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            warm = _run_lazy(cache)
            assert cache.spill() == 0
        cold = _run_lazy(EngineCache())
        assert_identical(cold, warm, context="unusable store")


_CHILD_SCRIPT = textwrap.dedent(
    """
    import sys
    import numpy as np
    from repro.core.array_engine import EngineCache
    from repro.core.backends import get_backend
    from repro.protocols.ranking.stable_ranking import StableRanking

    store, seed = sys.argv[1], int(sys.argv[2])
    n = 32
    cache = EngineCache(persist_dir=store)
    simulator = get_backend("array").create(
        StableRanking(n),
        random_state=int(seed),
        convergence_interval=n,
        cache=cache,
    )
    simulator.run(max_interactions=200 * n * n)
    cache.spill()
    print(len(cache.pair_cache))
    """
)


class TestConcurrentWriters:
    def test_two_process_spills_merge_to_the_union(self, tmp_path):
        store = tmp_path / "tables"
        env = dict(os.environ)
        env.pop("REPRO_TABLE_CACHE", None)
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = os.pathsep.join(
            [src] + [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p]
        )
        children = [
            subprocess.Popen(
                [sys.executable, "-c", _CHILD_SCRIPT, str(store), str(seed)],
                env=env,
                stdout=subprocess.PIPE,
                text=True,
            )
            for seed in (11, 12)
        ]
        counts = []
        for child in children:
            out, _ = child.communicate(timeout=600)
            assert child.returncode == 0
            counts.append(int(out.strip()))
        assert len(_spill_files(store)) == 2

        # A third (in-)process load sees the union of both spills, and
        # replays of both children's seeds are pure cache hits.
        consume_session_stats()
        cache = EngineCache(persist_dir=store)
        cache.load_persisted(StableRanking(32))
        assert len(cache.pair_cache) >= max(counts)
        loaded = consume_session_stats()
        assert loaded["spills_loaded"] == 2
        assert loaded["pairs_loaded"] == len(cache.pair_cache)
        for seed in (11, 12):
            cold = _run_lazy(EngineCache(), seed=seed)
            warm = _run_lazy(cache, seed=seed)
            assert_identical(cold, warm, context=f"merged seed {seed}")


class TestContentAddressing:
    def test_key_distinguishes_parameterizations(self):
        name_a, _ = protocol_key(StableRanking(32))
        name_b, _ = protocol_key(StableRanking(64))
        name_c, _ = protocol_key(OneWayEpidemicProtocol(32))
        assert len({name_a, name_b, name_c}) == 3
        assert name_a == protocol_key(StableRanking(32))[0]

    def test_entries_listing_and_describe(self, tmp_path):
        store = tmp_path / "tables"
        cache = EngineCache(persist_dir=store)
        _run_lazy(cache)
        cache.spill()
        table_store = TableStore(store)
        (entry,) = table_store.entries()
        info = entry.describe()
        assert info["spills"] == 1
        assert info["pairs"] == len(cache.pair_cache)
        assert info["mode"] == "lazy"
        assert info["bytes"] > 0
        table_store.clear()
        assert table_store.entries() == []
