"""Unit tests for metric collection."""

import pytest

from repro.core.configuration import Configuration
from repro.core.metrics import MetricsCollector, TimeSeries, standard_ranking_probes
from repro.core.state import AgentState


def simple_config(ranked, phases=()):
    states = [AgentState(rank=r) for r in range(1, ranked + 1)]
    states += [AgentState(phase=p) for p in phases]
    return Configuration(states)


class TestTimeSeries:
    def test_append_and_last(self):
        series = TimeSeries("x")
        assert series.last() is None
        series.append(0, 1.0)
        series.append(10, 2.5)
        assert len(series) == 2
        assert series.last() == 2.5
        assert series.as_rows() == [(0, 1.0), (10, 2.5)]


class TestMetricsCollector:
    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            MetricsCollector({}, interval=0)

    def test_records_on_schedule(self):
        collector = MetricsCollector({"ranked": lambda c: c.ranked_count()}, interval=10)
        config = simple_config(3)
        assert collector.maybe_record(0, config)
        assert not collector.maybe_record(5, config)
        assert collector.maybe_record(10, config)
        assert collector.get("ranked").interactions == [0, 10]

    def test_force_record_resets_schedule(self):
        collector = MetricsCollector({"ranked": lambda c: c.ranked_count()}, interval=10)
        config = simple_config(2)
        collector.record(3, config)
        assert not collector.maybe_record(8, config)
        assert collector.maybe_record(13, config)

    def test_standard_probes(self):
        probes = standard_ranking_probes()
        config = simple_config(2, phases=(3, 5))
        assert probes["ranked_agents"](config) == 2.0
        assert probes["average_phase"](config) == pytest.approx(4.0)
        assert probes["duplicate_ranks"](config) == 0.0
        config[0].rank = 2
        assert probes["duplicate_ranks"](config) == 1.0
