"""Degradation tests for the optional numba-compiled engine variant.

numba is deliberately absent from the tier-1 environment (and from CI's
``tests`` job), so this suite *is* the no-numba leg: it pins down the
contract that a missing optional dependency costs speed, never
correctness and never an ``ImportError`` —

* the probe reports a stable human-readable reason;
* the ``array-jit`` backend answers every capability probe with
  ``supported=False`` carrying that reason, so ``auto`` resolution skips
  it silently while an explicit request fails through the ordinary
  unsupported-cell path;
* direct :class:`JitArraySimulator` construction still succeeds and runs
  bit-identically to the plain :class:`ArraySimulator` on the
  interpreted paths.

When numba *is* importable (a fuller local environment), the same suite
flips to asserting the backend is supported — both legs of the gate stay
covered wherever the tests run.
"""

import pytest

from harness.differential import assert_identical, snapshot
from repro.core import backends
from repro.core.array_engine import ArraySimulator
from repro.core.errors import ExperimentError
from repro.core.jit_engine import (
    JitArraySimulator,
    numba_available,
    numba_unavailable_reason,
)
from repro.protocols.primitives.one_way_epidemic import OneWayEpidemicProtocol
from repro.protocols.ranking.stable_ranking import StableRanking

HAVE_NUMBA = numba_available()


class TestProbe:
    def test_reason_and_availability_agree(self):
        reason = numba_unavailable_reason()
        if HAVE_NUMBA:
            assert reason is None
        else:
            assert reason == "numba is not installed"

    def test_probe_is_memoized(self):
        assert numba_available() == numba_available()
        assert numba_unavailable_reason() == numba_unavailable_reason()


class TestCapabilityGate:
    def test_capability_matrix_reports_the_gate(self):
        matrix = backends.capability_matrix(StableRanking(8), "fresh", 8)
        capability = matrix["array-jit"]
        if HAVE_NUMBA:
            assert capability.supported
            assert capability.exactness == "trajectory"
        else:
            assert not capability.supported
            assert capability.reason == "numba is not installed"

    def test_auto_never_resolves_to_missing_jit(self):
        backend, _ = backends.resolve_backend(
            StableRanking(8), "fresh", 8, engine="auto"
        )
        if not HAVE_NUMBA:
            assert backend.name != "array-jit"

    @pytest.mark.skipif(HAVE_NUMBA, reason="numba is installed here")
    def test_explicit_request_fails_with_the_reason(self):
        with pytest.raises(ExperimentError, match="numba is not installed"):
            backends.resolve_backend(
                StableRanking(8), "fresh", 8, engine="array-jit"
            )

    @pytest.mark.skipif(HAVE_NUMBA, reason="numba is installed here")
    def test_study_spec_rejects_jit_with_the_reason(self):
        from repro.experiments.study import ExperimentSpec

        with pytest.raises(ExperimentError, match="numba is not installed"):
            ExperimentSpec(
                variant="jit",
                protocol="stable-ranking",
                engine="array-jit",
                n_values=(8,),
                seeds=1,
            )


class TestGracefulConstruction:
    @pytest.mark.parametrize(
        "factory,n,budget",
        [(StableRanking, 16, 40_000), (OneWayEpidemicProtocol, 64, 50_000)],
    )
    def test_runs_bit_identically_to_plain_array(self, factory, n, budget):
        # Without numba the subclass *is* the parent (interpreted walks);
        # with numba the compiled dense loop must reproduce them exactly.
        seed = 7
        plain = ArraySimulator(
            factory(n), random_state=seed, convergence_interval=n
        )
        jit = JitArraySimulator(
            factory(n), random_state=seed, convergence_interval=n
        )
        expected = snapshot(
            plain.run(max_interactions=budget, stop_on_convergence=False)
        )
        actual = snapshot(
            jit.run(max_interactions=budget, stop_on_convergence=False)
        )
        assert_identical(expected, actual, context=f"jit {factory.__name__}")

    def test_backend_create_degrades_instead_of_raising(self):
        # The registry answers unsupported first, but direct create() must
        # also never surface an ImportError.
        simulator = backends.get_backend("array-jit").create(
            OneWayEpidemicProtocol(16), random_state=0
        )
        result = simulator.run(max_interactions=5_000)
        assert result.converged
