"""Tests for the vectorized array engine.

The central claims verified here:

* **Exactness** — on the tabulated paths, a same-seed ``ArraySimulator`` run
  (with a matched ``convergence_interval``) reproduces the reference
  simulator's trajectory exactly: same stopping interaction, same final
  states, same counters, same recorded metric series.
* **Statistical equivalence** — with engine defaults (coarser convergence
  cadence), convergence-time distributions across seeds agree between the
  engines.
* **Mode selection** — protocols are routed to the dense, lazy or object
  path as their transition structure demands, including the mid-run
  demotion for randomness-consuming transitions.
"""

import numpy as np
import pytest

from harness.differential import assert_identical, snapshot
from repro.core.array_engine import ArraySimulator, EngineCache, make_simulator
from repro.core.configuration import Configuration
from repro.core.errors import SimulationLimitExceeded, StateSpaceTooLarge
from repro.core.metrics import MetricsCollector, standard_ranking_probes
from repro.core.protocol import PopulationProtocol, TransitionResult
from repro.core.simulation import Simulator
from repro.protocols.primitives.one_way_epidemic import (
    EpidemicState,
    OneWayEpidemicProtocol,
)
from repro.protocols.ranking.space_efficient import SpaceEfficientRanking
from repro.protocols.ranking.stable_ranking import StableRanking


from harness.protocols import LateRandomProtocol


def states_of(result):
    return [
        state.as_tuple() if hasattr(state, "as_tuple") else (state.informed, state.active)
        for state in result.configuration.states
    ]


class TestModeSelection:
    def test_epidemic_uses_dense_tables(self):
        assert ArraySimulator(OneWayEpidemicProtocol(32)).mode == "dense"

    def test_stable_ranking_uses_lazy_tables(self):
        assert ArraySimulator(StableRanking(16)).mode == "lazy"

    def test_space_efficient_falls_back_to_object(self):
        # The GS leader-election substrate draws random tags inside the
        # transition, so state pairs cannot be tabulated.
        assert ArraySimulator(SpaceEfficientRanking(16)).mode == "object"

    def test_forced_dense_rejects_large_state_space(self):
        with pytest.raises(StateSpaceTooLarge):
            ArraySimulator(StableRanking(16), engine_mode="dense")

    def test_mode_decision_is_cached(self):
        cache = EngineCache()
        ArraySimulator(StableRanking(16), cache=cache)
        assert cache.mode == "lazy"
        assert ArraySimulator(StableRanking(16), cache=cache).mode == "lazy"

    def test_make_simulator_dispatch(self):
        assert isinstance(make_simulator(StableRanking(8)), Simulator)
        assert isinstance(
            make_simulator(StableRanking(8), engine="array"), ArraySimulator
        )
        with pytest.raises(ValueError):
            make_simulator(StableRanking(8), engine="warp")

    def test_population_size_mismatch_is_rejected(self):
        protocol = StableRanking(8)
        other = StableRanking(16).initial_configuration()
        with pytest.raises(SimulationLimitExceeded):
            ArraySimulator(protocol, configuration=other)


class TestSameSeedTraceEquality:
    """The tabulated paths replay the reference trajectory exactly.

    Comparisons go through the shared differential harness
    (:mod:`harness.differential`): one canonical trajectory snapshot and
    one bit-identity assertion, shared with the cross-engine matrix in
    ``tests/harness/test_differential.py``.
    """

    @pytest.mark.parametrize("n,seed", [(8, 0), (16, 7), (32, 3), (64, 11)])
    def test_stable_ranking_matches_reference(self, n, seed):
        reference = Simulator(StableRanking(n), random_state=seed)
        array = ArraySimulator(
            StableRanking(n), random_state=seed, convergence_interval=n
        )
        expected = snapshot(reference.run(max_interactions=8_000_000))
        actual = snapshot(array.run(max_interactions=8_000_000))
        assert array.mode == "lazy"
        assert_identical(expected, actual, context=f"array n={n} seed={seed}")

    @pytest.mark.parametrize("seed", [1, 5])
    def test_epidemic_matches_reference(self, seed):
        n = 64
        reference = Simulator(OneWayEpidemicProtocol(n), random_state=seed)
        array = ArraySimulator(
            OneWayEpidemicProtocol(n), random_state=seed, convergence_interval=n
        )
        expected = snapshot(reference.run(max_interactions=200_000))
        actual = snapshot(array.run(max_interactions=200_000))
        assert array.mode == "dense"
        assert_identical(expected, actual, context=f"epidemic seed={seed}")

    def test_fixed_budget_runs_match(self):
        n = 32
        reference = Simulator(StableRanking(n), random_state=2)
        array = ArraySimulator(
            StableRanking(n), random_state=2, convergence_interval=n
        )
        expected = snapshot(
            reference.run(max_interactions=40_000, stop_on_convergence=False)
        )
        actual = snapshot(
            array.run(max_interactions=40_000, stop_on_convergence=False)
        )
        assert actual.interactions == expected.interactions == 40_000
        assert_identical(expected, actual, context="fixed budget")

    def test_metric_series_match_reference(self):
        n = 32
        reference = Simulator(
            StableRanking(n),
            random_state=4,
            metrics=MetricsCollector(standard_ranking_probes(), interval=500),
        )
        array = ArraySimulator(
            StableRanking(n),
            random_state=4,
            metrics=MetricsCollector(standard_ranking_probes(), interval=500),
            convergence_interval=n,
        )
        expected = reference.run(max_interactions=30_000, stop_on_convergence=False)
        actual = array.run(max_interactions=30_000, stop_on_convergence=False)
        for name, series in expected.metrics.items():
            assert actual.metrics[name].interactions == series.interactions
            assert actual.metrics[name].values == series.values

    def test_run_until_matches_reference(self):
        n = 32
        half_ranked = lambda config: config.ranked_count() >= n // 2
        reference = Simulator(StableRanking(n), random_state=6)
        array = ArraySimulator(StableRanking(n), random_state=6)
        expected = reference.run_until(half_ranked, max_interactions=2_000_000)
        actual = array.run_until(half_ranked, max_interactions=2_000_000)
        assert actual.converged and expected.converged
        assert actual.interactions == expected.interactions
        assert states_of(actual) == states_of(expected)

    def test_shared_cache_does_not_change_results(self):
        n = 24
        cache = EngineCache()
        baseline = ArraySimulator(
            StableRanking(n), random_state=9, convergence_interval=n
        ).run(max_interactions=2_000_000)
        # Warm the cache with other seeds, then re-run seed 9 against it.
        for seed in (10, 11):
            ArraySimulator(
                StableRanking(n), random_state=seed, cache=cache
            ).run(max_interactions=2_000_000)
        shared = ArraySimulator(
            StableRanking(n), random_state=9, convergence_interval=n, cache=cache
        ).run(max_interactions=2_000_000)
        assert shared.interactions == baseline.interactions
        assert states_of(shared) == states_of(baseline)


class TestObjectFallback:
    def test_mid_run_demotion_is_exact(self):
        """Demotion mid-trajectory keeps same-seed equality (pair buffer
        included: already-sampled pairs must be drained in order)."""
        n, seed = 16, 5
        reference = Simulator(
            LateRandomProtocol(n), random_state=seed, convergence_interval=n
        )
        array = ArraySimulator(
            LateRandomProtocol(n), random_state=seed, convergence_interval=n
        )
        assert array.mode == "lazy"
        expected = reference.run(max_interactions=30_000, stop_on_convergence=False)
        actual = array.run(max_interactions=30_000, stop_on_convergence=False)
        assert array.mode == "object"
        assert actual.interactions == expected.interactions
        assert states_of(actual) == states_of(expected)

    def test_dense_cache_reuse_with_new_states_recompiles(self):
        """A shared dense cache must extend its closure when a later
        configuration contains states the first run never reached."""
        cache = EngineCache()
        ArraySimulator(OneWayEpidemicProtocol(8), cache=cache).run(
            max_interactions=10_000
        )
        states = [EpidemicState(informed=True, active=True)]
        states += [EpidemicState(informed=False, active=True) for _ in range(5)]
        states += [EpidemicState(informed=False, active=False) for _ in range(2)]
        array = ArraySimulator(
            OneWayEpidemicProtocol(8, m=6),
            configuration=Configuration(states),
            cache=cache,
        )
        assert array.mode == "dense"
        result = array.run(max_interactions=100_000)
        assert result.converged


    def test_space_efficient_converges_on_object_path(self):
        n = 32
        array = ArraySimulator(SpaceEfficientRanking(n), random_state=3)
        result = array.run(max_interactions=4_000_000)
        assert result.converged
        assert result.configuration.is_valid_ranking()

    def test_object_path_matches_reference_exactly(self):
        # The object path samples pairs through the same scheduler and
        # passes the same generator to the transitions, and the fallback
        # decision happens before any randomness is consumed, so even the
        # rng-consuming protocol replays the reference trajectory exactly
        # when the convergence cadence matches.
        n = 16
        reference = Simulator(SpaceEfficientRanking(n), random_state=5)
        array = ArraySimulator(
            SpaceEfficientRanking(n), random_state=5, convergence_interval=n
        )
        expected = reference.run(max_interactions=2_000_000)
        actual = array.run(max_interactions=2_000_000)
        assert actual.converged and expected.converged
        assert actual.interactions == expected.interactions
        assert states_of(actual) == states_of(expected)


class TestDistributionalEquivalence:
    def test_convergence_time_distributions_agree(self):
        """Engine defaults differ only in stop granularity (< 2% here)."""
        n = 32
        seeds = range(12)
        reference_times = []
        array_times = []
        cache = EngineCache()
        for seed in seeds:
            reference_times.append(
                Simulator(StableRanking(n), random_state=seed)
                .run(max_interactions=4_000_000)
                .interactions
            )
            array_times.append(
                ArraySimulator(StableRanking(n), random_state=seed, cache=cache)
                .run(max_interactions=4_000_000)
                .interactions
            )
        # Same seeds drive identical trajectories; only the stopping
        # granularity differs (reference checks every n, array every 4096).
        for ref, arr in zip(reference_times, array_times):
            assert -n <= arr - ref <= 4096
        # Means differ by at most the check granularity (runs at n = 32 are
        # ~40k interactions, so the inflation is a few percent at worst and
        # vanishes for the paper-scale sizes).
        assert abs(np.mean(array_times) - np.mean(reference_times)) <= 4096


class TestResultContract:
    def test_raise_on_limit(self):
        array = ArraySimulator(StableRanking(16), random_state=0)
        with pytest.raises(SimulationLimitExceeded) as excinfo:
            array.run(max_interactions=50, raise_on_limit=True)
        assert excinfo.value.result is not None
        assert excinfo.value.result.interactions == 50

    def test_configuration_property_is_synchronized(self):
        array = ArraySimulator(StableRanking(16), random_state=1)
        array.run(max_interactions=1000, stop_on_convergence=False)
        ranked = sum(1 for s in array.configuration.states if s.rank is not None)
        assert 0 <= ranked <= 16
        assert array.interactions == 1000

    def test_normalized_interactions(self):
        result = ArraySimulator(StableRanking(16), random_state=2).run(
            max_interactions=1600, stop_on_convergence=False
        )
        assert result.normalized_interactions == pytest.approx(1600 / 256.0)
