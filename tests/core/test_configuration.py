"""Unit tests for :mod:`repro.core.configuration`."""

import pytest

from repro.core.configuration import Configuration
from repro.core.errors import ConfigurationError
from repro.core.state import AgentState, Role


def ranking(n, missing=None, duplicate=None):
    """Helper building a ranking configuration with optional defects."""
    states = []
    for rank in range(1, n + 1):
        if missing is not None and rank == missing:
            states.append(AgentState(phase=1))
        elif duplicate is not None and rank == duplicate:
            states.append(AgentState(rank=duplicate - 1 if duplicate > 1 else 2))
        else:
            states.append(AgentState(rank=rank))
    return Configuration(states)


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            Configuration([])

    def test_uniform_factory(self):
        config = Configuration.uniform(5, AgentState)
        assert len(config) == 5
        assert config.population_size == 5

    def test_uniform_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            Configuration.uniform(0, AgentState)

    def test_of_states(self):
        config = Configuration.of_states(AgentState(rank=i) for i in range(1, 4))
        assert config.ranks() == [1, 2, 3]

    def test_indexing_and_iteration(self):
        config = ranking(4)
        assert config[0].rank == 1
        config[0] = AgentState(rank=9)
        assert config[0].rank == 9
        assert len(list(config)) == 4


class TestRankingQueries:
    def test_valid_ranking(self):
        assert ranking(6).is_valid_ranking()

    def test_missing_rank_is_invalid(self):
        config = ranking(6, missing=3)
        assert not config.is_valid_ranking()
        assert config.ranked_count() == 5
        assert config.unranked_count() == 1

    def test_duplicate_detection(self):
        config = ranking(6, duplicate=4)
        assert config.duplicate_ranks() == [3]
        assert not config.is_valid_ranking()

    def test_leader_index(self):
        config = ranking(5)
        assert config.leader_index() == 0
        config[0].rank = 7
        assert config.leader_index() is None

    def test_assigned_ranks_order(self):
        config = Configuration([AgentState(rank=3), AgentState(), AgentState(rank=1)])
        assert config.assigned_ranks() == [3, 1]


class TestRoleQueries:
    def test_role_counts(self):
        config = Configuration(
            [AgentState(rank=1), AgentState(phase=2), AgentState(phase=3), AgentState(wait_count=1)]
        )
        counts = config.role_counts()
        assert counts[Role.RANKED] == 1
        assert counts[Role.PHASE] == 2
        assert counts[Role.WAITING] == 1

    def test_agents_with_role(self):
        config = Configuration([AgentState(rank=1), AgentState(phase=2)])
        assert config.agents_with_role(Role.PHASE) == [1]

    def test_average_phase(self):
        config = Configuration([AgentState(phase=2), AgentState(phase=4), AgentState(rank=1)])
        assert config.average_phase() == pytest.approx(3.0)

    def test_average_phase_empty(self):
        assert ranking(3).average_phase() == 0.0


class TestCopyAndSummary:
    def test_copy_is_deep_for_agent_states(self):
        config = ranking(3)
        clone = config.copy()
        clone[0].rank = 99
        assert config[0].rank == 1

    def test_summary_contains_core_fields(self):
        summary = ranking(4).summary()
        assert summary["n"] == 4
        assert summary["ranked"] == 4
        assert summary["valid_ranking"] is True
        assert "roles" in summary

    def test_count_where(self):
        config = ranking(5, missing=2)
        assert config.count_where(lambda s: s.phase is not None) == 1
