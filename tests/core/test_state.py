"""Unit tests for :mod:`repro.core.state`."""

import pytest

from repro.core.state import AgentState, Role, classify_role


class TestAgentStateBasics:
    def test_default_state_is_blank(self):
        state = AgentState()
        assert classify_role(state) is Role.BLANK
        assert state.main_variables() == {}

    def test_copy_is_independent(self):
        state = AgentState(rank=3, coin=1)
        clone = state.copy()
        clone.rank = 7
        assert state.rank == 3
        assert clone.coin == 1

    def test_as_tuple_roundtrip_equality(self):
        first = AgentState(rank=2, coin=0)
        second = AgentState(rank=2, coin=0)
        assert first.as_tuple() == second.as_tuple()
        second.coin = 1
        assert first.as_tuple() != second.as_tuple()

    def test_main_variables_reports_each_kind(self):
        assert AgentState(rank=5).main_variables() == {"rank": 5}
        assert AgentState(phase=2).main_variables() == {"phase": 2}
        assert AgentState(wait_count=7).main_variables() == {"wait_count": 7}
        assert AgentState(leader_done=0).main_variables() == {"leader_election": 0}


class TestPredicates:
    def test_is_ranked_and_phase_and_waiting(self):
        assert AgentState(rank=1).is_ranked
        assert AgentState(phase=1).is_phase_agent
        assert AgentState(wait_count=4).is_waiting
        assert not AgentState().is_ranked

    def test_in_leader_election_tracks_leader_done(self):
        assert AgentState(leader_done=0).in_leader_election
        assert AgentState(leader_done=1).in_leader_election
        assert not AgentState().in_leader_election

    def test_reset_predicates(self):
        propagating = AgentState(reset_count=3, delay_count=5)
        dormant = AgentState(reset_count=0, delay_count=5)
        computing = AgentState(rank=1)
        assert propagating.is_propagating and not propagating.is_dormant
        assert dormant.is_dormant and not dormant.is_propagating
        assert not computing.in_reset
        assert propagating.in_reset and dormant.in_reset


class TestMutationHelpers:
    def test_clear_drops_everything(self):
        state = AgentState(rank=4, coin=1, alive_count=9, leader_done=1)
        state.clear()
        assert state.as_tuple() == AgentState().as_tuple()

    def test_clear_can_keep_coin(self):
        state = AgentState(rank=4, coin=1)
        state.clear(keep_coin=True)
        assert state.coin == 1
        assert state.rank is None

    def test_clear_leader_election_preserves_other_fields(self):
        state = AgentState(rank=2, is_leader=1, leader_done=1, le_count=5, coin_count=3)
        state.clear_leader_election()
        assert state.rank == 2
        assert state.is_leader is None
        assert state.leader_done is None
        assert state.le_count is None
        assert state.coin_count is None

    def test_toggle_coin(self):
        state = AgentState(coin=0)
        state.toggle_coin()
        assert state.coin == 1
        state.toggle_coin()
        assert state.coin == 0

    def test_toggle_coin_without_coin_is_noop(self):
        state = AgentState()
        state.toggle_coin()
        assert state.coin is None


class TestClassifyRole:
    @pytest.mark.parametrize(
        "state, role",
        [
            (AgentState(reset_count=2, delay_count=3), Role.PROPAGATING),
            (AgentState(reset_count=0, delay_count=3), Role.DORMANT),
            (AgentState(leader_done=0, is_leader=1), Role.LEADER_ELECTING),
            (AgentState(wait_count=5), Role.WAITING),
            (AgentState(phase=3), Role.PHASE),
            (AgentState(rank=9), Role.RANKED),
            (AgentState(coin=1), Role.BLANK),
        ],
    )
    def test_roles(self, state, role):
        assert classify_role(state) is role

    def test_reset_takes_precedence_over_rank(self):
        state = AgentState(rank=3, reset_count=1, delay_count=2)
        assert classify_role(state) is Role.PROPAGATING
