"""Unit tests for the exception hierarchy."""

import pytest

from repro.core.errors import (
    AnalysisError,
    ConfigurationError,
    ExperimentError,
    ProtocolError,
    ReproError,
    SimulationLimitExceeded,
)


@pytest.mark.parametrize(
    "exception_type",
    [ConfigurationError, ProtocolError, SimulationLimitExceeded, AnalysisError, ExperimentError],
)
def test_all_errors_derive_from_repro_error(exception_type):
    assert issubclass(exception_type, ReproError)


def test_simulation_limit_carries_result():
    error = SimulationLimitExceeded("budget exhausted", result={"interactions": 10})
    assert error.result == {"interactions": 10}
    assert "budget" in str(error)


def test_catching_base_class_catches_all():
    with pytest.raises(ReproError):
        raise ProtocolError("bad n")
