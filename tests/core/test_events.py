"""Unit tests for the trace log."""

import pytest

from repro.core.events import TraceEvent, TraceLog


class TestTraceLog:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            TraceLog(capacity=0)

    def test_record_and_filter(self):
        log = TraceLog()
        log.record(1, "rank_assigned", 0, 1, detail=5)
        log.record(2, "reset", 2, 3)
        assert len(log) == 2
        assert [event.kind for event in log] == ["rank_assigned", "reset"]
        assert log.events("reset")[0].initiator == 2
        assert log.events()[0].detail == 5

    def test_bounded_capacity_drops_oldest(self):
        log = TraceLog(capacity=3)
        for step in range(5):
            log.append(TraceEvent(step, "e", 0, 1))
        assert len(log) == 3
        assert log.dropped == 2
        assert [event.interaction for event in log] == [2, 3, 4]

    def test_events_are_frozen(self):
        event = TraceEvent(0, "x", 1, 2)
        with pytest.raises(AttributeError):
            event.kind = "y"
