"""Unit tests for the codec-derived group-count engine."""

import numpy as np
import pytest

from repro.baselines.cai_ranking import CaiRanking
from repro.core.configuration import Configuration
from repro.core.errors import ConfigurationError, StateSpaceTooLarge
from repro.core.group_engine import (
    GroupCountSimulator,
    GroupTransitionModel,
    RankingCountGoal,
)
from repro.protocols.primitives.one_way_epidemic import (
    EpidemicState,
    OneWayEpidemicProtocol,
    epidemic_upper_bound,
)
from repro.protocols.ranking.stable_ranking import StableRanking


def epidemic_simulator(n, m=None, seed=0, **kwargs):
    protocol = OneWayEpidemicProtocol(n, m)
    return GroupCountSimulator(
        protocol,
        state_counts=protocol.count_profile(),
        random_state=seed,
        **kwargs,
    )


class TestConstruction:
    def test_requires_exactly_one_initial_form(self):
        protocol = OneWayEpidemicProtocol(8)
        with pytest.raises(ConfigurationError, match="exactly one"):
            GroupCountSimulator(protocol)
        with pytest.raises(ConfigurationError, match="exactly one"):
            GroupCountSimulator(
                protocol,
                configuration=protocol.initial_configuration(),
                state_counts=protocol.count_profile(),
            )

    def test_counts_must_sum_to_n(self):
        protocol = OneWayEpidemicProtocol(8)
        with pytest.raises(ConfigurationError, match="sum"):
            GroupCountSimulator(
                protocol,
                state_counts=[(EpidemicState(informed=True), 3)],
            )

    def test_configuration_and_profile_agree(self):
        protocol = OneWayEpidemicProtocol(10, m=6)
        from_config = GroupCountSimulator(
            protocol, configuration=protocol.initial_configuration()
        )
        from_profile = GroupCountSimulator(
            protocol, state_counts=protocol.count_profile()
        )
        assert from_config.state_counts() == from_profile.state_counts()

    def test_state_space_budget_is_enforced(self):
        protocol = StableRanking(16)
        with pytest.raises(StateSpaceTooLarge):
            GroupCountSimulator(
                protocol,
                configuration=protocol.initial_configuration(),
                random_state=0,
                max_states=4,
            ).run(max_interactions=10**9)


class TestEpidemic:
    def test_converges_with_exactly_m_minus_one_events(self):
        simulator = epidemic_simulator(64)
        result = simulator.run(max_interactions=10**9)
        assert result.converged
        # Every productive event informs exactly one agent.
        assert result.events == 63
        assert simulator.is_done()

    def test_restricted_subpopulation(self):
        simulator = epidemic_simulator(64, m=16)
        result = simulator.run(max_interactions=10**9)
        assert result.converged
        assert result.events == 15
        # 3 distinct states: informed-active, uninformed-inert (the
        # uninformed-active group has emptied).
        assert result.distinct_states == 2

    def test_completion_under_lemma14_bound(self):
        # The bound holds w.p. >= 1 - 2/n; one seeded run at n=4096 sits
        # far inside it.
        n = 4096
        simulator = epidemic_simulator(n, seed=7)
        result = simulator.run(max_interactions=10**12)
        assert result.converged
        assert result.interactions < epidemic_upper_bound(n, n)

    def test_milestones_recorded_in_order(self):
        simulator = epidemic_simulator(256, seed=3)
        result = simulator.run(
            max_interactions=10**9,
            milestones={"half": 128, "all": 256},
        )
        assert set(result.milestones) == {"half", "all"}
        assert 0 < result.milestones["half"] < result.milestones["all"]
        assert result.milestones["all"] == result.interactions

    def test_budget_clamps_without_overshoot(self):
        for seed in range(10):
            simulator = epidemic_simulator(128, seed=seed)
            result = simulator.run(max_interactions=500)
            assert result.interactions <= 500
            assert result.events <= result.interactions

    def test_max_events_caps_the_run(self):
        simulator = epidemic_simulator(256, seed=1)
        result = simulator.run(max_interactions=10**9, max_events=10)
        assert result.events == 10
        assert not result.converged


class TestStep:
    def test_step_conserves_population(self):
        simulator = epidemic_simulator(32, seed=5)
        while not simulator.is_done():
            simulator.step()
            counts = simulator.count_vector()
            assert counts.sum() == 32
            assert (counts >= 0).all()

    def test_interactions_strictly_increase(self):
        simulator = epidemic_simulator(32, seed=6)
        last = 0
        for _ in range(10):
            simulator.step()
            assert simulator.interactions > last
            last = simulator.interactions


class TestSharedModel:
    def test_model_is_shared_and_reused(self):
        protocol = OneWayEpidemicProtocol(64)
        model = GroupTransitionModel(protocol)
        first = GroupCountSimulator(
            protocol, state_counts=protocol.count_profile(),
            model=model, random_state=0,
        )
        first.run(max_interactions=10**9)
        tabulated = model.tabulated_states
        second = GroupCountSimulator(
            protocol, state_counts=protocol.count_profile(),
            model=model, random_state=1,
        )
        second.run(max_interactions=10**9)
        # The second seed revisits the same reachable space.
        assert model.tabulated_states == tabulated


class TestRankingProtocols:
    def test_stable_ranking_converges_exactly(self):
        protocol = StableRanking(8)
        simulator = GroupCountSimulator(
            protocol,
            configuration=protocol.initial_configuration(),
            random_state=0,
        )
        result = simulator.run(max_interactions=10**9)
        assert result.converged
        # The goal certifies a full permutation of ranks 1..n.
        assert simulator.goal.measure() == simulator.goal.target() == 8

    def test_cai_ranking_converges_exactly(self):
        protocol = CaiRanking(16)
        simulator = GroupCountSimulator(
            protocol,
            configuration=protocol.initial_configuration(),
            random_state=0,
        )
        result = simulator.run(max_interactions=10**9)
        assert result.converged
        assert simulator.count_vector().sum() == 16


class TestRankingCountGoal:
    def test_tracks_permutation_exactly(self):
        goal = RankingCountGoal(3)

        class S:
            def __init__(self, rank):
                self.rank = rank

        goal.on_count(S(None), 3)
        assert goal.measure() == 0 and not goal.done()
        goal.on_count(S(None), -1)
        goal.on_count(S(1), 1)
        goal.on_count(S(None), -1)
        goal.on_count(S(1), 1)  # duplicate rank 1
        assert goal.measure() == 2 and not goal.done()
        goal.on_count(S(1), -1)
        goal.on_count(S(2), 1)
        goal.on_count(S(None), -1)
        goal.on_count(S(3), 1)
        assert goal.measure() == 3 and goal.done()
