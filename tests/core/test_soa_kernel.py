"""Tests for the struct-of-arrays vectorized kernels (``repro.core.soa``).

The kernels are protocol-provided fast paths inside the array engine, so
the load-bearing property is the same as for the engine itself: a
same-seed run with a matched convergence cadence must reproduce the
reference simulator's trajectory *bit for bit* — same stopping
interaction, same final states, same counters, same metric series — while
actually exercising the kernel (``soa_interactions > 0``), across the
regimes the kernel special-cases (leader election, reset storms, coin
toggling, counter churn, phase waves) and in the presence of adversarial
states outside the kernel's pure classes.
"""

import numpy as np
import pytest

from repro.core.array_engine import ArraySimulator, EngineCache
from repro.core.configuration import Configuration
from repro.core.metrics import MetricsCollector, standard_ranking_probes
from repro.core.protocol import PopulationProtocol, TransitionResult
from repro.core.simulation import Simulator
from repro.core.soa import ChunkOutcome, ColumnStore, occurrence_index
from repro.core.state import AgentState
from repro.protocols.primitives.one_way_epidemic import OneWayEpidemicProtocol
from repro.protocols.ranking.stable_ranking import StableRanking


def states_of(result):
    return [
        state.as_tuple()
        if hasattr(state, "as_tuple")
        else (state.informed, state.active)
        for state in result.configuration.states
    ]


def assert_same_run(expected, actual):
    assert actual.interactions == expected.interactions
    assert actual.converged == expected.converged
    assert actual.rank_assignments == expected.rank_assignments
    assert actual.resets == expected.resets
    assert states_of(actual) == states_of(expected)


class TestOccurrenceIndex:
    def test_counts_prior_appearances(self):
        agents = np.array([3, 1, 3, 3, 1, 0, 3])
        assert occurrence_index(agents).tolist() == [0, 0, 1, 2, 1, 0, 3]

    def test_empty(self):
        assert occurrence_index(np.empty(0, dtype=np.int64)).tolist() == []


class TestStableRankingEquivalence:
    """Same-seed bit-equality on the kernel's primary protocol."""

    @pytest.mark.parametrize("n,seed", [(2, 0), (16, 7), (64, 11)])
    def test_full_run_matches_reference(self, n, seed):
        # n=2 checks convergence every 2 interactions on both engines, so
        # its budget is kept small (the trajectory is all reset cycles
        # anyway); the larger sizes cover full phase progressions.
        budget = 60_000 if n == 2 else 400_000
        reference = Simulator(StableRanking(n), random_state=seed)
        array = ArraySimulator(
            StableRanking(n), random_state=seed, convergence_interval=n
        )
        expected = reference.run(
            max_interactions=budget, stop_on_convergence=False
        )
        actual = array.run(max_interactions=budget, stop_on_convergence=False)
        assert array.soa_kernel is not None
        assert array.soa_interactions > 0
        assert_same_run(expected, actual)

    def test_reset_storms_match_reference(self):
        # n=2 elections fail almost always, so the trajectory cycles
        # through leader election, countdown-expiry resets, propagation
        # and dormancy — the kernel's start-up-domain chains.
        n, seed = 2, 3
        reference = Simulator(StableRanking(n), random_state=seed)
        array = ArraySimulator(
            StableRanking(n), random_state=seed, convergence_interval=n
        )
        expected = reference.run(
            max_interactions=80_000, stop_on_convergence=False
        )
        actual = array.run(max_interactions=80_000, stop_on_convergence=False)
        assert expected.resets > 0
        assert_same_run(expected, actual)

    def test_metric_series_match_reference(self):
        n = 32
        reference = Simulator(
            StableRanking(n),
            random_state=13,
            metrics=MetricsCollector(standard_ranking_probes(), interval=500),
        )
        array = ArraySimulator(
            StableRanking(n),
            random_state=13,
            metrics=MetricsCollector(standard_ranking_probes(), interval=500),
            convergence_interval=n,
        )
        expected = reference.run(max_interactions=60_000, stop_on_convergence=False)
        actual = array.run(max_interactions=60_000, stop_on_convergence=False)
        assert array.soa_interactions > 0
        for name, series in expected.metrics.items():
            assert actual.metrics[name].interactions == series.interactions
            assert actual.metrics[name].values == series.values

    def test_kernel_off_matches_kernel_on(self):
        n, seed = 32, 21
        on = ArraySimulator(
            StableRanking(n), random_state=seed, convergence_interval=n
        )
        off = ArraySimulator(
            StableRanking(n),
            random_state=seed,
            convergence_interval=n,
            use_soa_kernel=False,
        )
        with_kernel = on.run(max_interactions=2_000_000)
        without = off.run(max_interactions=2_000_000)
        assert on.soa_interactions > 0
        assert off.soa_kernel is None and off.soa_interactions == 0
        assert_same_run(without, with_kernel)

    def test_adversarial_states_fall_back_to_walk(self):
        # States outside the kernel's pure classes (a ranked agent that
        # kept its coin, a blank agent, a zero wait counter) must be
        # classified conservatively and resolved by the walk — the
        # trajectory still matches the reference exactly.
        n, seed = 16, 5
        protocol = StableRanking(n)
        states = [protocol.initial_state() for _ in range(n)]
        states[0] = AgentState(rank=3, coin=1)          # impure ranked
        states[1] = AgentState(coin=0)                  # blank
        states[2] = AgentState(wait_count=0, coin=1, alive_count=4)
        states[3] = AgentState(rank=3)                  # duplicate rank
        reference = Simulator(
            StableRanking(n),
            configuration=Configuration([s.copy() for s in states]),
            random_state=seed,
        )
        array = ArraySimulator(
            StableRanking(n),
            configuration=Configuration([s.copy() for s in states]),
            random_state=seed,
            convergence_interval=n,
        )
        expected = reference.run(max_interactions=150_000, stop_on_convergence=False)
        actual = array.run(max_interactions=150_000, stop_on_convergence=False)
        assert_same_run(expected, actual)

    def test_interleaved_simulators_sharing_a_cache_stay_exact(self):
        # The kernel AND its column store are shared through the cache;
        # the live population binding must follow whichever engine is
        # advancing, even when two runs are interleaved chunk by chunk.
        n = 16
        cache = EngineCache()
        expected = {}
        for seed in (3, 4):
            sim = Simulator(StableRanking(n), random_state=seed)
            expected[seed] = sim.run(max_interactions=40_000,
                                     stop_on_convergence=False)
        arrays = {
            seed: ArraySimulator(
                StableRanking(n), random_state=seed,
                convergence_interval=n, cache=cache,
            )
            for seed in (3, 4)
        }
        for _ in range(8):
            for sim in arrays.values():
                sim.run(max_interactions=5_000, stop_on_convergence=False)
        for seed, sim in arrays.items():
            assert sim.interactions == expected[seed].interactions
            assert [s.as_tuple() for s in sim.configuration.states] == (
                states_of(expected[seed])
            )

    def test_shared_cache_shares_kernel_and_results(self):
        n = 24
        cache = EngineCache()
        baseline = ArraySimulator(
            StableRanking(n), random_state=9, convergence_interval=n
        ).run(max_interactions=2_000_000)
        first = ArraySimulator(StableRanking(n), random_state=10, cache=cache)
        first.run(max_interactions=2_000_000)
        second = ArraySimulator(StableRanking(n), random_state=9,
                                convergence_interval=n, cache=cache)
        assert second.soa_kernel is first.soa_kernel
        assert cache.soa_kernel is first.soa_kernel
        shared = second.run(max_interactions=2_000_000)
        assert_same_run(baseline, shared)


class TestEpidemicEquivalence:
    """The exemplar kernel: infection fixpoint over a chunk."""

    @pytest.mark.parametrize("n,seed", [(2, 1), (16, 2), (64, 5)])
    def test_matches_reference(self, n, seed):
        reference = Simulator(OneWayEpidemicProtocol(n), random_state=seed)
        array = ArraySimulator(
            OneWayEpidemicProtocol(n), random_state=seed, convergence_interval=n
        )
        expected = reference.run(max_interactions=200_000)
        actual = array.run(max_interactions=200_000)
        assert array.mode == "dense"
        assert array.soa_interactions > 0
        assert_same_run(expected, actual)

    def test_inert_subpopulation(self):
        n, seed = 32, 4
        reference = Simulator(OneWayEpidemicProtocol(n, m=10), random_state=seed)
        array = ArraySimulator(
            OneWayEpidemicProtocol(n, m=10), random_state=seed,
            convergence_interval=n,
        )
        expected = reference.run(max_interactions=100_000)
        actual = array.run(max_interactions=100_000)
        assert_same_run(expected, actual)

    def test_metric_series_match_reference(self):
        n, seed = 32, 6
        probes = {"informed": lambda config: sum(
            1 for s in config.states if s.informed
        )}
        reference = Simulator(
            OneWayEpidemicProtocol(n), random_state=seed,
            metrics=MetricsCollector(probes, interval=100),
        )
        array = ArraySimulator(
            OneWayEpidemicProtocol(n), random_state=seed,
            metrics=MetricsCollector(probes, interval=100),
            convergence_interval=n,
        )
        expected = reference.run(max_interactions=20_000, stop_on_convergence=False)
        actual = array.run(max_interactions=20_000, stop_on_convergence=False)
        series = expected.metrics["informed"]
        assert actual.metrics["informed"].interactions == series.interactions
        assert actual.metrics["informed"].values == series.values


class _DecliningKernel:
    """A kernel that declines every pair (the always-safe behaviour)."""

    def columns(self):
        return ("aux",)

    def apply_chunk(self, initiators, responders, columns, rng):
        return ChunkOutcome(0)


class LateRandomWithKernel(PopulationProtocol):
    """Deterministic counters that consume rng past a threshold.

    Provides a (useless but legal) kernel, so the engine exercises the
    SoA dispatch loop together with the mid-chunk demotion to the object
    path when the walk hits the first rng-consuming transition.
    """

    name = "late-random-kernel"
    THRESHOLD = 100

    def initial_state(self):
        return AgentState(aux=0)

    def transition(self, u, v, rng):
        u.aux = min((u.aux or 0) + 1, 200)
        if u.aux >= self.THRESHOLD:
            if int(rng.integers(0, 2)):
                v.aux = 0
        return TransitionResult(changed=True)

    def has_converged(self, configuration):
        return False

    def vectorized_kernel(self, codec):
        return _DecliningKernel()


class TestKernelEngineIntegration:
    def test_declining_kernel_with_mid_run_demotion(self):
        """A kernel that declines everything must not disturb the walk,
        the demotion to the object path, or same-seed equality."""
        n, seed = 16, 5
        reference = Simulator(
            LateRandomWithKernel(n), random_state=seed, convergence_interval=n
        )
        array = ArraySimulator(
            LateRandomWithKernel(n), random_state=seed, convergence_interval=n
        )
        assert array.mode == "lazy"
        assert array.soa_kernel is not None
        expected = reference.run(max_interactions=30_000, stop_on_convergence=False)
        actual = array.run(max_interactions=30_000, stop_on_convergence=False)
        assert array.mode == "object"
        assert array.soa_kernel is None  # demotion drops the kernel
        assert actual.interactions == expected.interactions
        assert states_of(actual) == states_of(expected)

    def test_column_store_projection_and_variant(self):
        protocol = StableRanking(8)
        cache = EngineCache()
        codec = cache.codec
        a = codec.encode(AgentState(phase=2, coin=1, alive_count=5))
        store = ColumnStore(codec, ("phase", "coin", "alive_count", "rank"))
        assert store.column("phase")[a] == 2
        assert store.column("rank")[a] == -1  # ⊥ projects to -1
        b = store.variant(a, coin=0, alive_count=7)
        assert store.column("coin")[b] == 0
        assert store.column("alive_count")[b] == 7
        assert store.column("phase")[b] == 2
        # memoized: the same update hits the cache and the codec agrees
        assert store.variant(a, coin=0, alive_count=7) == b
        assert codec.variant_code(a, coin=0, alive_count=7) == b

    def test_run_until_with_kernel_matches_reference(self):
        n = 32
        half_ranked = lambda config: config.ranked_count() >= n // 2
        reference = Simulator(StableRanking(n), random_state=6)
        array = ArraySimulator(StableRanking(n), random_state=6)
        expected = reference.run_until(half_ranked, max_interactions=2_000_000)
        actual = array.run_until(half_ranked, max_interactions=2_000_000)
        assert array.soa_interactions > 0
        assert actual.interactions == expected.interactions
        assert states_of(actual) == states_of(expected)
