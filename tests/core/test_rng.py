"""Unit tests for the RNG helpers."""

import numpy as np
import pytest

from repro.core.rng import choice_weighted, geometric, make_rng, spawn_rngs, spawn_seeds


class TestMakeRng:
    def test_from_int_is_deterministic(self):
        assert make_rng(5).integers(0, 1000) == make_rng(5).integers(0, 1000)

    def test_from_generator_is_identity(self):
        generator = np.random.default_rng(0)
        assert make_rng(generator) is generator

    def test_from_seed_sequence(self):
        sequence = np.random.SeedSequence(3)
        assert isinstance(make_rng(sequence), np.random.Generator)

    def test_from_none(self):
        assert isinstance(make_rng(None), np.random.Generator)

    def test_rejects_strings(self):
        with pytest.raises(TypeError):
            make_rng("seed")


class TestSpawning:
    def test_spawn_seeds_count(self):
        assert len(spawn_seeds(0, 7)) == 7

    def test_spawn_seeds_rejects_negative(self):
        with pytest.raises(ValueError):
            spawn_seeds(0, -1)

    def test_spawned_streams_are_deterministic_and_distinct(self):
        first = [np.random.default_rng(s).integers(0, 10**9) for s in spawn_seeds(1, 4)]
        second = [np.random.default_rng(s).integers(0, 10**9) for s in spawn_seeds(1, 4)]
        assert first == second
        assert len(set(first)) == 4

    def test_spawn_rngs(self):
        rngs = spawn_rngs(2, 3)
        assert len(rngs) == 3
        assert all(isinstance(r, np.random.Generator) for r in rngs)


class TestGeometric:
    def test_probability_one_returns_one(self):
        assert geometric(make_rng(0), 1.0) == 1

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            geometric(make_rng(0), 0.0)
        with pytest.raises(ValueError):
            geometric(make_rng(0), 1.5)

    def test_mean_matches_expectation(self):
        rng = make_rng(11)
        p = 0.2
        samples = [geometric(rng, p) for _ in range(20_000)]
        assert np.mean(samples) == pytest.approx(1 / p, rel=0.05)


class TestChoiceWeighted:
    def test_respects_weights(self):
        rng = make_rng(4)
        picks = [choice_weighted(rng, ["a", "b"], [9.0, 1.0]) for _ in range(5000)]
        fraction_a = picks.count("a") / len(picks)
        assert fraction_a == pytest.approx(0.9, abs=0.03)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            choice_weighted(make_rng(0), ["a"], [1.0, 2.0])

    def test_rejects_zero_total_weight(self):
        with pytest.raises(ValueError):
            choice_weighted(make_rng(0), ["a", "b"], [0.0, 0.0])
