"""Unit tests for the reference simulator, using a tiny toy protocol."""

import numpy as np
import pytest

from repro.core.configuration import Configuration
from repro.core.errors import SimulationLimitExceeded
from repro.core.metrics import MetricsCollector
from repro.core.protocol import PopulationProtocol, TransitionResult
from repro.core.simulation import Simulator
from repro.core.state import AgentState


class InfectionProtocol(PopulationProtocol[AgentState]):
    """Toy protocol: the initiator infects the responder (rank 1 = infected)."""

    name = "infection"

    def initial_state(self) -> AgentState:
        return AgentState()

    def initial_configuration(self) -> Configuration:
        states = [AgentState(rank=1)] + [AgentState() for _ in range(self.n - 1)]
        return Configuration(states)

    def transition(self, initiator, responder, rng) -> TransitionResult:
        if initiator.rank == 1 and responder.rank is None:
            responder.rank = 1
            return TransitionResult(changed=True, rank_assigned=1)
        return TransitionResult(changed=False)

    def has_converged(self, configuration) -> bool:
        return all(state.rank == 1 for state in configuration.states)


class TestSimulatorBasics:
    def test_rejects_mismatched_configuration(self):
        protocol = InfectionProtocol(5)
        config = Configuration([AgentState() for _ in range(3)])
        with pytest.raises(SimulationLimitExceeded):
            Simulator(protocol, configuration=config)

    def test_step_counts_interactions(self):
        simulator = Simulator(InfectionProtocol(5), random_state=0)
        simulator.step()
        simulator.step()
        assert simulator.interactions == 2

    def test_run_converges_and_reports(self):
        simulator = Simulator(InfectionProtocol(10), random_state=1)
        result = simulator.run(max_interactions=100_000)
        assert result.converged
        assert result.interactions > 0
        assert result.rank_assignments == 9
        assert result.configuration.ranked_count() == 10
        assert result.protocol["name"] == "infection"

    def test_normalized_interactions(self):
        simulator = Simulator(InfectionProtocol(10), random_state=1)
        result = simulator.run(max_interactions=100_000)
        assert result.normalized_interactions == pytest.approx(result.interactions / 100.0)

    def test_budget_exhaustion_without_convergence(self):
        simulator = Simulator(InfectionProtocol(50), random_state=2)
        result = simulator.run(max_interactions=5)
        assert not result.converged
        assert result.interactions == 5

    def test_raise_on_limit(self):
        simulator = Simulator(InfectionProtocol(50), random_state=2)
        with pytest.raises(SimulationLimitExceeded) as excinfo:
            simulator.run(max_interactions=5, raise_on_limit=True)
        assert excinfo.value.result is not None
        assert excinfo.value.result.interactions == 5

    def test_determinism_for_fixed_seed(self):
        first = Simulator(InfectionProtocol(12), random_state=7).run(10_000)
        second = Simulator(InfectionProtocol(12), random_state=7).run(10_000)
        assert first.interactions == second.interactions

    def test_rejects_negative_budget(self):
        with pytest.raises(ValueError):
            Simulator(InfectionProtocol(4), random_state=0).run(-1)


class TestSimulatorHooks:
    def test_metrics_are_recorded(self):
        metrics = MetricsCollector({"infected": lambda c: c.ranked_count()}, interval=50)
        simulator = Simulator(InfectionProtocol(10), random_state=3, metrics=metrics)
        simulator.run(max_interactions=10_000)
        series = metrics.get("infected")
        assert series.interactions[0] == 0
        assert series.values[0] == 1.0
        assert series.values[-1] == 10.0

    def test_on_event_fires_only_on_changes(self):
        events = []
        simulator = Simulator(
            InfectionProtocol(8),
            random_state=4,
            on_event=lambda t, i, j, result: events.append((t, i, j)),
        )
        simulator.run(max_interactions=10_000)
        # Exactly n - 1 infections happen, each reported once.
        assert len(events) == 7

    def test_run_until_predicate(self):
        simulator = Simulator(InfectionProtocol(20), random_state=5)
        result = simulator.run_until(
            lambda config: config.ranked_count() >= 10, max_interactions=100_000
        )
        assert result.converged
        assert result.configuration.ranked_count() >= 10

    def test_run_until_budget_exhaustion(self):
        simulator = Simulator(InfectionProtocol(20), random_state=5)
        result = simulator.run_until(
            lambda config: config.ranked_count() >= 100, max_interactions=100
        )
        assert not result.converged

    def test_stop_on_convergence_false_runs_full_budget(self):
        simulator = Simulator(InfectionProtocol(4), random_state=6)
        result = simulator.run(max_interactions=2_000, stop_on_convergence=False)
        assert result.interactions == 2_000
        assert result.converged
