"""Tests for the probe-class table (dense fallback + hashed structure).

The table answers the array engine's chunk-wide "what does this state pair
do?" probe.  Load-bearing properties: the dense and hashed representations
are observationally identical (same answers, unknown = -1); the dense →
hashed migration at the size threshold preserves every entry; codes beyond
the old 8192-state cap stay warm (the cap is gone); and the open-addressed
internals handle collisions, tombstones and resizing correctly.
"""

import numpy as np
import pytest

from repro.core.probe_table import DENSE_STATE_LIMIT, ProbeClassTable


def lookup1(table, a, b):
    return int(
        table.lookup(
            np.asarray([a], dtype=np.int64), np.asarray([b], dtype=np.int64)
        )[0]
    )


class TestDenseRepresentation:
    def test_starts_dense_and_unknown(self):
        table = ProbeClassTable()
        table.ensure_capacity(10)
        assert table.backend == "dense"
        assert lookup1(table, 3, 7) == -1
        assert table.size == 0

    def test_set_and_lookup(self):
        table = ProbeClassTable()
        table.ensure_capacity(16)
        table.set(3, 7, 5)
        table.set(7, 3, 2)
        assert lookup1(table, 3, 7) == 5
        assert lookup1(table, 7, 3) == 2
        assert lookup1(table, 3, 3) == -1
        assert table.size == 2

    def test_growth_preserves_entries(self):
        table = ProbeClassTable()
        table.ensure_capacity(4)
        table.set(1, 2, 6)
        table.ensure_capacity(300)  # forces a 256 -> 512 style regrow
        assert table.backend == "dense"
        assert lookup1(table, 1, 2) == 6
        assert lookup1(table, 299, 299) == -1

    def test_discard(self):
        table = ProbeClassTable()
        table.ensure_capacity(8)
        table.set(1, 2, 3)
        assert table.discard(1, 2)
        assert not table.discard(1, 2)
        assert lookup1(table, 1, 2) == -1

    def test_codes_beyond_capacity_read_unknown(self):
        table = ProbeClassTable()
        table.ensure_capacity(16)
        table.set(1, 2, 3)
        # Codes past the allocated matrix are unknown, not an IndexError.
        assert lookup1(table, 300, 0) == -1
        assert table.get(0, 300) == -1
        mixed = table.lookup(
            np.asarray([1, 300], dtype=np.int64),
            np.asarray([2, 300], dtype=np.int64),
        )
        assert mixed.tolist() == [3, -1]


class TestHashedRepresentation:
    def make_hashed(self, **kwargs):
        table = ProbeClassTable(dense_limit=0, **kwargs)
        assert table.backend == "hashed"
        return table

    def test_set_and_lookup(self):
        table = self.make_hashed()
        table.set(100_000, 200_000, 7)
        table.set(200_000, 100_000, 1)
        assert lookup1(table, 100_000, 200_000) == 7
        assert lookup1(table, 200_000, 100_000) == 1
        assert lookup1(table, 100_000, 100_000) == -1
        assert table.size == 2

    def test_batch_lookup_mixed_hits_and_misses(self):
        table = self.make_hashed()
        rng = np.random.default_rng(0)
        pairs = rng.integers(0, 1 << 20, size=(500, 2))
        for index, (a, b) in enumerate(pairs.tolist()):
            table.set(a, b, index % 8)
        cu = np.concatenate([pairs[:, 0], rng.integers(0, 1 << 20, 100)])
        cv = np.concatenate([pairs[:, 1], rng.integers(0, 1 << 20, 100)])
        classes = table.lookup(cu.astype(np.int64), cv.astype(np.int64))
        expected = {(int(a), int(b)): i % 8 for i, (a, b) in enumerate(pairs.tolist())}
        for value, a, b in zip(classes.tolist(), cu.tolist(), cv.tolist()):
            assert value == expected.get((a, b), -1)

    def test_collisions_resolve_by_probing(self):
        # A tiny table forces long probe chains: with 8 slots and a 0.6
        # load limit, 4 entries guarantee at least one collision for some
        # key set; insert enough keys to exercise wrap-around probing.
        table = self.make_hashed(initial_hash_capacity=8)
        entries = [(k, (3 * k + 1) % 7) for k in range(0, 4)]
        for key, value in entries:
            table.set(key, key + 1, value)
        for key, value in entries:
            assert lookup1(table, key, key + 1) == value

    def test_resize_preserves_entries(self):
        table = self.make_hashed(initial_hash_capacity=8)
        for k in range(200):  # far beyond the initial 8 slots
            table.set(k, 2 * k, k % 8)
        assert table.capacity >= 256
        for k in range(200):
            assert lookup1(table, k, 2 * k) == k % 8
        assert table.size == 200

    def test_tombstones_keep_probe_chains_intact(self):
        # Insert colliding keys, delete one in the middle of the chain,
        # and verify the later entries still resolve (the tombstone must
        # not terminate the probe like an empty slot would).
        table = self.make_hashed(initial_hash_capacity=16)
        keys = list(range(9))  # load factor 9/16 > 0.5: chains exist
        for k in keys:
            table.set(k, 0, k % 8)
        assert table.discard(4, 0)
        for k in keys:
            expected = -1 if k == 4 else k % 8
            assert lookup1(table, k, 0) == expected
        # The tombstoned slot is reusable: live count does not leak.
        size_before = table.size
        table.set(4, 0, 5)
        assert lookup1(table, 4, 0) == 5
        assert table.size == size_before + 1

    def test_overwrite_updates_in_place(self):
        table = self.make_hashed()
        table.set(42, 43, 1)
        table.set(42, 43, 6)
        assert lookup1(table, 42, 43) == 6
        assert table.size == 1

    def test_discard_missing_key_is_false(self):
        table = self.make_hashed()
        table.set(1, 2, 3)
        assert not table.discard(2, 1)
        assert table.size == 1


class TestMigration:
    def test_dense_until_limit_then_hashed(self):
        table = ProbeClassTable(dense_limit=512)
        table.ensure_capacity(512)
        assert table.backend == "dense"
        table.ensure_capacity(513)
        assert table.backend == "hashed"
        # Hashed accepts any code from now on; ensure_capacity is a no-op.
        table.ensure_capacity(10**6)
        assert table.backend == "hashed"

    def test_migration_preserves_all_entries(self):
        table = ProbeClassTable(dense_limit=256)
        table.ensure_capacity(256)
        rng = np.random.default_rng(1)
        pairs = {
            (int(a), int(b)): int(v)
            for a, b, v in zip(
                rng.integers(0, 256, 300),
                rng.integers(0, 256, 300),
                rng.integers(0, 8, 300),
            )
        }
        for (a, b), value in pairs.items():
            table.set(a, b, value)
        table.ensure_capacity(257)
        assert table.backend == "hashed"
        assert table.size == len(pairs)
        for (a, b), value in pairs.items():
            assert lookup1(table, a, b) == value
        # And pairs never stored still read unknown after the migration.
        assert lookup1(table, 400, 400) == -1

    def test_bulk_migration_parity_at_scale(self):
        # Migration and rehashing go through the vectorized bulk insert;
        # verify it against a plain dict on a large random entry set that
        # forces several growth rounds after the migration.
        table = ProbeClassTable(dense_limit=1024)
        table.ensure_capacity(1024)
        rng = np.random.default_rng(3)
        expected = {}
        for a, b, v in zip(
            rng.integers(0, 1024, 30_000),
            rng.integers(0, 1024, 30_000),
            rng.integers(0, 8, 30_000),
        ):
            expected[(int(a), int(b))] = int(v)
            table.set(int(a), int(b), int(v))
        table.ensure_capacity(1025)  # migrate ~26k entries in bulk
        assert table.backend == "hashed"
        for a, b, v in zip(
            rng.integers(1024, 1 << 18, 30_000),
            rng.integers(1024, 1 << 18, 30_000),
            rng.integers(0, 8, 30_000),
        ):
            expected[(int(a), int(b))] = int(v)
            table.set(int(a), int(b), int(v))  # forces repeated rehashes
        assert table.size == len(expected)
        pairs = np.asarray(list(expected), dtype=np.int64)
        classes = table.lookup(pairs[:, 0], pairs[:, 1])
        assert classes.tolist() == [
            expected[(int(a), int(b))] for a, b in pairs.tolist()
        ]

    def test_dense_and_hashed_agree_at_small_sizes(self):
        dense = ProbeClassTable(dense_limit=DENSE_STATE_LIMIT)
        hashed = ProbeClassTable(dense_limit=0)
        dense.ensure_capacity(64)
        rng = np.random.default_rng(2)
        for _ in range(500):
            a, b, v = int(rng.integers(64)), int(rng.integers(64)), int(rng.integers(8))
            dense.set(a, b, v)
            hashed.set(a, b, v)
        cu = rng.integers(0, 64, 2000).astype(np.int64)
        cv = rng.integers(0, 64, 2000).astype(np.int64)
        assert np.array_equal(dense.lookup(cu, cv), hashed.lookup(cu, cv))
        assert dense.backend == "dense" and hashed.backend == "hashed"


class TestEngineBeyondOldCap:
    """The acceptance property: > 8192 states stay on the warm path."""

    N = 9000  # state-space size and population, both past the old cap

    def test_large_state_space_runs_warm_not_demoted(self):
        from repro.baselines.cai_ranking import CaiRanking, CaiState
        from repro.core.array_engine import ArraySimulator
        from repro.core.configuration import Configuration
        from repro.core.simulation import Simulator

        def configuration():
            # All labels distinct: the codec interns N > 8192 states the
            # moment the population is encoded.
            return Configuration(
                [CaiState(rank=label) for label in range(1, self.N + 1)]
            )

        array = ArraySimulator(
            CaiRanking(self.N), configuration=configuration(), random_state=7
        )
        assert array.mode == "lazy"  # no cap error, no object demotion
        assert array.codec.size == self.N > 8192
        assert array.kernel is not None
        probe_table = array._cache.probe_table
        assert probe_table.backend == "hashed"

        array.run(max_interactions=20_000, stop_on_convergence=False)
        assert array.mode == "lazy"  # still not demoted

        # Pairs the walk tabulated are warm for the chunk probe — even
        # for codes far beyond the old 8192 cap, where the previous dense
        # table silently answered "unknown" forever.
        high = [
            key for key in array.kernel.pair_dict
            if (key >> 21) > 8192 and (key & ((1 << 21) - 1)) > 8192
        ]
        assert high, "expected tabulated pairs with codes beyond the old cap"
        key = high[0]
        assert probe_table.get(key >> 21, key & ((1 << 21) - 1)) >= 0

        # And the trajectory is still bit-identical to the reference.
        reference = Simulator(
            CaiRanking(self.N), configuration=configuration(), random_state=7
        )
        reference.run(max_interactions=20_000, stop_on_convergence=False)
        assert [s.rank for s in array.configuration.states] == [
            s.rank for s in reference.configuration.states
        ]

    def test_forced_dense_large_space_still_raises(self):
        # The dense *transition table* budget is a separate mechanism and
        # must still refuse: only the probe-class cap was lifted.
        from repro.core.array_engine import ArraySimulator
        from repro.core.errors import StateSpaceTooLarge
        from repro.protocols.ranking.stable_ranking import StableRanking

        with pytest.raises(StateSpaceTooLarge):
            ArraySimulator(
                StableRanking(64), engine_mode="dense", max_dense_states=16
            )
