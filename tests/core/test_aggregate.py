"""Unit tests for the event-driven simulation base class."""

import numpy as np
import pytest

from repro.core.aggregate import EventDrivenSimulator
from repro.core.errors import SimulationLimitExceeded


class CollectorSimulator(EventDrivenSimulator):
    """Toy dynamics: one collector agent 'collects' the other n-1 agents.

    Each ordered interaction (collector, uncollected agent) collects that
    agent, so the waiting time between events is geometric with success
    probability (#uncollected)/(n(n-1)) — a coupon-collector-like process
    with a known expectation that the tests can check.
    """

    def __init__(self, n, random_state=None):
        super().__init__(n, random_state)
        self.remaining = n - 1

    def event_weights(self):
        return {"collect": self.remaining}

    def apply_event(self, name):
        assert name == "collect"
        self.remaining -= 1

    def is_done(self):
        return self.remaining == 0


class BrokenSimulator(EventDrivenSimulator):
    """Weights exceeding the number of ordered pairs must be rejected."""

    def event_weights(self):
        return {"impossible": self.n * self.n * 10}

    def apply_event(self, name):  # pragma: no cover - never reached
        pass

    def is_done(self):
        return False


class TestEventDrivenSimulator:
    def test_rejects_tiny_population(self):
        with pytest.raises(ValueError):
            CollectorSimulator(1)

    def test_runs_to_completion(self):
        simulator = CollectorSimulator(20, random_state=0)
        result = simulator.run(max_interactions=10**9)
        assert result.converged
        assert result.events == 19
        assert result.interactions >= 19

    def test_milestones_recorded_in_order(self):
        simulator = CollectorSimulator(30, random_state=1)
        result = simulator.run(
            max_interactions=10**9,
            milestones={
                "half": lambda: simulator.remaining <= 15,
                "done": lambda: simulator.remaining == 0,
            },
        )
        assert result.milestones["half"] <= result.milestones["done"]

    def test_budget_limits_run(self):
        simulator = CollectorSimulator(200, random_state=2)
        result = simulator.run(max_interactions=50)
        assert not result.converged
        assert result.interactions >= 50

    def test_budget_is_never_overshot(self):
        """Regression: a geometric waiting time that overshoots the budget
        must clamp ``interactions`` to the budget without applying the event.
        """
        for seed in range(25):
            simulator = CollectorSimulator(200, random_state=seed)
            budget = 37
            result = simulator.run(max_interactions=budget)
            assert result.interactions <= budget
            # Every applied event consumed at least one interaction, so the
            # clamped run can never report more events than interactions.
            assert result.events <= result.interactions

    def test_step_event_limit_clamps_without_applying(self):
        simulator = CollectorSimulator(1000, random_state=3)
        before = simulator.remaining
        # With 999 productive pairs out of 999000 ordered pairs the first
        # waiting time is ~1000 interactions, far past a limit of 2.
        applied = simulator.step_event(limit=2)
        assert applied is None
        assert simulator.interactions == 2
        assert simulator.events == 0
        assert simulator.remaining == before

    def test_dead_configuration_stops(self):
        class Dead(CollectorSimulator):
            def event_weights(self):
                return {}

        simulator = Dead(5, random_state=0)
        result = simulator.run(max_interactions=1000)
        assert not result.converged
        assert result.events == 0

    def test_inconsistent_weights_raise(self):
        with pytest.raises(SimulationLimitExceeded):
            BrokenSimulator(4, random_state=0).step_event()

    def test_total_time_matches_coupon_collector_expectation(self):
        """Average completion time should match sum_k n(n-1)/k within 10%."""
        n = 12
        expectation = sum(n * (n - 1) / k for k in range(1, n))
        times = []
        for seed in range(400):
            simulator = CollectorSimulator(n, random_state=seed)
            times.append(simulator.run(max_interactions=10**9).interactions)
        assert np.mean(times) == pytest.approx(expectation, rel=0.1)
