"""Tests for the scenario-bearing spec surface and the fault_storm preset."""

import json

import pytest

from repro.core import backends
from repro.core.errors import ExperimentError
from repro.experiments.cli import main
from repro.experiments.fault_storm import (
    FaultStormResult,
    fault_storm_result_from_rows,
    fault_storm_specs,
    format_fault_storm,
)
from repro.experiments.study import ExperimentSpec, ResultSet, Study
from repro.protocols.ranking.space_efficient import SpaceEfficientRanking


class TestSpecScenarioSurface:
    def test_workload_only_spec_payload_has_no_scenario_keys(self):
        spec = ExperimentSpec(variant="legacy", workload="figure2")
        payload = spec.as_dict()
        assert "scenario" not in payload
        assert "scenario_params" not in payload

    def test_static_scenario_normalizes_to_workload_alias(self):
        # Same identity → same store directory, same cell trajectories:
        # the two spellings are one spec.
        via_workload = ExperimentSpec(variant="x", workload="figure2")
        via_scenario = ExperimentSpec(variant="x", scenario="figure2")
        assert via_scenario.scenario is None
        assert via_scenario.workload == "figure2"
        assert via_scenario.identity_seed() == via_workload.identity_seed()
        assert via_scenario.as_dict() == via_workload.as_dict()

    def test_static_scenario_rejects_scenario_params(self):
        with pytest.raises(ExperimentError, match="no schedule|no scenario"):
            ExperimentSpec(
                variant="x", scenario="figure2", scenario_params={"events": 3}
            )

    def test_event_scenario_round_trips_and_rekeys_identity(self):
        spec = ExperimentSpec(
            variant="storm",
            scenario="fault_storm",
            scenario_params={"fault": "crash_reset", "events": 2,
                             "period_factor": 1.0},
        )
        rebuilt = ExperimentSpec.from_dict(json.loads(json.dumps(spec.as_dict())))
        assert rebuilt == spec
        plain = ExperimentSpec(variant="storm")
        assert spec.identity_seed() != plain.identity_seed()
        assert spec.build_schedule(8) != ()
        assert spec.has_events(8)
        assert not plain.has_events(8)

    def test_event_scenario_adopts_and_composes_initial_condition(self):
        default = ExperimentSpec(variant="a", scenario="fault_storm")
        assert default.workload == "fresh"
        composed = ExperimentSpec(
            variant="b", scenario="fault_storm", workload="figure2",
            protocol="stable-ranking-figure2",
        )
        assert composed.workload == "figure2"
        assert composed.scenario == "fault_storm"

    def test_event_scenario_excludes_milestones(self):
        with pytest.raises(ExperimentError, match="milestone"):
            ExperimentSpec(
                variant="x", scenario="fault_storm",
                milestone_fractions=(0.5,),
            )

    def test_unknown_scenario_and_bad_params_fail_at_spec_time(self):
        with pytest.raises(ExperimentError, match="unknown scenario"):
            ExperimentSpec(variant="x", scenario="meteor_storm")
        with pytest.raises(ExperimentError, match="unknown event kind"):
            ExperimentSpec(
                variant="x", scenario="fault_storm",
                scenario_params={"fault": "meteor_strike"},
            )
        # A typo'd applier kwarg or an out-of-range value must fail at
        # spec time, not mid-run inside a worker process.
        with pytest.raises(ExperimentError, match="does not accept"):
            ExperimentSpec(
                variant="x", scenario="fault_storm",
                scenario_params={"fault": "crash_reset", "cout": 2},
            )
        with pytest.raises(ExperimentError, match="fraction"):
            ExperimentSpec(
                variant="x", scenario="fault_storm",
                scenario_params={"fault": "scramble", "fraction": 1.5},
            )
        with pytest.raises(ExperimentError, match="count"):
            ExperimentSpec(
                variant="x", scenario="fault_storm",
                scenario_params={"fault": "crash_reset", "count": 0},
            )
        with pytest.raises(ExperimentError, match="fraction"):
            ExperimentSpec(
                variant="x", scenario="churn",
                scenario_params={"fraction": 1.5},
            )

    def test_incompatible_event_protocol_pair_raises_cleanly(self):
        # Ranking-family events write AgentState values; on a baseline
        # protocol with its own state class they must raise a clear
        # ExperimentError, not corrupt the population.
        from repro.experiments.study import Study
        from repro.experiments.fault_storm import fault_storm_specs

        specs = fault_storm_specs(
            n_values=(8,), repetitions=1, faults=("scramble",),
            events=1, period_factor=1.0, max_interactions_factor=10.0,
        )
        spec = ExperimentSpec.from_dict(
            {**specs[0].as_dict(), "protocol": "cai-ranking"}
        )
        with pytest.raises(ExperimentError, match="scramble"):
            Study(spec, name="bad").run()

    def test_duplicate_rank_workload_revision_rekeys_identity(self):
        # The v1.3 donor-selection fix changed the builder's rng draws,
        # so its cells must not share a store with pre-fix rows.
        fixed = ExperimentSpec(variant="x", workload="duplicate_rank")
        assert fixed.identity_dict()["workload_revision"] == 2
        assert "workload_revision" not in ExperimentSpec(
            variant="x"
        ).identity_dict()


class TestEventCapabilityNegotiation:
    def test_agent_backends_support_events(self):
        from repro.protocols.ranking.stable_ranking import StableRanking

        for name in ("reference", "array"):
            capability = backends.get_backend(name).capabilities(
                StableRanking(8), "fresh", 8, events=True
            )
            assert capability.supported and capability.supports_events

    def test_aggregate_backend_rejects_events(self):
        capability = backends.get_backend("aggregate").capabilities(
            SpaceEfficientRanking(8), "figure3", 8, events=True
        )
        assert not capability.supported
        assert not capability.supports_events
        with pytest.raises(ExperimentError, match="group counts"):
            backends.resolve_backend(
                SpaceEfficientRanking(8), "figure3", 8,
                engine="aggregate", events=True,
            )

    def test_auto_routes_event_cells_off_the_aggregate_engine(self):
        # The figure3 cell normally negotiates aggregate; with events it
        # must fall back to an agent-level backend.
        backend, _ = backends.resolve_backend(
            SpaceEfficientRanking(8), "figure3", 8, engine="auto",
            events=True,
        )
        assert backend.kind == "agent"

    def test_spec_resolution_respects_events(self):
        spec = ExperimentSpec(
            variant="storm",
            protocol="space-efficient-ranking",
            scenario="fault_storm",
            workload="figure3",
            scenario_params={"fault": "crash_reset", "events": 1,
                             "period_factor": 1.0},
        )
        assert spec.resolve_backend(8) != "aggregate"


class TestFaultStormPreset:
    def test_specs_shape(self):
        specs = fault_storm_specs(
            n_values=(8,), repetitions=2, events=2, period_factor=3.0
        )
        assert [spec.variant for spec in specs] == [
            "storm_duplicate_rank", "storm_crash_reset", "storm_scramble",
        ]
        assert all(spec.scenario == "fault_storm" for spec in specs)
        # Budget default leaves room for the final recovery.
        assert all(
            spec.max_interactions_factor == pytest.approx(3.0 * 4)
            for spec in specs
        )

    def test_static_scenario_rejected(self):
        with pytest.raises(ExperimentError, match="fires no events"):
            fault_storm_specs(scenario="figure2")

    def test_churn_scenario_yields_one_variant(self):
        specs = fault_storm_specs(
            n_values=(8,), scenario="churn", events=2, period_factor=2.0
        )
        assert [spec.variant for spec in specs] == ["churn"]

    def test_end_to_end_rows_carry_event_accounting(self):
        specs = fault_storm_specs(
            n_values=(8,), repetitions=1, faults=("crash_reset",),
            events=2, period_factor=20.0, max_interactions_factor=200.0,
        )
        result = Study(specs, name="fault_storm").run()
        assert len(result.rows) == 1
        row = result.rows[0]
        assert row.engine == "array"  # auto resolves the tabulated path
        assert row.extras["events_fired"] == 2.0
        assert 0.0 <= row.extras["events_recovered"] <= 2.0
        legacy = fault_storm_result_from_rows(result)
        table = format_fault_storm(legacy)
        assert "Fault-storm recovery" in table
        assert "storm_crash_reset" in table

    def test_result_from_rows_handles_empty_sets(self):
        empty = fault_storm_result_from_rows(ResultSet([], [], "storm"))
        assert empty.rows() == []
        specs = fault_storm_specs(n_values=(8,), repetitions=1)
        hollow = fault_storm_result_from_rows(ResultSet([], specs, "storm"))
        for row in hollow.rows():
            assert row["runs"] == 0
            assert row["recovered_fraction"] == 0.0
        assert "Fault-storm" in format_fault_storm(hollow)

    def test_empty_result_dataclass_renders(self):
        assert FaultStormResult(n_values=(), repetitions=0).rows() == []


class TestFaultStormCli:
    def test_run_fault_storm_smoke(self, tmp_path, capsys):
        code = main([
            "run", "fault_storm", "--n", "8", "--seeds", "1",
            "--faults", "crash_reset", "--events", "1",
            "--period-factor", "20", "--max-factor", "120",
            "--out", str(tmp_path), "--quiet",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Fault-storm recovery" in out
        store_dir = next(tmp_path.iterdir())
        rows = [
            json.loads(line)
            for line in (store_dir / "rows.jsonl").read_text().splitlines()
        ]
        assert len(rows) == 1
        assert rows[0]["extras"]["events_fired"] == 1.0

    def test_run_fault_storm_churn_scenario(self, tmp_path, capsys):
        code = main([
            "run", "fault_storm", "--scenario", "churn", "--n", "8",
            "--seeds", "1", "--events", "1", "--period-factor", "10",
            "--max-factor", "60", "--out", str(tmp_path), "--quiet",
        ])
        assert code == 0
        assert "'churn' scenario" in capsys.readouterr().out

    def test_list_includes_fault_storm(self, capsys):
        assert main(["list"]) == 0
        assert "fault_storm" in capsys.readouterr().out

    def test_list_scenarios_matrix(self, capsys):
        assert main(["list", "--scenarios"]) == 0
        out = capsys.readouterr().out
        assert "scenarios (initial condition + event schedule)" in out
        assert "static (no events)" in out
        assert "fault_storm" in out
        assert "workload=fresh" in out
