"""Tests for the initial-configuration generators."""

import pytest

from repro.core.errors import ConfigurationError
from repro.core.state import classify_role, Role
from repro.experiments.workloads import (
    adversarial_configuration,
    duplicate_rank_configuration,
    figure2_initial_configuration,
    figure3_initial_configuration,
    fresh_configuration,
    missing_rank_configuration,
    valid_ranking_configuration,
)
from repro.protocols.ranking.space_efficient import SpaceEfficientRanking
from repro.protocols.ranking.stable_ranking import StableRanking


class TestSimpleWorkloads:
    def test_fresh_configuration_matches_protocol(self):
        protocol = StableRanking(12)
        config = fresh_configuration(protocol)
        assert config.population_size == 12
        assert all(state.in_leader_election for state in config.states)

    def test_valid_ranking_configuration(self):
        config = valid_ranking_configuration(9)
        assert config.is_valid_ranking()
        with pytest.raises(ConfigurationError):
            valid_ranking_configuration(0)

    def test_duplicate_rank_configuration(self):
        config = duplicate_rank_configuration(20, duplicates=3, random_state=0)
        assert not config.is_valid_ranking()
        # Donors are drawn disjointly from victims and donor ranks come
        # from the pre-fault ranking, so the injected count is exact.
        assert len(config.duplicate_ranks()) == 3
        with pytest.raises(ConfigurationError):
            duplicate_rank_configuration(5, duplicates=5)

    def test_duplicate_rank_count_is_exact_for_every_seed(self):
        # The fix for order-dependent donor selection: whatever the draw,
        # `duplicates` ranks are duplicated and as many go missing.
        for seed in range(20):
            for duplicates in (1, 4, 10):
                config = duplicate_rank_configuration(
                    20, duplicates=duplicates, random_state=seed
                )
                assert len(config.duplicate_ranks()) == duplicates, (
                    seed, duplicates,
                )
                held = set(config.assigned_ranks())
                missing = set(range(1, 21)) - held
                assert len(missing) == duplicates

    def test_duplicate_rank_bound_requires_distinct_donors(self):
        # Exactness needs a distinct untouched donor per victim.
        with pytest.raises(ConfigurationError):
            duplicate_rank_configuration(20, duplicates=11)

    def test_missing_rank_configuration(self):
        protocol = StableRanking(10)
        config = missing_rank_configuration(protocol, missing_rank=4)
        assert config.ranked_count() == 9
        assert 4 not in config.assigned_ranks()
        with pytest.raises(ConfigurationError):
            missing_rank_configuration(protocol, missing_rank=11)


class TestFigureWorkloads:
    def test_figure2_configuration_structure(self):
        protocol = StableRanking(16)
        config = figure2_initial_configuration(protocol)
        assert config.population_size == 16
        assert sorted(config.assigned_ranks()) == list(range(2, 17))
        phase_agents = config.agents_with_role(Role.PHASE)
        assert len(phase_agents) == 1
        lone = config[phase_agents[0]]
        assert lone.phase == protocol.schedule.phase_count
        assert lone.alive_count == protocol.l_max

    def test_figure3_configuration_structure(self):
        protocol = SpaceEfficientRanking(16)
        config = figure3_initial_configuration(protocol)
        assert config.ranked_count() == 1
        assert config[0].rank == 1
        assert all(state.in_leader_election for state in config.states[1:])


class TestAdversarialWorkload:
    def test_states_stay_within_protocol_bounds(self):
        protocol = StableRanking(24)
        config = adversarial_configuration(protocol, random_state=1)
        assert config.population_size == 24
        for state in config.states:
            if state.rank is not None and not state.in_reset:
                assert 1 <= state.rank <= 24
            if state.phase is not None:
                assert 1 <= state.phase <= protocol.schedule.phase_count
            if state.alive_count is not None:
                assert 1 <= state.alive_count <= protocol.l_max

    def test_is_random_but_reproducible(self):
        protocol = StableRanking(24)
        first = adversarial_configuration(protocol, random_state=5)
        second = adversarial_configuration(protocol, random_state=5)
        third = adversarial_configuration(protocol, random_state=6)
        as_tuples = lambda config: [state.as_tuple() for state in config.states]
        assert as_tuples(first) == as_tuples(second)
        assert as_tuples(first) != as_tuples(third)
