"""Tests for the experiment drivers (small parameterizations).

The benchmarks run the paper-scale versions; these tests only check that each
driver produces structurally correct, plausible output quickly.
"""

import pytest

from repro.core.errors import ExperimentError
from repro.experiments.comparison import format_comparison, run_comparison
from repro.experiments.fault_injection import (
    format_fault_injection,
    run_fault_injection,
)
from repro.experiments.figure2 import format_figure2, run_figure2
from repro.experiments.figure3 import format_figure3, run_figure3
from repro.experiments.scaling import format_scaling, run_scaling


class TestFigure2Driver:
    def test_series_structure_and_recovery(self):
        result = run_figure2(n=64, random_state=0, samples=80)
        assert result.n == 64
        assert len(result.interactions) == len(result.ranked_agents)
        assert len(result.interactions) == len(result.average_phase)
        # Starts with n - 1 ranked agents and ends with all ranked.
        assert result.ranked_agents[0] == 63
        assert result.converged
        assert result.ranked_agents[-1] == 64
        # At least one reset happened (the whole point of the workload).
        assert result.resets >= 1
        assert min(result.ranked_agents) < 63
        rows = result.rows()
        assert rows[0]["interactions_over_n2"] == 0.0

    def test_formatting_contains_key_facts(self):
        result = run_figure2(n=32, random_state=1, samples=40)
        text = format_figure2(result)
        assert "Figure 2" in text
        assert "ranked agents" in text
        assert "average phase" in text


class TestFigure3Driver:
    def test_aggregate_engine_sweep(self):
        result = run_figure3(n_values=(64, 128), repetitions=4, engine="aggregate")
        assert set(result.samples) == {64, 128}
        for n in (64, 128):
            for fraction in result.fractions:
                assert len(result.samples[n][fraction]) == 4
        # Later fractions take longer.
        assert result.mean(128, 0.5) < result.mean(128, 0.9375)
        # Normalized times are O(1) (flat in n): same order of magnitude.
        assert result.mean(128, 0.5) < 4 * result.mean(64, 0.5) + 1
        text = format_figure3(result)
        assert "Figure 3" in text and "frac 0.5" in text

    def test_reference_engine_agrees_roughly_with_aggregate(self):
        aggregate = run_figure3(
            n_values=(48,), fractions=(0.5,), repetitions=6, engine="aggregate"
        )
        reference = run_figure3(
            n_values=(48,), fractions=(0.5,), repetitions=6, engine="reference"
        )
        assert aggregate.mean(48, 0.5) == pytest.approx(reference.mean(48, 0.5), rel=0.6)

    def test_validation(self):
        with pytest.raises(ExperimentError):
            run_figure3(engine="magic")
        with pytest.raises(ExperimentError):
            run_figure3(repetitions=0)


class TestScalingDriver:
    def test_normalized_times_are_flat(self):
        result = run_scaling(n_values=(64, 256), repetitions=4, engine="aggregate")
        rows = result.rows()
        assert len(rows) == 2
        values = [row["mean_over_n2_logn"] for row in rows]
        assert max(values) / min(values) < 2.5
        assert "constant" in format_scaling(result)

    def test_validation(self):
        with pytest.raises(ExperimentError):
            run_scaling(engine="magic")


class TestComparisonDriver:
    def test_fresh_comparison_structure(self):
        result = run_comparison(
            n_values=(16,),
            repetitions=2,
            protocols=("cai-ranking", "stable-ranking"),
            max_interactions_factor=600,
        )
        rows = result.rows()
        assert {row["protocol"] for row in rows} == {"cai-ranking", "stable-ranking"}
        assert all(row["converged_fraction"] == 1.0 for row in rows)
        cai = next(row for row in rows if row["protocol"] == "cai-ranking")
        stable = next(row for row in rows if row["protocol"] == "stable-ranking")
        assert cai["overhead_states"] == 0
        assert stable["overhead_states"] > 0
        assert "Baseline comparison" in format_comparison(result)

    def test_corrupted_workload(self):
        result = run_comparison(
            n_values=(16,),
            repetitions=2,
            workload="corrupted",
            protocols=("stable-ranking",),
            max_interactions_factor=1500,
        )
        assert result.rows()[0]["converged_fraction"] == 1.0

    def test_validation(self):
        with pytest.raises(ExperimentError):
            run_comparison(workload="nope")
        with pytest.raises(ExperimentError):
            run_comparison(protocols=("unknown-protocol",))


class TestFaultInjectionDriver:
    def test_all_faults_recover(self):
        result = run_fault_injection(
            n_values=(16,), repetitions=2, max_interactions_factor=2000
        )
        rows = result.rows()
        assert {row["fault"] for row in rows} == {
            "duplicate_rank",
            "missing_rank",
            "adversarial",
        }
        assert all(row["recovered_fraction"] == 1.0 for row in rows)
        assert "Fault-injection" in format_fault_injection(result)

    def test_validation(self):
        with pytest.raises(ExperimentError):
            run_fault_injection(faults=("meteor_strike",))
        with pytest.raises(ExperimentError):
            run_fault_injection(repetitions=0)

    def test_empty_cells_report_zero_instead_of_raising(self):
        # Regression: an empty cell used to blow up the summary (empty
        # sample) and the convergence lookup (missing key); it must
        # render as 0 runs / 0.0 recovered instead.
        from repro.experiments.fault_injection import (
            FaultInjectionResult,
            fault_injection_result_from_rows,
            fault_injection_specs,
        )
        from repro.experiments.study import ResultSet

        hollow = fault_injection_result_from_rows(ResultSet([], [], "faults"))
        assert hollow.rows() == []

        specs = fault_injection_specs(n_values=(8,), repetitions=1)
        no_rows = fault_injection_result_from_rows(
            ResultSet([], specs, "faults")
        )
        rows = no_rows.rows()
        assert {row["fault"] for row in rows} == {
            "duplicate_rank", "missing_rank", "adversarial",
        }
        assert all(row["runs"] == 0 for row in rows)
        assert all(row["recovered_fraction"] == 0.0 for row in rows)
        assert all(row["mean_recovery_interactions"] == 0.0 for row in rows)
        assert "Fault-injection" in format_fault_injection(no_rows)

        # A result object missing a convergence entry entirely must not
        # KeyError either.
        partial = FaultInjectionResult(n_values=(8,), repetitions=1)
        partial.recovery[("duplicate_rank", 8)] = [12]
        assert partial.rows()[0]["recovered_fraction"] == 0.0
