"""The topology axis through the study layer: spec normalization and
identity back-compat, capability-driven backend routing, row recording,
and the ``topology_sweep`` preset.
"""

import pytest

from repro.core.backends import resolve_backend
from repro.core.errors import ExperimentError
from repro.experiments.study import ExperimentSpec, RunRow, Study
from repro.experiments.topology_sweep import (
    format_topology_sweep,
    topology_sweep_result_from_rows,
    topology_sweep_specs,
)
from repro.protocols.primitives.one_way_epidemic import OneWayEpidemicProtocol


def _spec(**kwargs):
    base = dict(
        variant="t",
        protocol="one-way-epidemic",
        n_values=(16,),
        seeds=2,
        max_interactions_factor=50.0,
    )
    base.update(kwargs)
    return ExperimentSpec(**base)


class TestSpecNormalization:
    def test_unset_topology_keeps_legacy_identity(self):
        # A spec with no topology must hash and serialize exactly as
        # before the axis existed: the keys are simply absent.
        payload = _spec().as_dict()
        assert "topology" not in payload
        assert "topology_params" not in payload

    def test_explicit_complete_normalizes_to_unset(self):
        assert _spec(topology="complete").topology is None
        assert _spec(topology="complete").as_dict() == _spec().as_dict()

    def test_restricted_topology_is_part_of_the_identity(self):
        ring = _spec(topology="ring")
        assert ring.as_dict()["topology"] == "ring"
        assert ring.as_dict() != _spec().as_dict()
        assert (
            _spec(topology="power_law", topology_params={"m": 3}).as_dict()
            != _spec(topology="power_law").as_dict()
        )

    def test_round_trip_through_dict(self):
        spec = _spec(topology="grid2d", topology_params={"rows": 4})
        clone = ExperimentSpec.from_dict(spec.as_dict())
        assert clone.topology == "grid2d"
        assert dict(clone.topology_params) == {"rows": 4}
        assert clone.as_dict() == spec.as_dict()

    def test_params_without_topology_rejected(self):
        with pytest.raises(ExperimentError):
            _spec(topology_params={"rows": 4})

    def test_complete_with_params_rejected(self):
        with pytest.raises(ExperimentError):
            _spec(topology="complete", topology_params={"rows": 4})

    def test_unknown_topology_rejected(self):
        with pytest.raises(ExperimentError, match="unknown topology"):
            _spec(topology="moebius")

    def test_invalid_params_rejected_at_spec_time(self):
        # Validation happens per n at construction, not at run time.
        with pytest.raises(ExperimentError):
            _spec(topology="grid2d", topology_params={"rows": 3})  # 3 ∤ 16

    def test_build_topology_per_cell(self):
        spec = _spec(topology="ring")
        assert spec.build_topology(16).family == "ring"
        assert _spec().build_topology(16) is None


class TestBackendRouting:
    def test_distribution_backends_decline_restricted_cells(self):
        protocol = OneWayEpidemicProtocol(16)
        for engine in ("aggregate", "group"):
            from repro.core.backends import get_backend

            capability = get_backend(engine).capabilities(
                protocol, "fresh", 16, topology="ring"
            )
            assert not capability.supported
            assert not capability.supports_topology

    def test_auto_never_routes_restricted_cells_to_population_level(self):
        # The epidemic is exactly the protocol "auto" loves to hand to
        # the count engines — a restricted topology must forbid that,
        # at every n including the group engine's preferred huge sizes.
        for n in (16, 65536):
            protocol = OneWayEpidemicProtocol(n)
            backend, capability = resolve_backend(
                protocol, "fresh", n, topology="ring"
            )
            assert backend.kind == "agent"
            assert backend.name not in ("aggregate", "group")
            assert capability.supported

    def test_explicit_population_engine_with_topology_rejected(self):
        for engine in ("aggregate", "group"):
            with pytest.raises(ExperimentError):
                _spec(engine=engine, topology="ring")

    def test_spec_resolves_restricted_cells_to_agent_backends(self):
        spec = _spec(engine="auto", topology="ring")
        assert spec.resolve_backend(16) not in ("aggregate", "group")


class TestRowRecording:
    def test_rows_record_the_topology(self):
        result = Study([_spec(topology="ring")], name="t", store=None).run()
        assert all(row.topology == "ring" for row in result.rows)
        assert all(
            row.engine not in ("aggregate", "group") for row in result.rows
        )

    def test_unrestricted_rows_record_complete(self):
        result = Study([_spec()], name="t", store=None).run()
        assert all(row.topology == "complete" for row in result.rows)

    def test_legacy_row_payloads_load_as_complete(self):
        row = Study([_spec()], name="t", store=None).run().rows[0]
        payload = row.as_dict()
        payload.pop("topology", None)
        assert RunRow.from_dict(payload).topology == "complete"

    def test_flat_dict_exposes_topology(self):
        row = Study([_spec(topology="ring")], name="t", store=None).run().rows[0]
        assert row.flat_dict()["topology"] == "ring"


class TestTopologySweepPreset:
    def test_specs_lead_with_the_complete_baseline(self):
        specs = topology_sweep_specs(
            topologies=("ring",), n_values=(16,), repetitions=2
        )
        assert [spec.variant for spec in specs] == ["complete", "ring"]
        assert specs[0].topology is None
        assert specs[1].topology == "ring"
        assert all(spec.protocol == "one-way-epidemic" for spec in specs)

    def test_duplicate_and_unknown_topologies(self):
        specs = topology_sweep_specs(
            topologies=("ring", "ring", "complete"), n_values=(16,)
        )
        assert [spec.variant for spec in specs] == ["complete", "ring"]
        with pytest.raises(ExperimentError, match="unknown topology"):
            topology_sweep_specs(topologies=("torus",))
        with pytest.raises(ExperimentError):
            topology_sweep_specs(topologies=())

    def test_sweep_result_and_render_with_theory_overlay(self):
        specs = topology_sweep_specs(
            topologies=("ring",), n_values=(16,), repetitions=3
        )
        sweep = topology_sweep_result_from_rows(
            Study(specs, name="sweep", store=None).run()
        )
        # The ring epidemic is Θ(n²); the complete baseline Θ(n log n).
        assert sweep.mean("ring", 16) > sweep.mean("complete", 16)
        rows = {(row["topology"], row["n"]): row for row in sweep.rows()}
        assert rows[("ring", 16)]["expected"] == 16.0 * 15.0
        assert rows[("ring", 16)]["vs_complete"] > 1.0
        text = format_topology_sweep(sweep)
        assert "Herman ring band" in text
        assert "4n²/27" in text
        assert "vs_complete" in text
