"""Tests for the experiment harness, CSV recording and ASCII rendering."""

import pytest

from repro.baselines.cai_ranking import CaiRanking
from repro.core.errors import ExperimentError
from repro.experiments.ascii_plot import ascii_plot, format_table
from repro.experiments.harness import ExperimentRunner
from repro.experiments.recording import read_csv, write_csv, write_json


class TestExperimentRunner:
    def test_runs_and_summarizes(self):
        runner = ExperimentRunner(
            protocol_factory=lambda: CaiRanking(8),
            max_interactions=100_000,
            random_state=0,
        )
        sweep = runner.run(repetitions=4)
        assert len(sweep.records) == 4
        assert sweep.convergence_rate() == 1.0
        summaries = sweep.summary_by_n(lambda record: record.normalized_interactions)
        assert set(summaries) == {8}
        assert summaries[8].count == 4
        assert all(row["protocol"] == "cai-ranking" for row in sweep.rows())

    def test_runs_are_deterministic_per_master_seed(self):
        def build():
            return ExperimentRunner(
                protocol_factory=lambda: CaiRanking(8),
                max_interactions=100_000,
                random_state=42,
            )

        first = build().run(repetitions=3)
        second = build().run(repetitions=3)
        assert [r.interactions for r in first.records] == [
            r.interactions for r in second.records
        ]

    def test_run_until_predicate(self):
        runner = ExperimentRunner(
            protocol_factory=lambda: CaiRanking(10),
            max_interactions=200_000,
            random_state=1,
        )
        sweep = runner.run_until(
            repetitions=2,
            predicate=lambda config: len(set(config.ranks())) >= 5,
        )
        assert all(record.converged for record in sweep.records)

    def test_extras_callback(self):
        runner = ExperimentRunner(
            protocol_factory=lambda: CaiRanking(8),
            max_interactions=100_000,
            random_state=2,
        )
        sweep = runner.run(
            repetitions=2,
            extras=lambda result, simulator: {"ranked": result.configuration.ranked_count()},
        )
        assert all(record.extras["ranked"] == 8 for record in sweep.records)

    def test_validation(self):
        with pytest.raises(ExperimentError):
            ExperimentRunner(lambda: CaiRanking(4), max_interactions=0)
        runner = ExperimentRunner(lambda: CaiRanking(4), max_interactions=10)
        with pytest.raises(ExperimentError):
            runner.run(repetitions=0)


class TestRecording:
    def test_csv_round_trip(self, tmp_path):
        rows = [
            {"n": 8, "value": 1.5, "converged": True},
            {"n": 16, "value": 2.5, "converged": False, "extra": "x"},
        ]
        path = write_csv(tmp_path / "out.csv", rows)
        loaded = read_csv(path)
        assert loaded[0]["n"] == 8
        assert loaded[0]["value"] == 1.5
        assert loaded[0]["converged"] is True
        assert loaded[1]["extra"] == "x"
        assert loaded[0]["extra"] is None

    def test_empty_rows_are_rejected(self, tmp_path):
        with pytest.raises(ExperimentError):
            write_csv(tmp_path / "out.csv", [])

    def test_write_json(self, tmp_path):
        path = write_json(tmp_path / "out.json", {"a": [1, 2, 3]})
        assert path.read_text().startswith("{")


class TestAsciiRendering:
    def test_format_table_alignment(self):
        text = format_table([{"n": 8, "time": 1.23456}, {"n": 128, "time": 12.3}])
        lines = text.splitlines()
        assert lines[0].startswith("n")
        assert "1.235" in text
        assert len(lines) == 4

    def test_format_table_empty(self):
        assert format_table([]) == "(no data)"

    def test_ascii_plot_contains_points_and_labels(self):
        text = ascii_plot([0, 1, 2, 3], [0, 1, 4, 9], width=20, height=5, title="squares")
        assert "squares" in text
        assert "*" in text
        assert "9" in text

    def test_ascii_plot_validation(self):
        with pytest.raises(ValueError):
            ascii_plot([1, 2], [1])
        assert ascii_plot([], []) == "(no data)"
