"""Tests for the declarative study API (spec, store, parallel execution).

The load-bearing properties: specs are plain validated data with a stable
identity; a study's cells are deterministic in their coordinates (so
parallel execution is bit-identical to serial and a store can be resumed);
and the unified row schema round-trips through JSON and CSV.
"""

import json

import pytest

from repro.core.errors import ExperimentError
from repro.experiments.store import ResultStore
from repro.experiments.study import (
    ExperimentSpec,
    ResultSet,
    RunRow,
    Study,
    execute_cell,
)
import repro.experiments.study as study_module


def small_spec(**overrides):
    defaults = dict(
        variant="stable-ranking",
        protocol="stable-ranking",
        n_values=(8,),
        seeds=2,
        max_interactions_factor=2000.0,
    )
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


class TestExperimentSpec:
    def test_validation(self):
        with pytest.raises(ExperimentError):
            small_spec(engine="magic")
        with pytest.raises(ExperimentError):
            small_spec(protocol="unknown-protocol")
        with pytest.raises(ExperimentError):
            small_spec(workload="unknown-workload")
        with pytest.raises(ExperimentError):
            small_spec(seeds=0)
        with pytest.raises(ExperimentError):
            small_spec(n_values=())
        with pytest.raises(ExperimentError):
            small_spec(extractors=("nope",))
        # Engine constraints come from the backends' capability probes:
        # aggregate is tied to the space-efficient protocol + figure3 start
        # and records no series.
        with pytest.raises(ExperimentError):
            small_spec(engine="aggregate")
        with pytest.raises(ExperimentError):
            small_spec(
                protocol="space-efficient-ranking", engine="aggregate",
                workload="fresh",
            )
        with pytest.raises(ExperimentError):
            ExperimentSpec(
                variant="agg",
                protocol="space-efficient-ranking",
                engine="aggregate",
                workload="figure3",
                n_values=(8,),
                samples=10,
            )

    def test_dict_round_trip(self):
        spec = small_spec(milestone_fractions=(0.75, 0.5), extractors=("ranked_agents",))
        rebuilt = ExperimentSpec.from_dict(spec.as_dict())
        assert rebuilt == spec
        assert rebuilt.milestone_fractions == (0.5, 0.75)  # normalized order

    def test_identity_excludes_matrix_extent(self):
        # Extending seeds or n_values must not re-key the study store.
        a = small_spec(n_values=(8,), seeds=2)
        b = small_spec(n_values=(8, 16), seeds=50)
        assert a.identity_seed() == b.identity_seed()
        assert Study([a]).content_hash() == Study([b]).content_hash()
        # ...but anything trajectory-relevant must.
        c = small_spec(random_state=1)
        assert a.identity_seed() != c.identity_seed()

    def test_cells_are_deterministic_across_calls(self):
        spec = small_spec(seeds=1)
        first = execute_cell(spec.as_dict(), 8, 0)
        second = execute_cell(spec.as_dict(), 8, 0)
        assert first == second
        other_seed = execute_cell(spec.as_dict(), 8, 1)
        assert other_seed["interactions"] != first["interactions"] or (
            other_seed != first
        )


class TestStudyExecution:
    def test_run_matrix_and_rows(self):
        spec = small_spec(n_values=(8, 16), seeds=2)
        result = Study(spec, name="matrix").run()
        assert len(result.rows) == 4
        assert [(r.n, r.seed_index) for r in result.rows] == [
            (8, 0), (8, 1), (16, 0), (16, 1),
        ]
        assert all(r.converged for r in result.rows)
        assert all(r.study == "matrix" for r in result.rows)
        assert result.convergence_rate() == 1.0

    def test_parallel_matches_serial_bit_for_bit(self):
        spec = small_spec(n_values=(8, 16), seeds=2)
        serial = Study(spec, name="par").run()
        parallel = Study(spec, name="par", jobs=2).run()
        assert [r.as_dict() for r in parallel.rows] == [
            r.as_dict() for r in serial.rows
        ]

    def test_duplicate_variants_rejected(self):
        with pytest.raises(ExperimentError):
            Study([small_spec(), small_spec()])

    def test_summary_and_filter(self):
        spec = small_spec(n_values=(8, 16), seeds=3)
        result = Study(spec, name="sum").run()
        summaries = result.summary(lambda row: row.normalized_interactions)
        assert set(summaries) == {("stable-ranking", 8), ("stable-ranking", 16)}
        assert summaries[("stable-ranking", 8)].count == 3
        assert len(result.filter(n=16)) == 3


class TestBatchedExecution:
    """Same-spec seed groups run as one lockstep unit — invisibly.

    The grouping is a scheduling decision: rows must be bit-identical to
    per-seed execution (the lane rng derives from the cell coordinates,
    never from the group), whatever the job count, and a resumed store
    must re-key only the missing seeds into a fresh, smaller batch.
    """

    def test_batched_rows_match_per_seed_cells(self):
        spec = small_spec(n_values=(8,), seeds=5)
        result = Study(spec, name="batched").run()
        assert [row.engine for row in result.rows] == ["array-batched"] * 5
        for row in result.rows:
            cell = execute_cell(spec.as_dict(), 8, row.seed_index)
            batched = row.as_dict()
            batched.pop("study")
            cell.pop("study")
            # The engine field records which backend actually ran the
            # cell; everything trajectory-level must agree exactly.
            assert batched.pop("engine") == "array-batched"
            assert cell.pop("engine") == "array"
            assert batched == cell

    def test_small_groups_stay_per_seed(self):
        # Two seeds do not amortize the lockstep overhead; the capability
        # negotiation keeps them on the serial array engine.
        result = Study(small_spec(n_values=(8,), seeds=2), name="solo").run()
        assert [row.engine for row in result.rows] == ["array", "array"]

    def test_parallel_batched_matches_serial_jobs1(self):
        spec = small_spec(n_values=(8, 16), seeds=5)
        serial = Study(spec, name="batch-par").run()
        parallel = Study(spec, name="batch-par", jobs=2).run()
        assert all(row.engine == "array-batched" for row in serial.rows)
        assert [r.as_dict() for r in parallel.rows] == [
            r.as_dict() for r in serial.rows
        ]

    def test_resume_mid_batch_recomputes_only_missing_seeds(
        self, tmp_path, monkeypatch
    ):
        spec = small_spec(n_values=(8,), seeds=8)
        study = Study(spec, name="midbatch", store=tmp_path)
        first = study.run()
        assert [row.engine for row in first.rows] == ["array-batched"] * 8

        # Drop a mid-matrix subset of seeds from the store, as if those
        # lanes had never been appended before an interruption.
        dropped = {2, 3, 5, 6}
        rows_path = study.store.rows_path
        kept = [
            line
            for line in rows_path.read_text().splitlines()
            if json.loads(line)["seed_index"] not in dropped
        ]
        rows_path.write_text("\n".join(kept) + "\n")

        batch_calls = []
        cell_calls = []
        original_batch = study_module.execute_batch

        def counting_batch(payload, n, seed_indices):
            batch_calls.append((n, tuple(seed_indices)))
            return original_batch(payload, n, seed_indices)

        def counting_cell(*args):
            cell_calls.append(args)
            return study_module.execute_cell(*args)

        import repro.experiments.parallel as parallel_module
        monkeypatch.setattr(parallel_module, "execute_batch", counting_batch)
        monkeypatch.setattr(parallel_module, "execute_cell", counting_cell)

        resumed = Study(spec, name="midbatch", store=tmp_path).run()
        # The four missing seeds became exactly one smaller batch unit...
        assert batch_calls == [(8, (2, 3, 5, 6))]
        assert cell_calls == []
        # ...whose lanes reproduce the original full-batch rows exactly.
        assert [r.as_dict() for r in resumed.rows] == [
            r.as_dict() for r in first.rows
        ]


class TestStoreAndRoundTrips:
    def test_resume_loads_cells_instead_of_rerunning(self, tmp_path, monkeypatch):
        spec = small_spec(n_values=(8,), seeds=3)
        first = Study(spec, name="resume", store=tmp_path).run()
        assert len(first.rows) == 3

        calls = []
        original = study_module.execute_cell

        def counting(*args):
            calls.append(args)
            return original(*args)

        monkeypatch.setattr(study_module, "execute_cell", counting)
        # parallel.run_cells imported execute_cell by name; patch there too.
        import repro.experiments.parallel as parallel_module
        monkeypatch.setattr(parallel_module, "execute_cell", counting)

        second = Study(spec, name="resume", store=tmp_path).run()
        assert calls == []  # every cell came from the store
        assert [r.as_dict() for r in second.rows] == [
            r.as_dict() for r in first.rows
        ]

        # Extending the matrix only computes the new cells.
        extended = Study(
            small_spec(n_values=(8,), seeds=5), name="resume", store=tmp_path
        ).run()
        assert len(calls) == 2
        assert len(extended.rows) == 5
        assert [r.as_dict() for r in extended.rows[:3]] == [
            r.as_dict() for r in first.rows
        ]

    def test_store_layout(self, tmp_path):
        spec = small_spec(n_values=(8,), seeds=1)
        study = Study(spec, name="layout", store=tmp_path)
        study.run()
        directory = study.store.directory
        assert directory.name == f"layout-{study.content_hash()}"
        assert (directory / "spec.json").exists()
        assert (directory / "rows.jsonl").exists()
        assert (directory / "rows.csv").exists()
        payload = json.loads((directory / "spec.json").read_text())
        assert payload["study"] == "layout"
        assert payload["specs"][0]["variant"] == "stable-ranking"

    def test_store_rejects_path_like_names(self, tmp_path):
        with pytest.raises(ExperimentError):
            ResultStore(tmp_path, "bad/name", "abc")

    def test_torn_trailing_line_keeps_store_resumable(self, tmp_path):
        # A run killed mid-append leaves a partial final line; resume must
        # skip it (and recompute that cell), not crash.
        spec = small_spec(n_values=(8,), seeds=2)
        study = Study(spec, name="torn", store=tmp_path)
        first = study.run()
        with study.store.rows_path.open("a") as handle:
            handle.write('{"variant": "stable-ranking", "n": 8, "seed')
        resumed = Study(spec, name="torn", store=tmp_path).run()
        assert [r.as_dict() for r in resumed.rows] == [
            r.as_dict() for r in first.rows
        ]

    def test_corrupt_middle_line_raises(self, tmp_path):
        spec = small_spec(n_values=(8,), seeds=2)
        study = Study(spec, name="corrupt", store=tmp_path)
        study.run()
        lines = study.store.rows_path.read_text().splitlines()
        lines[0] = "not json at all"
        study.store.rows_path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ExperimentError, match="corrupt row store"):
            Study(spec, name="corrupt", store=tmp_path).run()

    def test_json_round_trip(self, tmp_path):
        spec = small_spec(n_values=(8,), seeds=2)
        result = Study(spec, name="json").run()
        path = tmp_path / "result.json"
        result.to_json(path)
        loaded = ResultSet.from_json(path)
        assert loaded.name == "json"
        assert [r.as_dict() for r in loaded.rows] == [
            r.as_dict() for r in result.rows
        ]
        assert loaded.specs == result.specs

    def test_csv_round_trip(self, tmp_path):
        from repro.experiments.recording import read_csv

        spec = small_spec(n_values=(8,), seeds=2)
        result = Study(spec, name="csv").run()
        path = tmp_path / "rows.csv"
        result.to_csv(path)
        rows = read_csv(path)
        assert len(rows) == 2
        for loaded, row in zip(rows, result.rows):
            assert loaded["variant"] == row.variant
            assert loaded["n"] == row.n
            assert loaded["seed_index"] == row.seed_index
            assert loaded["interactions"] == row.interactions
            assert loaded["converged"] == row.converged


class TestMeasurements:
    def test_milestones_on_reference_engine(self):
        spec = ExperimentSpec(
            variant="figure3",
            protocol="space-efficient-ranking",
            workload="figure3",
            n_values=(24,),
            seeds=2,
            milestone_fractions=(0.5, 0.75),
            max_interactions_factor=500.0,
        )
        result = Study(spec, name="milestones").run()
        for row in result.rows:
            assert row.converged
            assert row.milestones["ranked_0.5"] <= row.milestones["ranked_0.75"]

    def test_aggregate_engine_milestones(self):
        spec = ExperimentSpec(
            variant="figure3",
            protocol="space-efficient-ranking",
            engine="aggregate",
            workload="figure3",
            n_values=(64,),
            seeds=2,
            milestone_fractions=(0.5,),
        )
        result = Study(spec, name="agg").run()
        assert all(row.converged for row in result.rows)
        assert all(row.milestones["ranked_0.5"] > 0 for row in result.rows)

    def test_series_recording(self):
        spec = ExperimentSpec(
            variant="figure2",
            protocol="stable-ranking-figure2",
            workload="figure2",
            n_values=(16,),
            seeds=1,
            max_interactions_factor=200.0,
            samples=30,
        )
        row = Study(spec, name="series").run().rows[0]
        assert set(row.series) >= {"ranked_agents", "average_phase"}
        ranked = row.series["ranked_agents"]
        assert len(ranked["interactions"]) == len(ranked["values"])
        assert ranked["values"][0] == 15.0  # n - 1 ranked at the start

    def test_extractors(self):
        spec = small_spec(extractors=("ranked_agents", "overhead_states"))
        row = Study(spec, name="extract").run().rows[0]
        assert row.extras["ranked_agents"] == 8.0
        assert row.extras["overhead_states"] > 0

    def test_array_engine_rows_match_reference(self):
        # The engine request is part of the spec identity, so the two
        # studies run *different seeds* by design — compare workload-level
        # outcomes.  Per-interaction bit-identity between the engines (same
        # seed, matched cadence — what the study's pinned
        # ``convergence_interval=n`` relies on) is covered at simulator
        # level in tests/baselines/test_baseline_array_equivalence.py and
        # tests/core/test_array_engine.py.
        reference = Study(
            small_spec(engine="reference", seeds=2), name="x"
        ).run()
        array = Study(small_spec(engine="array", seeds=2), name="x").run()
        assert [r.converged for r in array.rows] == [
            r.converged for r in reference.rows
        ]


class TestBackendResolution:
    def test_auto_is_the_default_and_resolves_per_cell(self):
        spec = small_spec()
        assert spec.engine == "auto"
        assert spec.resolve_backend(8) == "array"

    def test_rows_record_the_resolved_backend(self):
        result = Study(small_spec(seeds=1), name="resolved").run()
        assert [row.engine for row in result.rows] == ["array"]

    def test_rng_consuming_protocol_resolves_to_reference(self):
        spec = small_spec(
            variant="token", protocol="token-counter-ranking", seeds=1
        )
        assert spec.resolve_backend(8) == "reference"
        result = Study(spec, name="token-auto").run()
        assert result.rows[0].engine == "reference"

    def test_figure3_cells_resolve_to_aggregate(self):
        spec = ExperimentSpec(
            variant="figure3",
            protocol="space-efficient-ranking",
            workload="figure3",
            n_values=(32,),
            seeds=1,
            milestone_fractions=(0.5,),
        )
        assert spec.engine == "auto"
        assert spec.resolve_backend(32) == "aggregate"
        result = Study(spec, name="auto-agg").run()
        assert result.rows[0].engine == "aggregate"
        assert result.rows[0].milestones["ranked_0.5"] > 0

    def test_engine_request_is_part_of_the_identity(self):
        # "auto" and an explicit engine are distinct spec identities (the
        # cell rng derives from the identity, and a store must never mix
        # rows produced under different engine requests).
        assert (
            small_spec().identity_seed()
            != small_spec(engine="array").identity_seed()
        )

    def test_auto_parallel_matches_serial(self):
        spec = small_spec(n_values=(8, 16), seeds=2)
        serial = Study(spec, name="auto-par").run()
        parallel = Study(spec, name="auto-par", jobs=2).run()
        assert [r.as_dict() for r in parallel.rows] == [
            r.as_dict() for r in serial.rows
        ]
        assert all(row.engine == "array" for row in parallel.rows)
