"""Tests for the ``python -m repro`` command line.

Fast paths call :func:`repro.experiments.cli.main` in-process; one smoke
test goes through the real ``python -m repro`` entry point in a
subprocess, exercising argument parsing, the study run, the persisted
store and the rendered table end to end.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments.cli import main

REPO_SRC = Path(__file__).resolve().parents[2] / "src"


class TestMainInProcess:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("figure2", "figure3", "scaling", "comparison", "fault_injection"):
            assert name in out

    def test_list_prints_capability_matrix(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "resolved backends" in out
        # Every comparison protocol resolves off the reference engine...
        assert "comparison/stable-ranking: stable-ranking [auto] -> array" in out
        assert "comparison/cai-ranking: cai-ranking [auto] -> array" in out
        assert (
            "comparison/burman-style-ranking: burman-style-ranking [auto] "
            "-> array" in out
        )
        # ...and the paper-scale presets negotiate the aggregate engine.
        assert "figure3/figure3: space-efficient-ranking [auto] -> aggregate" in out
        assert "scaling/scaling: space-efficient-ranking [auto] -> aggregate" in out

    def test_no_command_prints_overview(self, capsys):
        assert main([]) == 0
        assert "python -m repro run" in capsys.readouterr().out

    def test_run_scaling_smoke(self, tmp_path, capsys):
        code = main(
            ["run", "scaling", "--n", "8", "--seeds", "2", "--out", str(tmp_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Stabilization-time scaling" in out
        assert "result store:" in out
        store_dirs = list(tmp_path.iterdir())
        assert len(store_dirs) == 1
        rows = [
            json.loads(line)
            for line in (store_dirs[0] / "rows.jsonl").read_text().splitlines()
        ]
        assert len(rows) == 2
        assert (store_dirs[0] / "rows.csv").exists()
        assert (store_dirs[0] / "result.json").exists()

    def test_rerun_loads_from_store(self, tmp_path, capsys):
        args = ["run", "scaling", "--n", "8", "--seeds", "2", "--out", str(tmp_path)]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        store_dir = next(tmp_path.iterdir())
        rows = (store_dir / "rows.jsonl").read_text().splitlines()
        assert len(rows) == 2  # nothing was re-simulated or re-appended

    def test_run_comparison_and_faults(self, tmp_path, capsys):
        assert main([
            "run", "comparison", "--n", "8", "--seeds", "1",
            "--protocols", "stable-ranking", "--out", str(tmp_path), "--quiet",
        ]) == 0
        assert "Baseline comparison" in capsys.readouterr().out
        assert main([
            "run", "fault_injection", "--n", "8", "--seeds", "1",
            "--faults", "duplicate_rank", "--max-factor", "2000",
            "--out", str(tmp_path), "--quiet",
        ]) == 0
        assert "Fault-injection recovery" in capsys.readouterr().out

    def test_comparison_auto_records_resolved_backend(self, tmp_path, capsys):
        assert main([
            "run", "comparison", "--n", "8", "--seeds", "1",
            "--engine", "auto", "--out", str(tmp_path), "--quiet",
        ]) == 0
        capsys.readouterr()
        store_dir = next(tmp_path.iterdir())
        rows = [
            json.loads(line)
            for line in (store_dir / "rows.jsonl").read_text().splitlines()
        ]
        assert {row["variant"] for row in rows} == {
            "stable-ranking", "burman-style-ranking", "cai-ranking",
        }
        # The store records which backend actually served each cell — and
        # under "auto" every comparison cell runs off the reference engine.
        assert all(row["engine"] == "array" for row in rows)

    def test_no_store(self, tmp_path, capsys):
        assert main([
            "run", "scaling", "--n", "8", "--seeds", "1",
            "--no-store", "--out", str(tmp_path), "--quiet",
        ]) == 0
        assert list(tmp_path.iterdir()) == []

    def test_unknown_experiment_is_a_parse_error(self):
        with pytest.raises(SystemExit):
            main(["run", "figure7"])

    def test_max_factor_reaches_every_preset(self):
        from repro.experiments.cli import EXPERIMENTS, _build_parser

        parser = _build_parser()
        for experiment in ("figure2", "figure3", "scaling", "comparison",
                           "fault_injection"):
            args = parser.parse_args(
                ["run", experiment, "--n", "8", "--max-factor", "123"]
            )
            specs = EXPERIMENTS[experiment]["specs"](args)
            assert all(
                spec.max_interactions_factor == 123.0 for spec in specs
            ), experiment

    def test_render_failure_reports_error_but_keeps_store(self, tmp_path, capsys):
        # A budget far too small for the milestones: the rows compute (as
        # non-converged), the legacy renderer raises, and the CLI must
        # report the error yet still persist + point at the store.
        code = main([
            "run", "figure3", "--n", "16", "--seeds", "1",
            "--engine", "reference", "--fractions", "0.5",
            "--max-factor", "0.01", "--out", str(tmp_path), "--quiet",
        ])
        assert code == 1
        captured = capsys.readouterr()
        assert "error:" in captured.err
        assert "result store:" in captured.out
        store_dir = next(tmp_path.iterdir())
        assert (store_dir / "rows.jsonl").exists()
        assert (store_dir / "result.json").exists()


class TestModuleEntryPoint:
    def test_python_m_repro_list_capability_matrix(self):
        environment = {
            **os.environ,
            "PYTHONPATH": str(REPO_SRC)
            + (os.pathsep + os.environ["PYTHONPATH"] if os.environ.get("PYTHONPATH") else ""),
        }
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "list"],
            capture_output=True,
            text=True,
            env=environment,
            timeout=300,
        )
        assert completed.returncode == 0, completed.stderr
        assert "resolved backends" in completed.stdout
        assert "-> array" in completed.stdout
        assert "-> aggregate" in completed.stdout

    def test_python_m_repro_run_figure2(self, tmp_path):
        environment = {
            **os.environ,
            "PYTHONPATH": str(REPO_SRC)
            + (os.pathsep + os.environ["PYTHONPATH"] if os.environ.get("PYTHONPATH") else ""),
        }
        completed = subprocess.run(
            [
                sys.executable, "-m", "repro", "run", "figure2",
                "--n", "16", "--seeds", "2", "--jobs", "2",
                "--no-plot", "--out", str(tmp_path),
            ],
            capture_output=True,
            text=True,
            env=environment,
            timeout=600,
        )
        assert completed.returncode == 0, completed.stderr
        assert "Figure 2 reproduction" in completed.stdout
        store_dir = next(tmp_path.iterdir())
        rows = [
            json.loads(line)
            for line in (store_dir / "rows.jsonl").read_text().splitlines()
        ]
        assert {(row["n"], row["seed_index"]) for row in rows} == {(16, 0), (16, 1)}
        assert all(row["series"]["ranked_agents"]["values"] for row in rows)


class TestCacheCommand:
    def test_list_without_a_store_location_fails(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_TABLE_CACHE", raising=False)
        assert main(["cache", "list"]) == 1
        assert "REPRO_TABLE_CACHE" in capsys.readouterr().err

    def test_unknown_protocol_is_reported(self, tmp_path, capsys):
        code = main(
            ["cache", "warm", "--protocol", "nope", "--n", "16",
             "--dir", str(tmp_path / "tables")]
        )
        assert code == 1
        assert "unknown protocol" in capsys.readouterr().err

    def test_warm_list_clear_round_trip(self, tmp_path, capsys):
        store = tmp_path / "tables"
        code = main(
            ["cache", "warm", "--protocol", "stable-ranking", "--n", "24",
             "--seeds", "2", "--dir", str(store)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "warmed stable-ranking" in out
        assert "table store:" in out and "spilled" in out

        assert main(["cache", "list", "--dir", str(store)]) == 0
        out = capsys.readouterr().out
        assert "stable-ranking" in out
        assert "mode lazy" in out

        assert main(["cache", "clear", "--dir", str(store)]) == 0
        assert not store.exists()
        assert main(["cache", "list", "--dir", str(store)]) == 0
        assert "no table-store entries" in capsys.readouterr().out

    def test_run_exports_study_table_store_and_reports_hits(
        self, tmp_path, capsys, monkeypatch
    ):
        import repro.experiments.study as study_mod

        monkeypatch.delenv("REPRO_TABLE_CACHE", raising=False)
        monkeypatch.setattr(study_mod, "_ENGINE_CACHES", {})
        args = ["run", "figure2", "--n", "32", "--seeds", "1",
                "--quiet", "--no-plot"]
        assert main(args + ["--out", str(tmp_path / "out1")]) == 0
        out = capsys.readouterr().out
        assert "table store:" in out and "spilled" in out
        study_dir = next((tmp_path / "out1").iterdir())
        assert (study_dir / "tables").is_dir()

        # A second cold process (simulated: fresh per-process caches)
        # sharing the table store reports hits instead of tabulating.
        monkeypatch.setattr(study_mod, "_ENGINE_CACHES", {})
        monkeypatch.setenv("REPRO_TABLE_CACHE", str(study_dir / "tables"))
        assert main(args + ["--out", str(tmp_path / "out2")]) == 0
        out = capsys.readouterr().out
        assert "table store: loaded" in out


class TestTopologyCli:
    def test_list_topologies_prints_the_matrix(self, capsys):
        assert main(["list", "--topologies"]) == 0
        out = capsys.readouterr().out
        assert "topologies (interaction graphs" in out
        for family in ("complete", "ring", "grid2d", "random_regular",
                       "erdos_renyi", "power_law", "delayed"):
            assert family in out
        assert "degree min/mean/max" in out
        # The sweep preset shows up in the capability matrix with its
        # restricted variants resolved to an agent-level backend.
        assert "topology_sweep/ring: one-way-epidemic [auto] -> array" in out

    def test_list_without_flag_omits_the_matrix(self, capsys):
        assert main(["list"]) == 0
        assert "topologies (interaction graphs" not in capsys.readouterr().out

    def test_run_topology_sweep_records_topology(self, tmp_path, capsys):
        assert main([
            "run", "topology_sweep", "--topology", "ring", "--n", "16",
            "--seeds", "2", "--out", str(tmp_path), "--quiet",
        ]) == 0
        out = capsys.readouterr().out
        assert "Topology sweep" in out
        assert "Herman ring band" in out
        store_dir = next(tmp_path.iterdir())
        rows = [
            json.loads(line)
            for line in (store_dir / "rows.jsonl").read_text().splitlines()
        ]
        assert {row["variant"] for row in rows} == {"complete", "ring"}
        by_variant = {}
        for row in rows:
            by_variant.setdefault(row["variant"], []).append(row)
        assert all(r["topology"] == "ring" for r in by_variant["ring"])
        assert all(r["topology"] == "complete" for r in by_variant["complete"])
        # Restricted cells must have been served by a concrete agent-level
        # backend — never the population-level engines, never raw "auto".
        assert all(
            r["engine"] not in ("auto", "aggregate", "group")
            for r in by_variant["ring"]
        )

    def test_python_m_repro_list_topologies_subprocess(self):
        environment = {
            **os.environ,
            "PYTHONPATH": str(REPO_SRC)
            + (os.pathsep + os.environ["PYTHONPATH"] if os.environ.get("PYTHONPATH") else ""),
        }
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "list", "--topologies"],
            capture_output=True,
            text=True,
            env=environment,
            timeout=300,
        )
        assert completed.returncode == 0, completed.stderr
        assert "topologies (interaction graphs" in completed.stdout
        assert "power_law" in completed.stdout
        assert "async wrapper" in completed.stdout


class TestPresetSpecs:
    def test_defaults_match_the_cli(self):
        from repro.experiments.cli import EXPERIMENTS, _build_parser, preset_specs

        parser = _build_parser()
        for experiment in sorted(EXPERIMENTS):
            args = parser.parse_args(["run", experiment])
            expected = [s.as_dict() for s in EXPERIMENTS[experiment]["specs"](args)]
            actual = [s.as_dict() for s in preset_specs(experiment)]
            assert actual == expected, experiment

    def test_overrides_apply_with_cli_semantics(self):
        from repro.experiments.cli import preset_specs

        specs = preset_specs(
            "topology_sweep",
            {"topology": "ring", "n": "8,16", "seeds": 3, "max-factor": 30},
        )
        assert [s.variant for s in specs] == ["complete", "ring"]
        assert all(s.n_values == (8, 16) for s in specs)
        assert all(s.seeds == 3 for s in specs)
        assert all(s.max_interactions_factor == 30.0 for s in specs)

    def test_unknown_preset_and_override_raise(self):
        from repro.core.errors import ExperimentError
        from repro.experiments.cli import preset_specs

        with pytest.raises(ExperimentError, match="unknown experiment"):
            preset_specs("figure9")
        with pytest.raises(ExperimentError, match="unknown preset override"):
            preset_specs("figure2", {"bogus": 1})
        with pytest.raises(ExperimentError, match="not a spec option"):
            preset_specs("figure2", {"out": "/tmp/elsewhere"})
