"""Scenario determinism: the contract that makes mid-run events trustworthy.

Three properties from the determinism contract (``docs/scenarios.md``):

* same-seed reference↔array equality holds *through* event boundaries —
  the segmented runs visit identical trajectories, fire identical events
  and log identical recoveries (n ∈ {2, 16, 64});
* ``--jobs N`` study execution is bit-identical to serial for
  event-bearing scenarios;
* a store interrupted mid-matrix resumes without recomputing (and the
  resumed rows equal the uninterrupted ones).
"""

import dataclasses

import numpy as np
import pytest

from repro.core.array_engine import ArraySimulator
from repro.core.simulation import Simulator
from repro.experiments.fault_storm import fault_storm_specs
from repro.experiments.study import Study, execute_cell
from repro.protocols.primitives.one_way_epidemic import OneWayEpidemicProtocol
from repro.protocols.ranking.stable_ranking import StableRanking
from repro.scenarios import ScheduledEvent, bind_schedule

#: Event times deliberately unaligned with the 4096-pair chunk size, with
#: two events sharing one interaction count.
STORM = (
    ScheduledEvent(at=700, kind="duplicate_rank", params={"count": 2}),
    ScheduledEvent(at=1501, kind="scramble", params={}),
    ScheduledEvent(at=2750, kind="crash_reset", params={"count": 3}),
    ScheduledEvent(at=2750, kind="churn", params={"fraction": 0.5}),
)


def run_one(engine_cls, protocol_factory, schedule, n, seed, budget,
            stop_on_convergence=True):
    protocol = protocol_factory(n)
    bound = bind_schedule(schedule, protocol, np.random.SeedSequence([seed, n]))
    simulator = engine_cls(
        protocol,
        random_state=np.random.default_rng(seed),
        convergence_interval=n,
    )
    result = simulator.run_segmented(
        bound, max_interactions=budget, stop_on_convergence=stop_on_convergence
    )
    states = [
        state.as_tuple() if hasattr(state, "as_tuple")
        else dataclasses.astuple(state)
        for state in simulator.configuration.states
    ]
    return (
        result.interactions,
        result.converged,
        result.resets,
        result.rank_assignments,
        result.events,
        states,
    )


class TestReferenceArrayEquality:
    @pytest.mark.parametrize("n", [2, 16, 64])
    def test_stable_ranking_identical_through_event_boundaries(self, n):
        reference = run_one(Simulator, StableRanking, STORM, n, 7, 40000)
        array = run_one(ArraySimulator, StableRanking, STORM, n, 7, 40000)
        assert reference == array

    @pytest.mark.parametrize("n", [2, 16, 64])
    def test_equality_without_convergence_stopping(self, n):
        reference = run_one(
            Simulator, StableRanking, STORM, n, 11, 9000,
            stop_on_convergence=False,
        )
        array = run_one(
            ArraySimulator, StableRanking, STORM, n, 11, 9000,
            stop_on_convergence=False,
        )
        assert reference == array
        assert reference[0] == 9000  # ran the full budget

    def test_dense_mode_identical_through_event_boundaries(self):
        # The epidemic runs on complete dense tables; crash/churn events
        # round-trip through the codec and re-enter the dense path.
        schedule = (
            ScheduledEvent(at=333, kind="crash_reset", params={"count": 10}),
            ScheduledEvent(at=900, kind="churn", params={"fraction": 0.9}),
        )
        reference = run_one(
            Simulator, OneWayEpidemicProtocol, schedule, 32, 3, 20000
        )
        array = run_one(
            ArraySimulator, OneWayEpidemicProtocol, schedule, 32, 3, 20000
        )
        assert reference == array

    def test_event_log_structure(self):
        interactions, converged, _, _, events, _ = run_one(
            ArraySimulator, StableRanking, STORM, 16, 7, 40000
        )
        assert events[0]["label"] == "initial"
        assert [entry["label"] for entry in events[1:]] == [
            "duplicate_rank", "scramble", "crash_reset", "churn",
        ]
        assert [entry["at"] for entry in events[1:]] == [700, 1501, 2750, 2750]
        if converged:
            assert events[-1]["recovered_at"] == interactions

    def test_events_beyond_budget_do_not_fire(self):
        schedule = (ScheduledEvent(at=10**9, kind="churn"),)
        _, _, _, _, events, _ = run_one(
            ArraySimulator, StableRanking, schedule, 16, 7, 5000,
            stop_on_convergence=False,
        )
        assert [entry["label"] for entry in events] == ["initial"]


class TestStudyDeterminism:
    def specs(self):
        return fault_storm_specs(
            n_values=(8,),
            repetitions=2,
            faults=("duplicate_rank", "scramble"),
            events=2,
            period_factor=5.0,
            max_interactions_factor=60.0,
        )

    def test_parallel_equals_serial_for_event_scenarios(self):
        serial = Study(self.specs(), name="storm").run()
        parallel = Study(self.specs(), name="storm", jobs=2).run()
        assert [row.as_dict() for row in parallel.rows] == [
            row.as_dict() for row in serial.rows
        ]

    def test_cells_are_deterministic_and_seed_distinct(self):
        spec = self.specs()[0]
        first = execute_cell(spec.as_dict(), 8, 0)
        second = execute_cell(spec.as_dict(), 8, 0)
        other = execute_cell(spec.as_dict(), 8, 1)
        assert first == second
        assert first != other

    def test_store_resumes_mid_matrix(self, tmp_path):
        # Run the full matrix once, uninterrupted, as the ground truth.
        complete = Study(self.specs(), name="storm", store=tmp_path / "a").run()

        # Simulate an interrupted run: persist only a prefix of the rows.
        interrupted = Study(self.specs(), name="storm", store=tmp_path / "b")
        store = interrupted.store
        store.write_spec({"study": "storm"})
        for row in [row.as_dict() for row in complete.rows][:3]:
            store.append(row)

        computed = []
        resumed = Study(
            self.specs(), name="storm", store=tmp_path / "b"
        ).run(progress=lambda row, done, total: computed.append(row))
        assert len(resumed.rows) == len(complete.rows)
        assert [row.as_dict() for row in resumed.rows] == [
            row.as_dict() for row in complete.rows
        ]
        # Only the missing cells were simulated (3 loaded + rest computed).
        rows_file = (store.rows_path).read_text().splitlines()
        assert len(rows_file) == len(complete.rows)
