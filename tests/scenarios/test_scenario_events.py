"""Tests for perturbation events and the scenario registry."""

import numpy as np
import pytest

from repro.core.errors import ExperimentError
from repro.protocols.ranking.stable_ranking import StableRanking
from repro.experiments.workloads import valid_ranking_configuration
from repro.scenarios import (
    EVENTS,
    ChurnScenario,
    FaultStormScenario,
    ScheduledEvent,
    StaticScenario,
    bind_schedule,
    get_scenario,
    register_event,
    register_scenario,
    scenario_names,
)


def apply(kind, protocol, configuration, seed=0, **params):
    return EVENTS[kind](
        protocol, configuration, np.random.default_rng(seed), **params
    )


class TestEventKinds:
    def test_registry_contents(self):
        assert set(EVENTS) >= {
            "rank_corruption", "duplicate_rank", "missing_rank",
            "crash_reset", "churn", "scramble",
        }

    def test_rank_corruption_replaces_states(self):
        protocol = StableRanking(16)
        config = valid_ranking_configuration(16)
        summary = apply("rank_corruption", protocol, config, count=4)
        assert summary == {"kind": "rank_corruption", "agents": 4}
        assert config.ranked_count() == 16
        assert all(1 <= rank <= 16 for rank in config.assigned_ranks())

    def test_duplicate_rank_is_exact_on_a_valid_ranking(self):
        protocol = StableRanking(16)
        for seed in range(10):
            config = valid_ranking_configuration(16)
            summary = apply(
                "duplicate_rank", protocol, config, seed=seed, count=3
            )
            assert summary["agents"] == 3
            assert len(config.duplicate_ranks()) == 3

    def test_duplicate_rank_clips_to_available_donors(self):
        protocol = StableRanking(16)
        config = valid_ranking_configuration(16)
        # Only 3 ranked agents left after unranking the rest.
        for index in range(13):
            config[index] = protocol.initial_state()
        summary = apply("duplicate_rank", protocol, config, count=5)
        assert summary["agents"] == 1  # 3 ranked agents -> one pair

    def test_missing_rank_unranks_agents(self):
        protocol = StableRanking(16)
        config = valid_ranking_configuration(16)
        summary = apply("missing_rank", protocol, config, count=2)
        assert summary["agents"] == 2
        assert config.ranked_count() == 14
        dropped = [
            state for state in config.states
            if getattr(state, "phase", None) is not None
        ]
        assert len(dropped) == 2
        assert all(state.alive_count == protocol.l_max for state in dropped)

    def test_crash_reset_and_churn_insert_fresh_agents(self):
        protocol = StableRanking(16)
        config = valid_ranking_configuration(16)
        assert apply("crash_reset", protocol, config, count=3)["agents"] == 3
        config = valid_ranking_configuration(16)
        assert apply("churn", protocol, config, fraction=0.5)["agents"] == 8
        assert config.ranked_count() == 8
        with pytest.raises(ExperimentError):
            apply("churn", protocol, config, fraction=0.0)

    def test_scramble_is_reproducible(self):
        protocol = StableRanking(16)
        first = valid_ranking_configuration(16)
        second = valid_ranking_configuration(16)
        apply("scramble", protocol, first, seed=9)
        apply("scramble", protocol, second, seed=9)
        as_tuples = lambda config: [s.as_tuple() for s in config.states]
        assert as_tuples(first) == as_tuples(second)
        third = valid_ranking_configuration(16)
        apply("scramble", protocol, third, seed=10)
        assert as_tuples(first) != as_tuples(third)

    def test_register_event_rejects_duplicates(self):
        with pytest.raises(ExperimentError, match="already registered"):
            register_event("churn", EVENTS["churn"])


class TestScheduledEvent:
    def test_validation(self):
        event = ScheduledEvent(at=10, kind="churn", params={"fraction": 0.5})
        assert event.at == 10
        with pytest.raises(ExperimentError, match="non-negative"):
            ScheduledEvent(at=-1, kind="churn")
        with pytest.raises(ExperimentError, match="unknown event kind"):
            ScheduledEvent(at=0, kind="meteor_strike")

    def test_bind_schedule_gives_each_event_its_own_stream(self):
        protocol = StableRanking(16)
        schedule = (
            ScheduledEvent(at=100, kind="scramble"),
            ScheduledEvent(at=50, kind="scramble"),
        )
        bound = bind_schedule(schedule, protocol, np.random.SeedSequence(1))
        assert [event.at for event in bound] == [50, 100]  # sorted
        one = valid_ranking_configuration(16)
        two = valid_ranking_configuration(16)
        bound[0].mutate(one)
        bound[1].mutate(two)
        as_tuples = lambda config: [s.as_tuple() for s in config.states]
        assert as_tuples(one) != as_tuples(two)
        # Re-binding reproduces both exactly.
        again = bind_schedule(schedule, protocol, np.random.SeedSequence(1))
        redo = valid_ranking_configuration(16)
        again[0].mutate(redo)
        assert as_tuples(redo) == as_tuples(one)


class TestScenarioRegistry:
    def test_static_mirrors_every_workload(self):
        from repro.experiments.study import WORKLOADS

        for name in WORKLOADS:
            scenario = get_scenario(name)
            assert scenario.is_static
            assert scenario.workload == name
            assert scenario.schedule(64) == ()

    def test_static_scenarios_reject_schedule_params(self):
        with pytest.raises(ExperimentError, match="no schedule"):
            get_scenario("figure2").schedule(64, events=3)

    def test_unknown_scenario(self):
        with pytest.raises(ExperimentError, match="unknown scenario"):
            get_scenario("meteor_storm")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ExperimentError, match="already registered"):
            register_scenario(StaticScenario("fresh", "fresh"))

    def test_fault_storm_schedule_shape(self):
        scenario = get_scenario("fault_storm")
        assert isinstance(scenario, FaultStormScenario)
        schedule = scenario.schedule(
            16, fault="crash_reset", events=4, period_factor=2.0, count=3
        )
        assert [event.at for event in schedule] == [512, 1024, 1536, 2048]
        assert all(event.kind == "crash_reset" for event in schedule)
        assert all(event.params == {"count": 3} for event in schedule)
        with pytest.raises(ExperimentError, match="unknown event kind"):
            scenario.schedule(16, fault="meteor_strike")
        with pytest.raises(ExperimentError, match="events must be positive"):
            scenario.schedule(16, events=0)
        with pytest.raises(ExperimentError, match="period_factor"):
            scenario.schedule(16, period_factor=-1.0)

    def test_churn_schedule_shape(self):
        scenario = get_scenario("churn")
        assert isinstance(scenario, ChurnScenario)
        schedule = scenario.schedule(8, fraction=0.5, events=2,
                                     period_factor=1.0)
        assert [event.at for event in schedule] == [64, 128]
        assert all(event.params == {"fraction": 0.5} for event in schedule)

    def test_names_include_event_bearing_scenarios(self):
        names = scenario_names()
        assert "fault_storm" in names and "churn" in names
