"""Tests of the top-level public API surface.

Downstream users interact with the library through ``import repro``; these
tests pin the advertised names, their re-export consistency and the basic
metadata so accidental API breakage is caught — including the deprecated
``run_*`` driver shims, whose signatures and result shapes must keep
working until they are removed.
"""

import pytest

import repro
import repro.analysis
import repro.baselines
import repro.experiments


def test_version_is_exposed():
    assert isinstance(repro.__version__, str)
    assert repro.__version__.count(".") == 2


def test_all_names_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), f"__all__ advertises missing name {name!r}"


def test_core_protocol_classes_are_exported():
    for name in (
        "SpaceEfficientRanking",
        "StableRanking",
        "Simulator",
        "Configuration",
        "AgentState",
        "PhaseSchedule",
        "AggregateSpaceEfficientRanking",
    ):
        assert name in repro.__all__


def test_subpackage_all_names_resolve():
    for module in (repro.analysis, repro.baselines, repro.experiments):
        for name in module.__all__:
            assert hasattr(module, name), f"{module.__name__} misses {name!r}"


def test_protocol_names_are_distinct():
    protocols = [
        repro.SpaceEfficientRanking(8),
        repro.StableRanking(8),
        repro.baselines.CaiRanking(8),
        repro.baselines.BurmanStyleRanking(8),
        repro.baselines.TokenCounterRanking(8),
    ]
    names = [protocol.name for protocol in protocols]
    assert len(names) == len(set(names))


def test_public_classes_have_docstrings():
    for name in repro.__all__:
        if name.startswith("__"):
            continue
        attribute = getattr(repro, name)
        if isinstance(attribute, type) or callable(attribute):
            assert attribute.__doc__, f"{name} has no docstring"


def test_study_api_is_exported():
    for name in ("ExperimentSpec", "Study", "ResultSet", "ResultStore", "RunRow"):
        assert name in repro.__all__
        assert name in repro.experiments.__all__


def test_backend_registry_is_exported():
    import repro.core

    for name in (
        "Backend",
        "BackendCapability",
        "register_backend",
        "get_backend",
        "resolve_backend",
        "backend_names",
        "engine_choices",
        "capability_matrix",
        "ProbeClassTable",
        "GroupCountSimulator",
        "CountGoal",
    ):
        assert name in repro.core.__all__
        assert hasattr(repro.core, name)
    assert repro.core.backend_names() == (
        "reference", "array", "array-batched", "array-jit",
        "aggregate", "group",
    )
    assert repro.core.engine_choices()[-1] == "auto"
    # The Cai baseline is reachable under both spellings.
    assert repro.baselines.CaiStyleRanking is repro.baselines.CaiRanking


class TestDeprecatedDriverShims:
    """The legacy ``run_*`` entry points stay callable with their original
    signatures, warn about their deprecation, and return the legacy result
    types (now assembled from a :class:`~repro.experiments.study.Study`)."""

    def test_run_scaling_shim(self):
        with pytest.warns(DeprecationWarning, match="run_scaling"):
            result = repro.experiments.run_scaling(
                n_values=(8,), repetitions=2, engine="aggregate", random_state=0
            )
        assert isinstance(result, repro.experiments.ScalingResult)
        assert result.engine == "aggregate"
        assert len(result.interactions[8]) == 2
        assert result.rows()[0]["runs"] == 2

    def test_run_comparison_shim(self):
        with pytest.warns(DeprecationWarning, match="run_comparison"):
            result = repro.experiments.run_comparison(
                n_values=(8,),
                repetitions=1,
                protocols=("stable-ranking",),
                max_interactions_factor=2000,
            )
        assert isinstance(result, repro.experiments.ComparisonResult)
        assert ("stable-ranking", 8) in result.times
        assert result.overhead[("stable-ranking", 8)] > 0

    def test_run_fault_injection_shim(self):
        with pytest.warns(DeprecationWarning, match="run_fault_injection"):
            result = repro.experiments.run_fault_injection(
                n_values=(8,),
                repetitions=1,
                faults=("duplicate_rank",),
                max_interactions_factor=2000,
            )
        assert isinstance(result, repro.experiments.FaultInjectionResult)
        assert ("duplicate_rank", 8) in result.recovery

    def test_run_figure2_shim(self):
        with pytest.warns(DeprecationWarning, match="run_figure2"):
            result = repro.experiments.run_figure2(n=16, samples=20)
        assert isinstance(result, repro.experiments.Figure2Result)
        assert result.n == 16
        assert len(result.interactions) == len(result.ranked_agents)

    def test_run_figure3_shim(self):
        with pytest.warns(DeprecationWarning, match="run_figure3"):
            result = repro.experiments.run_figure3(
                n_values=(24,), fractions=(0.5,), repetitions=2, engine="aggregate"
            )
        assert isinstance(result, repro.experiments.Figure3Result)
        assert len(result.samples[24][0.5]) == 2

    def test_shim_validation_still_raises(self):
        from repro.core.errors import ExperimentError

        with pytest.warns(DeprecationWarning):
            with pytest.raises(ExperimentError):
                repro.experiments.run_figure3(engine="magic")
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ExperimentError):
                repro.experiments.run_comparison(workload="nope")
