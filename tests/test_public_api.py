"""Tests of the top-level public API surface.

Downstream users interact with the library through ``import repro``; these
tests pin the advertised names, their re-export consistency and the basic
metadata so accidental API breakage is caught.
"""

import repro
import repro.analysis
import repro.baselines
import repro.experiments


def test_version_is_exposed():
    assert isinstance(repro.__version__, str)
    assert repro.__version__.count(".") == 2


def test_all_names_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), f"__all__ advertises missing name {name!r}"


def test_core_protocol_classes_are_exported():
    for name in (
        "SpaceEfficientRanking",
        "StableRanking",
        "Simulator",
        "Configuration",
        "AgentState",
        "PhaseSchedule",
        "AggregateSpaceEfficientRanking",
    ):
        assert name in repro.__all__


def test_subpackage_all_names_resolve():
    for module in (repro.analysis, repro.baselines, repro.experiments):
        for name in module.__all__:
            assert hasattr(module, name), f"{module.__name__} misses {name!r}"


def test_protocol_names_are_distinct():
    protocols = [
        repro.SpaceEfficientRanking(8),
        repro.StableRanking(8),
        repro.baselines.CaiRanking(8),
        repro.baselines.BurmanStyleRanking(8),
        repro.baselines.TokenCounterRanking(8),
    ]
    names = [protocol.name for protocol in protocols]
    assert len(names) == len(set(names))


def test_public_classes_have_docstrings():
    for name in repro.__all__:
        if name.startswith("__"):
            continue
        attribute = getattr(repro, name)
        if isinstance(attribute, type) or callable(attribute):
            assert attribute.__doc__, f"{name} has no docstring"
