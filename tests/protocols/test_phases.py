"""Unit tests for the phase schedule ``f_k``."""

import math

import pytest

from repro.core.errors import ProtocolError
from repro.protocols.ranking.phases import PhaseSchedule, wait_count_init


class TestWaitCountInit:
    def test_matches_formula(self):
        assert wait_count_init(256, 2.0) == 16
        assert wait_count_init(100, 2.0) == math.ceil(2 * math.log2(100))

    def test_rejects_bad_arguments(self):
        with pytest.raises(ProtocolError):
            wait_count_init(1, 2.0)
        with pytest.raises(ProtocolError):
            wait_count_init(16, 0.0)


class TestPhaseSchedule:
    def test_rejects_tiny_population(self):
        with pytest.raises(ProtocolError):
            PhaseSchedule(1)

    def test_power_of_two_schedule(self):
        schedule = PhaseSchedule(8)
        assert schedule.phase_count == 3
        assert [schedule.f(k) for k in range(1, 5)] == [8, 4, 2, 1]
        assert list(schedule.ranks_in_phase(1)) == [5, 6, 7, 8]
        assert list(schedule.ranks_in_phase(2)) == [3, 4]
        assert list(schedule.ranks_in_phase(3)) == [2]

    def test_non_power_of_two_schedule(self):
        schedule = PhaseSchedule(7)
        assert schedule.phase_count == 3
        assert [schedule.f(k) for k in range(1, 5)] == [7, 4, 2, 1]

    @pytest.mark.parametrize("n", [2, 3, 5, 6, 17, 100, 255, 256, 1000])
    def test_phases_partition_ranks_two_to_n(self, n):
        """Across all phases exactly the ranks 2 … n are assigned, each once."""
        schedule = PhaseSchedule(n)
        assigned = []
        for k in range(1, schedule.phase_count + 1):
            assigned.extend(schedule.ranks_in_phase(k))
        assert sorted(assigned) == list(range(2, n + 1))

    @pytest.mark.parametrize("n", [2, 3, 4, 9, 31, 64, 1000])
    def test_final_boundary_is_one(self, n):
        schedule = PhaseSchedule(n)
        assert schedule.f(schedule.phase_count + 1) == 1

    def test_ranks_per_phase_consistency(self):
        schedule = PhaseSchedule(100)
        for k in range(1, schedule.phase_count + 1):
            assert schedule.ranks_per_phase(k) == len(schedule.ranks_in_phase(k))

    def test_is_final_phase(self):
        schedule = PhaseSchedule(16)
        assert not schedule.is_final_phase(1)
        assert schedule.is_final_phase(schedule.phase_count)

    def test_phase_of_rank(self):
        schedule = PhaseSchedule(8)
        assert schedule.phase_of_rank(8) == 1
        assert schedule.phase_of_rank(5) == 1
        assert schedule.phase_of_rank(3) == 2
        assert schedule.phase_of_rank(2) == 3
        assert schedule.phase_of_rank(1) == schedule.phase_count

    def test_phase_of_rank_rejects_out_of_range(self):
        with pytest.raises(ProtocolError):
            PhaseSchedule(8).phase_of_rank(9)

    def test_unranked_leader_threshold(self):
        schedule = PhaseSchedule(256)
        assert schedule.unranked_leader_threshold(1) == 128
        assert schedule.unranked_leader_threshold(8) == 1
        with pytest.raises(ProtocolError):
            schedule.unranked_leader_threshold(0)

    def test_f_rejects_out_of_range_phase(self):
        schedule = PhaseSchedule(8)
        with pytest.raises(ProtocolError):
            schedule.f(0)
        with pytest.raises(ProtocolError):
            schedule.f(schedule.phase_count + 2)

    def test_describe(self):
        info = PhaseSchedule(32).describe()
        assert info["n"] == 32
        assert info["phase_count"] == 5
        assert info["f"][1] == 32
