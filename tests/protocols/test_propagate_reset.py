"""Unit tests for the ``PropagateReset`` sub-protocol."""

import pytest

from repro.core.errors import ProtocolError
from repro.core.simulation import Simulator
from repro.core.state import AgentState
from repro.protocols.reset.propagate_reset import (
    PropagateReset,
    PropagateResetProtocol,
    default_reset_depths,
)


def make_reset(r_max=3, d_max=5, restarted=None):
    restarted = restarted if restarted is not None else []

    def restart(agent):
        agent.leader_done = 0
        restarted.append(agent)

    return PropagateReset(r_max, d_max, restart), restarted


class TestDefaults:
    def test_default_depths_are_logarithmic(self):
        r_small, d_small = default_reset_depths(16)
        r_large, d_large = default_reset_depths(4096)
        assert r_small < r_large
        assert d_small > r_small
        assert d_large > r_large

    def test_default_depths_reject_tiny_population(self):
        with pytest.raises(ProtocolError):
            default_reset_depths(1)

    def test_constructor_validation(self):
        with pytest.raises(ProtocolError):
            PropagateReset(0, 5, lambda a: None)
        with pytest.raises(ProtocolError):
            PropagateReset(3, 0, lambda a: None)


class TestTrigger:
    def test_trigger_wipes_everything_but_coin(self):
        reset, _ = make_reset()
        agent = AgentState(rank=7, coin=1, alive_count=3, leader_done=1)
        reset.trigger(agent)
        assert agent.rank is None and agent.leader_done is None
        assert agent.coin == 1
        assert agent.reset_count == 3
        assert agent.delay_count == 5
        assert reset.triggered_count == 1

    def test_trigger_initializes_missing_coin(self):
        reset, _ = make_reset()
        agent = AgentState(rank=2)
        reset.trigger(agent)
        assert agent.coin == 0


class TestPropagationRules:
    def test_propagating_absorbs_computing_agent(self):
        reset, _ = make_reset(r_max=4)
        propagating = AgentState(coin=0, reset_count=4, delay_count=5)
        computing = AgentState(rank=3, coin=1)
        assert reset.apply(propagating, computing)
        assert propagating.reset_count == 3
        assert computing.rank is None
        assert computing.reset_count == 3
        assert computing.delay_count == 5
        assert computing.coin == 1

    def test_two_propagating_agents_take_maximum_minus_one(self):
        reset, _ = make_reset()
        left = AgentState(coin=0, reset_count=3, delay_count=5)
        right = AgentState(coin=0, reset_count=1, delay_count=5)
        reset.apply(left, right)
        assert left.reset_count == 2
        assert right.reset_count == 2

    def test_propagating_meets_dormant(self):
        reset, _ = make_reset()
        propagating = AgentState(coin=0, reset_count=2, delay_count=5)
        dormant = AgentState(coin=0, reset_count=0, delay_count=4)
        reset.apply(propagating, dormant)
        assert propagating.reset_count == 1
        assert dormant.delay_count == 3

    def test_dormant_wakes_after_delay_expires(self):
        reset, restarted = make_reset(d_max=5)
        dormant = AgentState(coin=1, reset_count=0, delay_count=1)
        other = AgentState(rank=5)
        reset.apply(dormant, other)
        assert not dormant.in_reset
        assert dormant.leader_done == 0
        assert dormant.coin == 1
        assert len(restarted) == 1

    def test_does_not_apply_to_two_computing_agents(self):
        reset, _ = make_reset()
        left, right = AgentState(rank=1), AgentState(rank=2)
        assert not reset.applies(left, right)
        assert not reset.apply(left, right)


class TestPropagateResetProtocol:
    def test_full_reset_round_trip(self):
        """A triggered reset eventually restarts the whole population."""
        protocol = PropagateResetProtocol(30)
        simulator = Simulator(protocol, random_state=0)
        result = simulator.run(max_interactions=200_000)
        assert result.converged
        assert all(state.leader_done == 0 for state in result.configuration.states)

    def test_reset_depth_bounds_epidemic(self):
        """With R_max = 1 only direct contacts of the trigger can be reached,
        but the dormancy countdown still restarts everyone who was absorbed."""
        protocol = PropagateResetProtocol(10, r_max=1, d_max=4)
        simulator = Simulator(protocol, random_state=1)
        simulator.run(max_interactions=50_000)
        # No propagating agent should survive.
        assert all(not state.is_propagating for state in simulator.configuration.states)
