"""Unit tests for the two leader-election sub-protocols."""

import numpy as np
import pytest

from repro.core.rng import make_rng
from repro.core.simulation import Simulator
from repro.core.state import AgentState
from repro.protocols.leader_election.fast_leader_election import (
    FastLeaderElection,
    FastLeaderElectionProtocol,
    default_l_max,
)
from repro.protocols.leader_election.gs_leader_election import (
    GSLeaderElection,
    GSLeaderElectionProtocol,
)


class TestGSLeaderElectionModule:
    def test_init_state(self):
        module = GSLeaderElection(64)
        agent = AgentState()
        module.init_state(agent)
        assert agent.is_leader == 1
        assert agent.leader_done == 0
        assert agent.le_count == module.countdown
        assert agent.le_level is None

    def test_countdown_is_polylogarithmic(self):
        assert GSLeaderElection(64).countdown < GSLeaderElection(4096).countdown
        assert GSLeaderElection(4096).countdown < 4096

    def test_losing_agent_gives_up_leadership(self):
        module = GSLeaderElection(16)
        rng = make_rng(0)
        left, right = AgentState(), AgentState()
        module.init_state(left)
        module.init_state(right)
        module.apply(left, right, rng)
        # Tags differ w.h.p.; exactly one keeps believing it is the leader.
        assert (left.is_leader == 1) != (right.is_leader == 1) or left.le_level == right.le_level
        assert left.le_level == right.le_level  # both adopt the maximum

    def test_done_flag_after_countdown(self):
        module = GSLeaderElection(4, done_constant=1.0)
        rng = make_rng(1)
        left, right = AgentState(), AgentState()
        module.init_state(left)
        module.init_state(right)
        for _ in range(module.countdown + 1):
            module.apply(left, right, rng)
        assert left.leader_done == 1
        assert right.leader_done == 1

    def test_rejects_bad_parameters(self):
        with pytest.raises(Exception):
            GSLeaderElection(1)
        with pytest.raises(Exception):
            GSLeaderElection(8, done_constant=0.0)


class TestGSLeaderElectionProtocol:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_elects_unique_leader(self, seed):
        n = 64
        protocol = GSLeaderElectionProtocol(n)
        simulator = Simulator(protocol, random_state=seed)
        result = simulator.run(max_interactions=200 * n * int(np.log2(n)) ** 2)
        assert result.converged
        assert protocol.leader_count(result.configuration) == 1

    def test_interaction_count_is_near_linear(self):
        """Leader election should finish in O(n log² n), well below n² for large n."""
        n = 256
        protocol = GSLeaderElectionProtocol(n)
        simulator = Simulator(protocol, random_state=3)
        result = simulator.run(max_interactions=n * n)
        assert result.converged
        assert result.interactions < 0.6 * n * n


class TestFastLeaderElectionModule:
    def test_default_l_max_grows_logarithmically(self):
        assert default_l_max(16) < default_l_max(4096)
        with pytest.raises(Exception):
            default_l_max(1)

    def test_init_state_preserves_coin(self):
        module = FastLeaderElection(32)
        agent = AgentState(coin=1, rank=5)
        module.init_state(agent)
        assert agent.coin == 1
        assert agent.rank is None
        assert agent.le_count == module.l_max
        assert agent.coin_count == module.coin_count_init
        assert agent.leader_done == 0 and agent.is_leader == 0

    def test_tails_makes_agent_give_up(self):
        module = FastLeaderElection(32)
        u, v = AgentState(coin=0), AgentState(coin=0)
        module.init_state(u)
        module.init_state(v)
        module.apply(u, v, make_rng(0))
        assert u.leader_done == 1 and u.is_leader == 0

    def test_enough_heads_elects_and_transitions(self):
        waiting = []
        module = FastLeaderElection(
            16, on_become_waiting=lambda agent: waiting.append(agent)
        )
        u, v = AgentState(coin=0), AgentState(coin=1)
        module.init_state(u)
        module.init_state(v)
        # u needs coin_count_init + 1 heads in a row to become leader.
        for _ in range(module.coin_count_init + 1):
            module.apply(u, v, make_rng(0))
        assert waiting == [u]
        assert u.leader_done is None  # left leader election
        assert u.le_count is None

    def test_timeout_triggers_reset_callback(self):
        resets = []
        module = FastLeaderElection(
            16, l_max=8, on_trigger_reset=lambda agent: resets.append(agent)
        )
        u, v = AgentState(coin=0), AgentState(coin=0)
        module.init_state(u)
        module.init_state(v)
        for _ in range(module.l_max):
            module.apply(u, v, make_rng(0))
        assert resets == [u]
        assert module.resets_triggered == 1

    def test_slow_leader_does_not_enter_main_protocol(self):
        """An agent elected after L_max/2 activations must not start ranking."""
        waiting = []
        resets = []
        module = FastLeaderElection(
            16,
            l_max=12,
            on_become_waiting=lambda agent: waiting.append(agent),
            on_trigger_reset=lambda agent: resets.append(agent),
        )
        u, tails, heads = AgentState(coin=0), AgentState(coin=0), AgentState(coin=1)
        module.init_state(u)
        # Burn more than half of the countdown without becoming leader…
        u.leader_done = 1
        for _ in range(7):
            module.apply(u, tails, make_rng(0))
        # …then pretend the lottery succeeds late.
        u.leader_done = 0
        u.coin_count = 0
        module.apply(u, heads, make_rng(0))
        assert u.is_leader == 1
        assert not waiting  # too late to enter the main protocol


class TestFastLeaderElectionProtocol:
    def test_eventually_exactly_one_waiting_agent(self):
        n = 48
        protocol = FastLeaderElectionProtocol(n)
        simulator = Simulator(protocol, random_state=5)
        result = simulator.run(max_interactions=400 * n * default_l_max(n))
        assert result.converged
        assert protocol.waiting_count(result.configuration) == 1
