"""Unit tests for the state-space helpers of the ranking protocols."""

from repro.core.configuration import Configuration
from repro.core.state import AgentState
from repro.protocols.ranking.phases import PhaseSchedule
from repro.protocols.ranking.states import (
    in_main_state,
    is_initial_ranking_configuration,
    is_initial_waiting_configuration,
    is_productive_pair,
    is_start_ranking_configuration,
)


class TestInMainState:
    def test_ranked_agent_is_main(self):
        assert in_main_state(AgentState(rank=3))

    def test_phase_agent_needs_alive_count(self):
        assert in_main_state(AgentState(phase=1, coin=0, alive_count=5))
        assert not in_main_state(AgentState(phase=1, coin=0))

    def test_waiting_agent_needs_alive_count(self):
        assert in_main_state(AgentState(wait_count=2, coin=1, alive_count=5))
        assert not in_main_state(AgentState(wait_count=2))

    def test_reset_and_leader_election_are_not_main(self):
        assert not in_main_state(AgentState(rank=1, reset_count=3, delay_count=2))
        assert not in_main_state(AgentState(leader_done=0, is_leader=0))

    def test_blank_agent_is_not_main(self):
        assert not in_main_state(AgentState(coin=0))


class TestProductivePair:
    schedule = PhaseSchedule(256)

    def test_waiting_initiator_with_phase_responder(self):
        assert is_productive_pair(
            AgentState(wait_count=4), AgentState(phase=3), self.schedule
        )

    def test_unaware_leader_with_phase_responder(self):
        # floor(256 / 2^3) = 32: ranks up to 32 pass the unaware-leader test.
        assert is_productive_pair(
            AgentState(rank=32), AgentState(phase=3), self.schedule
        )
        assert not is_productive_pair(
            AgentState(rank=33), AgentState(phase=3), self.schedule
        )

    def test_non_phase_responder_is_never_productive(self):
        assert not is_productive_pair(
            AgentState(wait_count=4), AgentState(rank=7), self.schedule
        )

    def test_unranked_non_waiting_initiator_is_not_productive(self):
        assert not is_productive_pair(
            AgentState(phase=1), AgentState(phase=1), self.schedule
        )


class TestConfigurationClasses:
    def test_start_ranking_configuration(self):
        wait_init = 6
        states = [AgentState(wait_count=wait_init)]
        states += [AgentState(phase=1) for _ in range(5)]
        states += [AgentState(leader_done=1, is_leader=0)]
        config = Configuration(states)
        assert is_start_ranking_configuration(config, wait_init)

    def test_start_ranking_rejects_extra_leader(self):
        wait_init = 6
        states = [AgentState(wait_count=wait_init)]
        states += [AgentState(phase=1) for _ in range(4)]
        states += [AgentState(leader_done=1, is_leader=1)]
        config = Configuration(states)
        assert not is_start_ranking_configuration(config, wait_init)

    def test_start_ranking_rejects_two_waiting_agents(self):
        wait_init = 6
        states = [AgentState(wait_count=wait_init), AgentState(wait_count=wait_init)]
        states += [AgentState(phase=1) for _ in range(4)]
        config = Configuration(states)
        assert not is_start_ranking_configuration(config, wait_init)

    def _waiting_configuration(self, n=8, phase=2, wait_init=6):
        schedule = PhaseSchedule(n)
        states = [AgentState(wait_count=wait_init)]
        ranked = list(range(schedule.f(phase) + 1, n + 1))
        states += [AgentState(rank=r) for r in ranked]
        states += [AgentState(phase=phase) for _ in range(n - 1 - len(ranked))]
        return Configuration(states), schedule

    def test_initial_waiting_configuration(self):
        config, schedule = self._waiting_configuration()
        assert is_initial_waiting_configuration(config, schedule, phase=2, wait_init=6)

    def test_initial_waiting_rejects_wrong_counter(self):
        config, schedule = self._waiting_configuration()
        config[0].wait_count = 3
        assert not is_initial_waiting_configuration(config, schedule, phase=2, wait_init=6)

    def test_initial_waiting_rejects_missing_rank(self):
        config, schedule = self._waiting_configuration()
        config[1].rank = None
        config[1].phase = 2
        assert not is_initial_waiting_configuration(config, schedule, phase=2, wait_init=6)

    def _ranking_configuration(self, n=8, phase=2):
        schedule = PhaseSchedule(n)
        states = [AgentState(rank=1)]
        ranked = list(range(schedule.f(phase) + 1, n + 1))
        states += [AgentState(rank=r) for r in ranked]
        states += [AgentState(phase=phase) for _ in range(n - 1 - len(ranked))]
        return Configuration(states), schedule

    def test_initial_ranking_configuration(self):
        config, schedule = self._ranking_configuration()
        assert is_initial_ranking_configuration(config, schedule, phase=2)

    def test_initial_ranking_rejects_wrong_phase(self):
        config, schedule = self._ranking_configuration()
        config[-1].phase = 1
        assert not is_initial_ranking_configuration(config, schedule, phase=2)

    def test_initial_ranking_rejects_waiting_agent(self):
        config, schedule = self._ranking_configuration()
        config[-1].phase = None
        config[-1].wait_count = 3
        assert not is_initial_ranking_configuration(config, schedule, phase=2)
