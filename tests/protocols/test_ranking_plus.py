"""Unit tests for the ``Ranking+`` rules (Protocol 4)."""

import pytest

from repro.core.state import AgentState
from repro.protocols.ranking.phases import PhaseSchedule
from repro.protocols.ranking.ranking_plus import RankingPlus


@pytest.fixture
def resets():
    return []


@pytest.fixture
def plus(resets):
    schedule = PhaseSchedule(8)
    return RankingPlus(
        schedule,
        wait_init=4,
        alive_reset=6,
        l_max=12,
        trigger_reset=lambda agent: resets.append(agent),
    )


class TestErrorDetection:
    def test_duplicate_rank_triggers_reset(self, plus, resets):
        left, right = AgentState(rank=5), AgentState(rank=5)
        outcome = plus.apply(left, right)
        assert outcome.reset_triggered
        assert outcome.error == "duplicate_rank"
        assert resets == [left]

    def test_distinct_ranks_do_not_trigger(self, plus, resets):
        outcome = plus.apply(AgentState(rank=5), AgentState(rank=6))
        assert not outcome.reset_triggered
        assert not resets

    def test_two_waiting_agents_trigger_reset(self, plus, resets):
        left = AgentState(wait_count=2, coin=0, alive_count=5)
        right = AgentState(wait_count=3, coin=1, alive_count=5)
        outcome = plus.apply(left, right)
        assert outcome.reset_triggered
        assert outcome.error == "duplicate_waiting"

    def test_error_counters_accumulate(self, plus):
        plus.apply(AgentState(rank=2), AgentState(rank=2))
        plus.apply(AgentState(rank=3), AgentState(rank=3))
        assert plus.errors_detected["duplicate_rank"] == 2


class TestLivenessChecking:
    def test_pairwise_maximum_minus_one(self, plus):
        left = AgentState(phase=1, coin=1, alive_count=3)
        right = AgentState(phase=1, coin=1, alive_count=9)
        plus.apply(left, right)
        assert left.alive_count == 8
        assert right.alive_count == 8

    def test_top_ranked_agent_drains_counter(self, plus):
        top = AgentState(rank=8)  # n = 8
        agent = AgentState(phase=2, coin=1, alive_count=5)
        plus.apply(top, agent)
        assert agent.alive_count == 4

    def test_counter_hitting_zero_triggers_reset(self, plus, resets):
        top = AgentState(rank=7)  # n - 1
        agent = AgentState(phase=2, coin=1, alive_count=1)
        outcome = plus.apply(top, agent)
        assert outcome.reset_triggered
        assert outcome.error == "liveness"
        assert resets == [top]

    def test_replenish_on_tails_with_productive_pair(self, plus):
        # Unaware leader (rank 1) meeting a phase-1 agent whose coin shows 0.
        leader = AgentState(rank=1)
        agent = AgentState(phase=1, coin=0, alive_count=2)
        outcome = plus.apply(leader, agent)
        assert agent.alive_count == plus.alive_reset
        assert outcome.rank_assigned is None  # tails: no actual progress

    def test_no_replenish_for_unproductive_pair(self, plus):
        bystander = AgentState(rank=6)  # not the unaware leader for phase 1
        agent = AgentState(phase=1, coin=0, alive_count=2)
        plus.apply(bystander, agent)
        assert agent.alive_count == 2


class TestCoinGatedBaseProtocol:
    def test_heads_runs_ranking(self, plus):
        leader = AgentState(rank=1)
        agent = AgentState(phase=1, coin=1, alive_count=5)
        outcome = plus.apply(leader, agent)
        assert outcome.rank_assigned == 5  # f_2 + 1 for n = 8
        assert agent.rank == 5
        assert agent.coin is None and agent.alive_count is None

    def test_tails_blocks_ranking(self, plus):
        leader = AgentState(rank=1)
        agent = AgentState(phase=1, coin=0, alive_count=5)
        outcome = plus.apply(leader, agent)
        assert outcome.rank_assigned is None
        assert agent.rank is None

    def test_new_waiting_agent_gets_coin_and_counter(self, plus):
        # Leader holding the last rank of phase 1 (boundary 4) assigns f_1 = 8
        # and becomes waiting; Protocol 4 line 18 re-equips it.
        leader = AgentState(rank=4)
        agent = AgentState(phase=1, coin=1, alive_count=5)
        plus.apply(leader, agent)
        assert leader.wait_count == 4
        assert leader.coin == 0
        assert leader.alive_count == plus.l_max

    def test_ranked_responder_without_coin_is_ignored(self, plus):
        left = AgentState(rank=2)
        right = AgentState(rank=3)
        outcome = plus.apply(left, right)
        assert not outcome.changed


class TestValidation:
    def test_rejects_inconsistent_counters(self):
        schedule = PhaseSchedule(8)
        with pytest.raises(ValueError):
            RankingPlus(schedule, 4, alive_reset=0, l_max=8, trigger_reset=lambda a: None)
        with pytest.raises(ValueError):
            RankingPlus(schedule, 4, alive_reset=9, l_max=8, trigger_reset=lambda a: None)
