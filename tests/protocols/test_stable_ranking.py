"""Unit and integration tests for ``StableRanking`` (Theorem 2)."""

import pytest

from repro.core.rng import make_rng
from repro.core.simulation import Simulator
from repro.core.state import AgentState
from repro.experiments.workloads import (
    adversarial_configuration,
    duplicate_rank_configuration,
    figure2_initial_configuration,
    missing_rank_configuration,
    valid_ranking_configuration,
)
from repro.protocols.ranking.stable_ranking import StableRanking


class TestConstruction:
    def test_parameters_are_exposed(self):
        protocol = StableRanking(64, c_wait=2.0, c_live=4.0)
        assert protocol.wait_init == 12
        assert protocol.alive_reset == 24
        assert protocol.l_max >= protocol.alive_reset
        info = protocol.describe()
        assert info["c_live"] == 4.0
        assert info["r_max"] == protocol.reset.r_max

    def test_state_space_is_n_plus_polylog(self):
        small = StableRanking(64)
        large = StableRanking(4096)
        assert small.overhead_states() < large.overhead_states()
        # The overhead must grow polylogarithmically: going from n = 64 to
        # n = 4096 multiplies log²(n) by 4, while n itself grows by 64x.
        assert large.overhead_states() / small.overhead_states() < 8
        assert large.overhead_states() / small.overhead_states() < 4096 / 64

    def test_initial_state_is_leader_electing_with_coin(self):
        state = StableRanking(16).initial_state()
        assert state.in_leader_election
        assert state.coin == 0


class TestTransitionMechanics:
    def test_duplicate_ranks_eventually_trigger_reset(self):
        protocol = StableRanking(8)
        left, right = AgentState(rank=3), AgentState(rank=3)
        result = protocol.transition(left, right, make_rng(0))
        assert result.reset_triggered
        assert left.is_propagating

    def test_coin_of_responder_toggles(self):
        protocol = StableRanking(8)
        left = AgentState(rank=2)
        right = AgentState(phase=1, coin=0, alive_count=protocol.l_max)
        protocol.transition(left, right, make_rng(0))
        assert right.coin == 1

    def test_leader_electing_agent_joins_main_protocol(self):
        protocol = StableRanking(8)
        electing = AgentState(coin=1)
        protocol.leader_election.init_state(electing)
        main_agent = AgentState(rank=5)
        protocol.transition(electing, main_agent, make_rng(0))
        assert electing.phase == 1
        assert electing.alive_count == protocol.l_max
        assert electing.coin in (0, 1)

    def test_clean_ranking_is_a_fixed_point(self):
        n = 10
        protocol = StableRanking(n)
        configuration = valid_ranking_configuration(n)
        assert protocol.has_converged(configuration)
        rng = make_rng(1)
        states = configuration.states
        for _ in range(3000):
            i, j = rng.integers(0, n), rng.integers(0, n)
            if i == j:
                continue
            result = protocol.transition(states[i], states[j], rng)
            assert not result.changed
        assert protocol.has_converged(configuration)

    def test_valid_ranking_with_leftover_variables_is_not_converged(self):
        n = 6
        configuration = valid_ranking_configuration(n)
        configuration[0].coin = 1
        assert not StableRanking(n).has_converged(configuration)


class TestSelfStabilization:
    """Theorem 2: stabilization from arbitrary configurations (small n)."""

    BUDGET_FACTOR = 3000

    def _run(self, protocol, configuration, seed):
        simulator = Simulator(protocol, configuration=configuration, random_state=seed)
        budget = self.BUDGET_FACTOR * protocol.n * protocol.n
        return simulator.run(max_interactions=budget)

    @pytest.mark.parametrize("seed", [0, 1])
    def test_from_fresh_start(self, seed):
        protocol = StableRanking(16)
        result = self._run(protocol, protocol.initial_configuration(), seed)
        assert result.converged

    @pytest.mark.parametrize("seed", [0, 1])
    def test_from_duplicate_ranks(self, seed):
        protocol = StableRanking(16)
        configuration = duplicate_rank_configuration(16, duplicates=2, random_state=seed)
        result = self._run(protocol, configuration, seed)
        assert result.converged

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_from_adversarial_configuration(self, seed):
        protocol = StableRanking(16)
        configuration = adversarial_configuration(protocol, random_state=seed)
        result = self._run(protocol, configuration, seed + 100)
        assert result.converged

    def test_from_missing_rank_configuration(self):
        protocol = StableRanking(16)
        configuration = missing_rank_configuration(protocol, missing_rank=1)
        result = self._run(protocol, configuration, 7)
        assert result.converged

    def test_from_figure2_configuration(self):
        protocol = StableRanking(32)
        configuration = figure2_initial_configuration(protocol)
        result = self._run(protocol, configuration, 11)
        assert result.converged
        assert result.resets >= 1

    def test_converged_configuration_is_clean(self):
        protocol = StableRanking(16)
        result = self._run(protocol, protocol.initial_configuration(), 3)
        assert result.converged
        for state in result.configuration.states:
            assert state.rank is not None
            assert state.coin is None
            assert state.alive_count is None
            assert not state.in_reset
            assert not state.in_leader_election
