"""Unit and integration tests for ``SpaceEfficientRanking`` (Theorem 1)."""

import math

import pytest

from repro.core.rng import make_rng
from repro.core.simulation import Simulator
from repro.core.state import AgentState
from repro.experiments.workloads import figure3_initial_configuration
from repro.protocols.ranking.space_efficient import SpaceEfficientRanking


class TestTransitionRules:
    def test_initial_state_is_leader_electing(self):
        protocol = SpaceEfficientRanking(16)
        state = protocol.initial_state()
        assert state.in_leader_election
        assert state.rank is None

    def test_elected_leader_becomes_waiting(self):
        protocol = SpaceEfficientRanking(16)
        leader = AgentState(is_leader=1, leader_done=1, le_level=5, le_count=0)
        other = AgentState(phase=1)
        result = protocol.transition(leader, other, make_rng(0))
        assert result.changed
        assert leader.wait_count == protocol.wait_init
        assert not leader.in_leader_election

    def test_leader_electing_agent_joins_ranking(self):
        protocol = SpaceEfficientRanking(16)
        electing = AgentState(is_leader=0, leader_done=1, le_level=3, le_count=0)
        ranked = AgentState(rank=10)
        result = protocol.transition(electing, ranked, make_rng(0))
        assert result.changed
        assert electing.phase == 1
        assert not electing.in_leader_election

    def test_two_ranked_agents_are_a_noop(self):
        protocol = SpaceEfficientRanking(16)
        result = protocol.transition(AgentState(rank=3), AgentState(rank=4), make_rng(0))
        assert not result.changed

    def test_ranking_runs_between_main_agents(self):
        protocol = SpaceEfficientRanking(16)
        leader = AgentState(rank=1)
        agent = AgentState(phase=1)
        result = protocol.transition(leader, agent, make_rng(0))
        assert result.rank_assigned == protocol.schedule.f(2) + 1

    def test_conversion_followed_by_ranking_in_same_interaction(self):
        """Protocol 1 lines 7-10: the converted agent may be ranked immediately."""
        protocol = SpaceEfficientRanking(16)
        leader = AgentState(rank=1)
        electing = AgentState(is_leader=0, leader_done=0, le_level=3, le_count=5)
        result = protocol.transition(leader, electing, make_rng(0))
        assert result.rank_assigned == protocol.schedule.f(2) + 1
        assert electing.rank == protocol.schedule.f(2) + 1


class TestStateAccounting:
    def test_overhead_is_logarithmic(self):
        small = SpaceEfficientRanking(64).overhead_states()
        large = SpaceEfficientRanking(4096).overhead_states()
        assert small < large
        assert large <= 10 * math.ceil(math.log2(4096)) + 10

    def test_state_space_size_is_n_plus_overhead(self):
        protocol = SpaceEfficientRanking(128)
        assert protocol.state_space_size() == 128 + protocol.overhead_states()

    def test_describe_contains_parameters(self):
        info = SpaceEfficientRanking(64, c_wait=3.0).describe()
        assert info["c_wait"] == 3.0
        assert info["phase_count"] == 6


class TestConvergence:
    @pytest.mark.parametrize("n,seed", [(16, 0), (32, 1), (48, 2)])
    def test_reaches_valid_ranking_from_fresh_start(self, n, seed):
        protocol = SpaceEfficientRanking(n)
        simulator = Simulator(protocol, random_state=seed)
        result = simulator.run(max_interactions=200 * n * n)
        assert result.converged
        assert result.configuration.is_valid_ranking()

    def test_reaches_valid_ranking_from_figure3_start(self):
        protocol = SpaceEfficientRanking(64)
        configuration = figure3_initial_configuration(protocol)
        simulator = Simulator(protocol, configuration=configuration, random_state=3)
        result = simulator.run(max_interactions=200 * 64 * 64)
        assert result.converged

    def test_valid_ranking_is_silent(self):
        """Closure: once in C_L, no interaction changes any state."""
        n = 12
        protocol = SpaceEfficientRanking(n)
        simulator = Simulator(protocol, random_state=4)
        result = simulator.run(max_interactions=200 * n * n)
        assert result.converged
        snapshot = [state.as_tuple() for state in result.configuration.states]
        rng = make_rng(5)
        states = result.configuration.states
        for _ in range(2000):
            i, j = rng.integers(0, n), rng.integers(0, n)
            if i == j:
                continue
            outcome = protocol.transition(states[i], states[j], rng)
            assert not outcome.changed
        assert [state.as_tuple() for state in states] == snapshot

    def test_stabilization_time_scales_like_n2_logn(self):
        """Normalized time should stay within a small constant band (Theorem 1)."""
        normalized = []
        for n, seed in ((32, 10), (64, 11)):
            protocol = SpaceEfficientRanking(n)
            simulator = Simulator(protocol, random_state=seed)
            result = simulator.run(max_interactions=400 * n * n)
            assert result.converged
            normalized.append(result.interactions / (n * n * math.log2(n)))
        assert all(0.5 < value < 20 for value in normalized)

    def test_each_rank_is_assigned_at_most_once(self):
        """In a successful run every rank in 2 … n is handed out exactly once."""
        n = 24
        protocol = SpaceEfficientRanking(n)
        assigned = []
        simulator = Simulator(
            protocol,
            random_state=6,
            on_event=lambda t, i, j, result: (
                assigned.append(result.rank_assigned)
                if result.rank_assigned is not None
                else None
            ),
        )
        result = simulator.run(max_interactions=200 * n * n)
        assert result.converged
        assert len(assigned) == len(set(assigned)) == n - 1
        assert sorted(assigned) == list(range(2, n + 1))
