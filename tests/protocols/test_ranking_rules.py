"""Unit tests for the ``Ranking`` transition rules (Protocol 2)."""

import pytest

from repro.core.state import AgentState
from repro.protocols.ranking.phases import PhaseSchedule
from repro.protocols.ranking.rules import RankingRules


@pytest.fixture
def rules():
    return RankingRules(PhaseSchedule(8), wait_init=6)


class TestResponderNotPhaseAgent:
    def test_ranked_responder_is_ignored(self, rules):
        leader = AgentState(rank=1)
        ranked = AgentState(rank=5)
        outcome = rules.apply(leader, ranked)
        assert not outcome.changed
        assert ranked.rank == 5

    def test_waiting_responder_is_ignored(self, rules):
        leader = AgentState(rank=1)
        waiting = AgentState(wait_count=3)
        assert not rules.apply(leader, waiting).changed


class TestLeaderAssignsRanks:
    def test_assignment_in_phase_one(self, rules):
        # n = 8: phase 1 assigns ranks 5..8; leader rank r assigns f_2 + r = 4 + r.
        leader = AgentState(rank=1)
        agent = AgentState(phase=1, coin=1, alive_count=9)
        outcome = rules.apply(leader, agent)
        assert outcome.changed
        assert outcome.rank_assigned == 5
        assert agent.rank == 5 and agent.phase is None
        assert agent.coin is None and agent.alive_count is None
        assert leader.rank == 2  # leader advances

    def test_last_rank_of_nonfinal_phase_starts_waiting(self, rules):
        leader = AgentState(rank=4)  # boundary of phase 1 is f1 - f2 = 4
        agent = AgentState(phase=1)
        outcome = rules.apply(leader, agent)
        assert agent.rank == 8
        assert outcome.initiator_became_waiting
        assert leader.rank is None
        assert leader.wait_count == 6

    def test_final_phase_keeps_leader_rank(self, rules):
        # Final phase (k = 3) assigns only rank 2; boundary f3 - f4 = 1.
        leader = AgentState(rank=1)
        agent = AgentState(phase=3)
        outcome = rules.apply(leader, agent)
        assert agent.rank == 2
        assert leader.rank == 1
        assert not outcome.initiator_became_waiting

    def test_non_leader_ranked_agent_does_not_assign(self, rules):
        ranked = AgentState(rank=6)  # above the phase-1 boundary of 4
        agent = AgentState(phase=1)
        outcome = rules.apply(ranked, agent)
        assert agent.rank is None
        # rank 6 is not f_1 = 8 either, so nothing at all happens
        assert not outcome.changed


class TestPhaseAdvancement:
    def test_meeting_the_boundary_rank_bumps_phase(self, rules):
        boundary_holder = AgentState(rank=8)  # f_1
        agent = AgentState(phase=1)
        outcome = rules.apply(boundary_holder, agent)
        assert outcome.phase_advanced
        assert agent.phase == 2

    def test_final_phase_never_bumps_beyond_schedule(self, rules):
        boundary_holder = AgentState(rank=2)  # f_3, final phase
        agent = AgentState(phase=3)
        outcome = rules.apply(boundary_holder, agent)
        assert not outcome.phase_advanced
        assert agent.phase == 3

    def test_phase_epidemic_adopts_maximum(self, rules):
        low = AgentState(phase=1)
        high = AgentState(phase=3)
        outcome = rules.apply(low, high)
        assert outcome.changed and outcome.phase_advanced
        assert low.phase == 3 and high.phase == 3

    def test_equal_phases_are_noop(self, rules):
        left = AgentState(phase=2)
        right = AgentState(phase=2)
        assert not rules.apply(left, right).changed


class TestWaitingLeader:
    def test_wait_counter_decrements_against_phase_agents(self, rules):
        waiting = AgentState(wait_count=2)
        agent = AgentState(phase=2)
        outcome = rules.apply(waiting, agent)
        assert outcome.changed
        assert waiting.wait_count == 1

    def test_wait_counter_expiry_yields_rank_one(self, rules):
        waiting = AgentState(wait_count=1, coin=1, alive_count=5)
        agent = AgentState(phase=2)
        outcome = rules.apply(waiting, agent)
        assert outcome.initiator_became_ranked
        assert waiting.rank == 1
        assert waiting.wait_count is None
        assert waiting.coin is None and waiting.alive_count is None

    def test_waiting_leader_ignores_ranked_responder(self, rules):
        waiting = AgentState(wait_count=3)
        ranked = AgentState(rank=7)
        assert not rules.apply(waiting, ranked).changed
        assert waiting.wait_count == 3


class TestFullSequentialPhaseWalk:
    def test_manual_execution_produces_valid_ranking(self):
        """Drive Protocol 2 by hand (no scheduler) through all phases for n=8."""
        n = 8
        schedule = PhaseSchedule(n)
        rules = RankingRules(schedule, wait_init=2)
        leader = AgentState(rank=1)
        others = [AgentState(phase=1) for _ in range(n - 1)]

        unranked = list(others)
        for phase in range(1, schedule.phase_count + 1):
            # Leader assigns all ranks of the current phase.
            while leader.rank is not None and unranked:
                rules.apply(leader, unranked[0])
                if unranked[0].rank is not None:
                    unranked.pop(0)
            if leader.rank is not None:
                break  # final phase finished
            # Phase transition: remaining agents learn the phase is over by
            # meeting the boundary-rank holder, then the leader waits it out.
            boundary_holder = next(
                agent for agent in others if agent.rank == schedule.f(phase)
            )
            for agent in unranked:
                rules.apply(boundary_holder, agent)
            while leader.wait_count is not None:
                rules.apply(leader, unranked[0])

        ranks = sorted([leader.rank] + [agent.rank for agent in others])
        assert ranks == list(range(1, n + 1))
