"""Tests for the event-driven ``SpaceEfficientRanking`` engine.

Besides unit tests of the event decomposition, this module statistically
cross-validates the aggregate engine against the agent-level reference
implementation: the mean time to reach the Figure 3 milestones must agree
within sampling error (this is the main correctness argument for using the
aggregate engine at population sizes the reference cannot handle).
"""

import numpy as np
import pytest

from repro.core.simulation import Simulator
from repro.experiments.workloads import figure3_initial_configuration
from repro.protocols.ranking.aggregate_space_efficient import (
    AggregateSpaceEfficientRanking,
)
from repro.protocols.ranking.space_efficient import SpaceEfficientRanking


class TestAggregateEngineBasics:
    def test_initial_state_matches_figure3(self):
        engine = AggregateSpaceEfficientRanking(64, random_state=0)
        assert engine.unconverted == 63
        assert engine.ranked_count() == 1
        assert engine.leader_mode == "rank"

    def test_event_weights_are_consistent_with_population(self):
        engine = AggregateSpaceEfficientRanking(32, random_state=0)
        weights = engine.event_weights()
        assert all(weight > 0 for weight in weights.values())
        assert sum(weights.values()) <= engine.total_ordered_pairs

    def test_runs_to_completion(self):
        engine = AggregateSpaceEfficientRanking(128, random_state=1)
        result = engine.run(max_interactions=10**12)
        assert result.converged
        assert engine.ranked_count() == 128
        assert engine.unconverted == 0
        assert not engine.phase_counts

    def test_interactions_scale_like_n2_logn(self):
        engine = AggregateSpaceEfficientRanking(512, random_state=2)
        result = engine.run(max_interactions=10**13)
        normalized = result.interactions / (512**2 * np.log2(512))
        assert 0.5 < normalized < 20

    def test_events_are_near_linear_in_n(self):
        engine = AggregateSpaceEfficientRanking(1024, random_state=3)
        result = engine.run(max_interactions=10**13)
        assert result.converged
        assert result.events < 40 * 1024

    def test_milestones_are_monotone(self):
        engine = AggregateSpaceEfficientRanking(256, random_state=4)
        fractions = (0.5, 0.75, 0.875)
        result = engine.run(
            max_interactions=10**12,
            milestones=engine.milestone_predicates(fractions),
        )
        times = [result.milestones[f"ranked_{f}"] for f in fractions]
        assert times == sorted(times)

    def test_start_ranking_constructor(self):
        engine = AggregateSpaceEfficientRanking.from_start_ranking(64, random_state=5)
        assert engine.leader_mode == "wait"
        assert engine.phase_counts == {1: 63}
        result = engine.run(max_interactions=10**12)
        assert result.converged


class TestCrossValidationAgainstReference:
    """The aggregate engine must reproduce the reference's milestone times."""

    N = 64
    FRACTION = 0.5
    REFERENCE_RUNS = 20
    AGGREGATE_RUNS = 200

    def _reference_times(self):
        times = []
        for seed in range(self.REFERENCE_RUNS):
            protocol = SpaceEfficientRanking(self.N)
            configuration = figure3_initial_configuration(protocol)
            simulator = Simulator(protocol, configuration=configuration, random_state=seed)
            outcome = simulator.run_until(
                lambda config: config.ranked_count() >= self.FRACTION * self.N,
                max_interactions=100 * self.N * self.N,
                check_interval=16,
            )
            assert outcome.converged
            times.append(simulator.interactions)
        return np.array(times, dtype=float)

    def _aggregate_times(self):
        times = []
        for seed in range(self.AGGREGATE_RUNS):
            engine = AggregateSpaceEfficientRanking(self.N, random_state=10_000 + seed)
            result = engine.run(
                max_interactions=10**12,
                milestones=engine.milestone_predicates([self.FRACTION]),
            )
            times.append(result.milestones[f"ranked_{self.FRACTION}"])
        return np.array(times, dtype=float)

    def test_milestone_means_agree(self):
        reference = self._reference_times()
        aggregate = self._aggregate_times()
        reference_mean = reference.mean()
        aggregate_mean = aggregate.mean()
        # Allow for Monte-Carlo error of the small reference sample: three
        # standard errors plus a 10% modelling tolerance.
        standard_error = reference.std(ddof=1) / np.sqrt(len(reference))
        tolerance = 3 * standard_error + 0.1 * reference_mean
        assert abs(reference_mean - aggregate_mean) < tolerance
