"""Unit tests for the synthetic coin and one-way epidemic primitives."""

import math

import pytest

from repro.core.simulation import Simulator
from repro.core.state import AgentState
from repro.protocols.primitives.one_way_epidemic import (
    EpidemicState,
    OneWayEpidemicProtocol,
    epidemic_upper_bound,
)
from repro.protocols.primitives.synthetic_coin import (
    SyntheticCoinProtocol,
    coin_counts,
    coin_imbalance,
    warmup_interactions,
)


class TestSyntheticCoin:
    def test_coin_counts_and_imbalance(self):
        states = [AgentState(coin=0), AgentState(coin=1), AgentState(coin=1), AgentState()]
        assert coin_counts(states) == (1, 2)
        assert coin_imbalance(states) == 1

    def test_warmup_interactions_scale(self):
        assert warmup_interactions(256) >= 256
        with pytest.raises(ValueError):
            warmup_interactions(1)

    def test_coins_balance_after_warmup(self):
        n = 200
        protocol = SyntheticCoinProtocol(n)
        simulator = Simulator(protocol, random_state=0)
        simulator.run(max_interactions=warmup_interactions(n) * 4, stop_on_convergence=False)
        imbalance = coin_imbalance(simulator.configuration.states)
        # Lemma 28 allows n / (4 log n) ≈ 6.5; allow generous slack for one run.
        assert imbalance <= n / 4

    def test_protocol_toggles_responder_only(self):
        protocol = SyntheticCoinProtocol(4)
        initiator, responder = AgentState(coin=0), AgentState(coin=0)
        protocol.transition(initiator, responder, None)
        assert initiator.coin == 0
        assert responder.coin == 1

    def test_state_space_size(self):
        assert SyntheticCoinProtocol(10).state_space_size() == 2


class TestOneWayEpidemic:
    def test_rejects_bad_subpopulation(self):
        with pytest.raises(ValueError):
            OneWayEpidemicProtocol(10, m=0)
        with pytest.raises(ValueError):
            OneWayEpidemicProtocol(10, m=11)

    def test_initial_configuration_counts(self):
        protocol = OneWayEpidemicProtocol(10, m=6)
        config = protocol.initial_configuration()
        assert protocol.informed_count(config) == 1
        assert sum(state.active for state in config.states) == 6

    def test_transition_is_one_way(self):
        protocol = OneWayEpidemicProtocol(4)
        informed = EpidemicState(informed=True)
        uninformed = EpidemicState(informed=False)
        # responder learns from initiator …
        assert protocol.transition(informed, uninformed, None).changed
        assert uninformed.informed
        # … but an uninformed initiator learns nothing from an informed responder.
        fresh = EpidemicState(informed=False)
        assert not protocol.transition(fresh, informed, None).changed
        assert not fresh.informed

    def test_inactive_agents_do_not_participate(self):
        protocol = OneWayEpidemicProtocol(4, m=2)
        informed = EpidemicState(informed=True, active=True)
        inert = EpidemicState(informed=False, active=False)
        assert not protocol.transition(informed, inert, None).changed

    def test_full_population_epidemic_completes_within_bound(self):
        n = 100
        protocol = OneWayEpidemicProtocol(n)
        simulator = Simulator(protocol, random_state=1)
        result = simulator.run(max_interactions=int(epidemic_upper_bound(n, n, gamma=1.0)))
        assert result.converged

    def test_subpopulation_epidemic_completes(self):
        n, m = 80, 20
        protocol = OneWayEpidemicProtocol(n, m=m)
        simulator = Simulator(protocol, random_state=2)
        result = simulator.run(max_interactions=int(epidemic_upper_bound(n, m, gamma=1.0)))
        assert result.converged

    def test_bound_monotone_in_subpopulation(self):
        assert epidemic_upper_bound(100, 10, 1.0) > epidemic_upper_bound(100, 100, 1.0)

    def test_bound_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            epidemic_upper_bound(10, 1, 1.0)
        with pytest.raises(ValueError):
            epidemic_upper_bound(10, 5, 0.0)
