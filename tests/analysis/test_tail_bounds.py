"""Tests for the tail bounds of Appendix A, checked against Monte-Carlo samples."""

import numpy as np
import pytest

from repro.analysis.tail_bounds import (
    coupon_collector_bound,
    negative_binomial_lower_bound,
    negative_binomial_upper_bound,
    one_way_epidemic_bound,
    sample_coupon_collector,
    sample_negative_binomial,
)
from repro.core.errors import AnalysisError
from repro.core.rng import make_rng


class TestArgumentValidation:
    def test_negative_binomial_rejects_bad_arguments(self):
        with pytest.raises(AnalysisError):
            negative_binomial_upper_bound(0, 0.5, 10, 1.0)
        with pytest.raises(AnalysisError):
            negative_binomial_upper_bound(3, 1.5, 10, 1.0)
        with pytest.raises(AnalysisError):
            negative_binomial_upper_bound(3, 0.5, 10, 0.0)
        with pytest.raises(AnalysisError):
            negative_binomial_lower_bound(3, 0.0)

    def test_coupon_collector_rejects_bad_arguments(self):
        with pytest.raises(AnalysisError):
            coupon_collector_bound(0, 10, 1.0)
        with pytest.raises(AnalysisError):
            coupon_collector_bound(11, 10, 1.0)

    def test_epidemic_rejects_bad_arguments(self):
        with pytest.raises(AnalysisError):
            one_way_epidemic_bound(10, 1, 1.0)

    def test_samplers_reject_bad_sizes(self):
        with pytest.raises(AnalysisError):
            sample_negative_binomial(make_rng(0), 3, 0.5, size=0)
        with pytest.raises(AnalysisError):
            sample_coupon_collector(make_rng(0), 0)


class TestLemma12NegativeBinomial:
    def test_upper_bound_holds_empirically(self):
        rng = make_rng(0)
        r, p, n, gamma = 10, 0.05, 100, 1.0
        bound = negative_binomial_upper_bound(r, p, n, gamma)
        samples = sample_negative_binomial(rng, r, p, size=5000)
        violation_rate = float(np.mean(samples > bound))
        assert violation_rate <= 1.0 / n + 0.02

    def test_lower_bound_holds_empirically(self):
        rng = make_rng(1)
        r, p = 20, 0.1
        bound = negative_binomial_lower_bound(r, p)
        samples = sample_negative_binomial(rng, r, p, size=5000)
        violation_rate = float(np.mean(samples <= bound))
        assert violation_rate <= np.exp(-r / 6) + 0.02

    def test_sample_mean_matches_distribution(self):
        rng = make_rng(2)
        samples = sample_negative_binomial(rng, 5, 0.25, size=20_000)
        assert samples.min() >= 5
        assert float(samples.mean()) == pytest.approx(5 / 0.25, rel=0.05)


class TestLemma13CouponCollector:
    def test_bound_holds_empirically(self):
        rng = make_rng(3)
        k, n, gamma = 30, 50, 1.0
        bound = coupon_collector_bound(k, n, gamma)
        samples = sample_coupon_collector(rng, k, size=3000)
        violation_rate = float(np.mean(samples > bound))
        assert violation_rate <= 1.0 / n + 0.02

    def test_sample_mean_matches_harmonic_formula(self):
        rng = make_rng(4)
        k = 20
        expectation = k * sum(1.0 / i for i in range(1, k + 1))
        samples = sample_coupon_collector(rng, k, size=10_000)
        assert float(samples.mean()) == pytest.approx(expectation, rel=0.05)


class TestLemma14OneWayEpidemic:
    def test_bound_dominates_simulated_epidemics(self):
        """The Lemma 14 bound must exceed simulated completion times (m = n case)."""
        from repro.core.simulation import Simulator
        from repro.protocols.primitives.one_way_epidemic import OneWayEpidemicProtocol

        n = 60
        bound = one_way_epidemic_bound(n, n, gamma=1.0)
        violations = 0
        runs = 20
        for seed in range(runs):
            simulator = Simulator(OneWayEpidemicProtocol(n), random_state=seed)
            result = simulator.run(max_interactions=int(bound) + 1)
            if not result.converged:
                violations += 1
        assert violations <= 1

    def test_bound_scales_inversely_with_subpopulation(self):
        assert one_way_epidemic_bound(200, 20, 1.0) > 5 * one_way_epidemic_bound(200, 200, 1.0)
