"""Tests for the empirical state-space accounting (experiment E4)."""

import math

from repro.analysis.state_space import (
    StateUsageTracker,
    measure_state_usage,
    overhead_state_table,
)
from repro.baselines.cai_ranking import CaiRanking
from repro.core.configuration import Configuration
from repro.core.state import AgentState
from repro.protocols.ranking.space_efficient import SpaceEfficientRanking
from repro.protocols.ranking.stable_ranking import StableRanking


class TestStateUsageTracker:
    def test_initial_configuration_is_recorded(self):
        config = Configuration([AgentState(rank=1), AgentState(rank=2), AgentState(rank=2)])
        tracker = StateUsageTracker(config)
        assert tracker.total_states == 2  # ranks 1 and 2 (deduplicated)
        assert tracker.rank_state_count == 2
        assert tracker.overhead_state_count == 0

    def test_non_rank_states_count_as_overhead(self):
        config = Configuration([AgentState(rank=1), AgentState(phase=1, coin=0)])
        tracker = StateUsageTracker(config)
        assert tracker.overhead_state_count == 1

    def test_ignore_fields_collapses_states(self):
        config = Configuration(
            [AgentState(leader_done=0, le_level=1), AgentState(leader_done=0, le_level=2)]
        )
        assert StateUsageTracker(config).total_states == 2
        assert StateUsageTracker(config, ignore_fields=("le_level",)).total_states == 1

    def test_on_event_records_new_states(self):
        config = Configuration([AgentState(rank=1), AgentState(rank=2)])
        tracker = StateUsageTracker(config)
        config[1].rank = 3
        tracker.on_event(1, 0, 1, None)
        assert tracker.total_states == 3


class TestMeasureStateUsage:
    def test_space_efficient_ranking_layer_overhead_is_logarithmic(self):
        n = 64
        report = measure_state_usage(
            SpaceEfficientRanking(n),
            max_interactions=400 * n * n,
            random_state=0,
            ignore_fields=("le_level", "le_count"),
        )
        assert report.converged
        assert report.rank_states == n
        assert report.overhead_states <= 8 * math.ceil(math.log2(n))

    def test_cai_uses_exactly_n_states(self):
        n = 16
        report = measure_state_usage(CaiRanking(n), max_interactions=50 * n**3, random_state=1)
        assert report.converged
        assert report.total_states == n
        assert report.overhead_states == 0

    def test_stable_ranking_overhead_grows_polylogarithmically(self):
        reports = {}
        for n in (16, 64):
            reports[n] = measure_state_usage(
                StableRanking(n), max_interactions=3000 * n * n, random_state=2
            )
            assert reports[n].converged
        growth = reports[64].overhead_states / max(reports[16].overhead_states, 1)
        assert growth < 64 / 16  # far slower than linear growth in n


class TestOverheadTable:
    def test_table_rows_and_ordering(self):
        rows = overhead_state_table([64, 1024])
        assert len(rows) == 2
        for row in rows:
            assert row["cai_ranking"] == 0
            assert row["space_efficient_ranking"] < row["stable_ranking"]
            assert row["stable_ranking"] < row["burman_style_ranking"]
