"""Tests for the theoretical-prediction helpers."""

import math

import pytest

from repro.analysis.theory import (
    burman_state_count,
    cai_state_count,
    complete_epidemic_expected_interactions,
    herman_ring_conjectured_bound,
    herman_ring_upper_bound,
    normalized_stabilization_time,
    range_ranking_lower_bound,
    ring_epidemic_expected_interactions,
    silent_leader_election_lower_bound,
    state_complexity_summary,
    theorem1_interaction_bound,
    theorem1_state_count,
    theorem2_interaction_bound,
    theorem2_state_count,
)
from repro.core.errors import AnalysisError


class TestInteractionBounds:
    def test_theorem_bounds_scale_like_n2_logn(self):
        ratio = theorem1_interaction_bound(2048) / theorem1_interaction_bound(1024)
        assert ratio == pytest.approx(4 * 11 / 10, rel=0.01)
        assert theorem2_interaction_bound(256) == theorem1_interaction_bound(256)

    def test_lower_bounds(self):
        assert silent_leader_election_lower_bound(100) == pytest.approx(4950)
        assert range_ranking_lower_bound(100, 0) == pytest.approx(4950)
        assert range_ranking_lower_bound(100, 99) < range_ranking_lower_bound(100, 0)

    def test_validation(self):
        with pytest.raises(AnalysisError):
            theorem1_interaction_bound(1)
        with pytest.raises(AnalysisError):
            range_ranking_lower_bound(10, -1)


class TestStateCounts:
    def test_theorem1_overhead_is_logarithmic(self):
        overhead = theorem1_state_count(4096) - 4096
        assert overhead <= 6 * math.log2(4096)

    def test_theorem2_overhead_is_polylog(self):
        assert theorem2_state_count(4096) - 4096 == math.ceil(math.log2(4096) ** 2)

    def test_baseline_counts(self):
        assert cai_state_count(50) == 50
        assert burman_state_count(50) - 50 >= 50

    def test_ordering_matches_paper_narrative(self):
        """Cai < SpaceEfficient < Stable << Burman in overhead states for large n."""
        n = 8192
        summary = state_complexity_summary(n)
        assert summary.cai_overhead == 0
        assert summary.cai_overhead < summary.space_efficient_overhead
        assert summary.space_efficient_overhead < summary.stable_overhead
        assert summary.stable_overhead < summary.burman_overhead
        assert summary.as_dict()["n"] == n


class TestNormalization:
    def test_normalized_stabilization_time(self):
        n = 128
        interactions = 5 * n * n * math.log2(n)
        assert normalized_stabilization_time(int(interactions), n) == pytest.approx(5.0, rel=0.01)

    def test_rejects_tiny_population(self):
        with pytest.raises(AnalysisError):
            normalized_stabilization_time(100, 1)


class TestRingOverlays:
    def test_herman_band_brackets_the_ring_constant(self):
        # 4/27 ≈ 0.148 < 0.64: the conjectured sharp constant sits below
        # the proved general bound for every n.
        for n in (8, 64, 1024):
            assert herman_ring_conjectured_bound(n) == pytest.approx(
                4.0 * n * n / 27.0
            )
            assert herman_ring_conjectured_bound(n) < herman_ring_upper_bound(n)
            assert herman_ring_upper_bound(n) == pytest.approx(0.64 * n * n)

    def test_ring_epidemic_expectation_is_exact(self):
        # 2 of the 2n directed slots grow the informed arc, so each of the
        # n-1 growth events waits Geometric(1/n): the total is n(n-1).
        assert ring_epidemic_expected_interactions(2) == 2.0
        assert ring_epidemic_expected_interactions(64) == 64.0 * 63.0

    def test_complete_epidemic_expectation_is_exact(self):
        # Sum of geometric waits n(n-1) / (k(n-k)) telescopes to
        # 2(n-1)·H(n-1).
        n = 6
        expected = sum(n * (n - 1) / (k * (n - k)) for k in range(1, n))
        assert complete_epidemic_expected_interactions(n) == pytest.approx(expected)

    def test_ring_dominates_complete_for_large_n(self):
        # Θ(n²) vs Θ(n log n): the restricted topology must be slower.
        for n in (16, 256):
            assert ring_epidemic_expected_interactions(n) > (
                complete_epidemic_expected_interactions(n)
            )

    def test_overlays_reject_tiny_populations(self):
        for fn in (
            herman_ring_conjectured_bound,
            herman_ring_upper_bound,
            ring_epidemic_expected_interactions,
            complete_epidemic_expected_interactions,
        ):
            with pytest.raises(AnalysisError):
                fn(1)
