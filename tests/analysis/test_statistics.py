"""Tests for the run-statistics helpers."""

import numpy as np
import pytest

from repro.analysis.statistics import bootstrap_confidence_interval, summarize
from repro.core.errors import AnalysisError


class TestSummarize:
    def test_rejects_empty(self):
        with pytest.raises(AnalysisError):
            summarize([])

    def test_single_value(self):
        summary = summarize([3.0])
        assert summary.mean == 3.0
        assert summary.std == 0.0
        assert summary.count == 1

    def test_known_sample(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.mean == pytest.approx(2.5)
        assert summary.median == pytest.approx(2.5)
        assert summary.minimum == 1.0 and summary.maximum == 4.0
        assert summary.quantile_25 <= summary.median <= summary.quantile_75
        assert summary.as_dict()["count"] == 4


class TestBootstrap:
    def test_interval_contains_true_mean_for_large_sample(self):
        rng = np.random.default_rng(0)
        sample = rng.normal(loc=10.0, scale=2.0, size=400)
        low, high = bootstrap_confidence_interval(sample, random_state=1)
        assert low < 10.0 < high
        assert high - low < 1.0

    def test_validation(self):
        with pytest.raises(AnalysisError):
            bootstrap_confidence_interval([])
        with pytest.raises(AnalysisError):
            bootstrap_confidence_interval([1.0], confidence=1.5)
        with pytest.raises(AnalysisError):
            bootstrap_confidence_interval([1.0], resamples=0)
