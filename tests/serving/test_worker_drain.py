"""Worker-drain tests, up to the multiprocess stress matrix.

The acceptance property of the serving subsystem: however many ``repro
worker`` processes drain one study directory — including one killed
mid-cell whose lease is reclaimed — the merged rows are bit-identical
(modulo row order) to ``Study.run(jobs=1)``.  Correctness rides on every
cell deriving its randomness from its own coordinates, so the tests
compare full row dictionaries, series and engine fields included.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.experiments.study import ExperimentSpec, Study, plan_units
from repro.serving import JobQueue, ShardedResultStore, run_worker

REPO_SRC = Path(__file__).resolve().parents[2] / "src"


def spec(**overrides):
    defaults = dict(
        variant="sr",
        protocol="stable-ranking",
        n_values=(8, 16),
        seeds=3,
        max_interactions_factor=2000.0,
    )
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


def serial_rows(the_spec, tmp_path):
    result = Study(the_spec, name="ref", store=tmp_path / "serial-ref").run()
    return normalized(row.as_dict() for row in result.rows)


def normalized(rows):
    """Study-field-blanked rows in canonical cell order (stored rows
    carry ``study=""``; ResultSet rows carry the study name)."""
    out = []
    for row in rows:
        row = dict(row)
        row["study"] = ""
        out.append(row)
    out.sort(key=lambda row: (row["variant"], row["n"], row["seed_index"]))
    return out


def submit(the_spec, root, name="drain"):
    """Create the study directory and enqueue its missing cells."""
    study = Study(the_spec, name=name, store=root)
    store = study.store
    store.write_spec(
        {
            "study": name,
            "hash": study.content_hash(),
            "specs": [the_spec.as_dict()],
        }
    )
    queue = JobQueue(store.directory)
    queue.enqueue_units(plan_units([the_spec], store.load().keys()))
    return store, queue


def worker_command(directory, lease_timeout="2", extra=()):
    return [
        sys.executable, "-m", "repro", "worker", "--study", str(directory),
        "--lease-timeout", str(lease_timeout), "--quiet", *extra,
    ]


def worker_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_SRC) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


class TestInProcessWorker:
    def test_single_worker_drains_to_serial_rows(self, tmp_path):
        the_spec = spec()
        store, queue = submit(the_spec, tmp_path / "served")
        jobs = run_worker(store.directory, lease_timeout=5.0)
        assert jobs == len(queue.jobs())
        assert queue.pending(store.load().keys()) == []
        assert normalized(store.load().values()) == serial_rows(
            the_spec, tmp_path
        )

    def test_drained_worker_compacts_shards(self, tmp_path):
        store, _ = submit(spec(n_values=(8,), seeds=2), tmp_path / "served")
        run_worker(store.directory, lease_timeout=5.0)
        assert store.shard_paths() == []
        assert store.rows_path.exists()
        assert len(store.load()) == 2

    def test_batch_jobs_ship_whole_seed_groups(self, tmp_path):
        # seeds >= 4 wins the batching negotiation: the queue holds one
        # indivisible job per (variant, n) whose rows record the batching
        # backend, exactly as Study.run(jobs=1) would produce.
        the_spec = spec(n_values=(8,), seeds=6)
        store, queue = submit(the_spec, tmp_path / "served")
        assert [job.kind for job in queue.jobs()] == ["batch"]
        run_worker(store.directory, lease_timeout=5.0)
        rows = normalized(store.load().values())
        assert {row["engine"] for row in rows} == {"array-batched"}
        assert rows == serial_rows(the_spec, tmp_path)

    def test_stale_lease_is_reclaimed_and_rerun_to_same_bytes(self, tmp_path):
        the_spec = spec(n_values=(8,), seeds=2)
        store, queue = submit(the_spec, tmp_path / "served")
        # Simulate a crashed worker: claim a job, never heartbeat.
        victim_job = queue.pending([])[0]
        crashed = JobQueue(store.directory, lease_timeout=0.2)
        lease = crashed.claim(victim_job, "crashed")
        stale = time.time() - 60.0
        os.utime(lease.path, (stale, stale))
        jobs = run_worker(
            store.directory, lease_timeout=0.2, poll=0.05
        )
        assert jobs == len(queue.jobs())
        assert normalized(store.load().values()) == serial_rows(
            the_spec, tmp_path
        )

    def test_max_jobs_budget(self, tmp_path):
        store, queue = submit(spec(n_values=(8,), seeds=3),
                              tmp_path / "served")
        assert run_worker(store.directory, max_jobs=1) == 1
        assert len(queue.pending(store.load().keys())) == 2

    def test_missing_study_directory_raises(self, tmp_path):
        from repro.core.errors import ExperimentError

        with pytest.raises(ExperimentError, match="no study directory"):
            run_worker(tmp_path / "nope-feedc0ffee12")


class TestMultiprocessStress:
    def test_four_workers_and_a_kill_match_serial(self, tmp_path):
        """4+ concurrent ``repro worker`` processes — one SIGKILLed while
        holding a lease mid-cell — drain one shared study directory to a
        result bit-identical to serial execution."""
        the_spec = spec(n_values=(8, 16), seeds=6)
        store, queue = submit(the_spec, tmp_path / "served")
        total_jobs = len(queue.jobs())
        assert total_jobs >= 2

        # A worker that claims a job and is killed mid-cell: its shard
        # has no rows for that job yet, its lease stops heartbeating.
        victim = subprocess.Popen(
            worker_command(store.directory, lease_timeout=2),
            env=worker_env(),
        )
        leases_dir = store.directory / "queue" / "leases"
        deadline = time.time() + 60.0
        while time.time() < deadline and not (
            leases_dir.is_dir() and any(leases_dir.glob("*.json"))
        ):
            time.sleep(0.02)
        assert any(leases_dir.glob("*.json")), "victim never claimed a job"
        victim.send_signal(signal.SIGKILL)
        victim.wait()
        completed_before_kill = set(store.load().keys())

        workers = [
            subprocess.Popen(
                worker_command(store.directory, lease_timeout=2),
                env=worker_env(),
            )
            for _ in range(4)
        ]
        for worker in workers:
            assert worker.wait(timeout=300) == 0

        rows = store.load()
        # No completed row was lost to the kill...
        assert completed_before_kill <= set(rows.keys())
        # ...the queue fully drained (the victim's lease was reclaimed)...
        assert queue.pending(rows.keys()) == []
        # ...and the merged result is bit-identical to a serial run.
        assert normalized(rows.values()) == serial_rows(the_spec, tmp_path)
