"""Tests for the ``repro serve`` front end and the studies listing.

The service layer is exercised directly (submission planning, progress
accounting, result downloads) and once through a real threaded HTTP
server — POST a spec, drain with a worker, poll progress, download the
rows — mirroring what the CI serving-smoke job does across processes.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.errors import ExperimentError
from repro.experiments.cli import main
from repro.experiments.study import ExperimentSpec, Study
from repro.serving import StudyService, make_server, run_worker


def spec(**overrides):
    defaults = dict(
        variant="sr",
        protocol="stable-ranking",
        n_values=(8,),
        seeds=2,
        max_interactions_factor=2000.0,
    )
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


def normalized(rows):
    out = []
    for row in rows:
        row = dict(row)
        row["study"] = ""
        out.append(row)
    out.sort(key=lambda row: (row["variant"], row["n"], row["seed_index"]))
    return out


class TestStudyService:
    def test_submit_plans_and_reports_progress(self, tmp_path):
        service = StudyService(tmp_path)
        summary = service.submit({"name": "s", "specs": [spec().as_dict()]})
        assert summary["total"] == 2
        assert summary["done"] == 0
        assert summary["enqueued_jobs"] == 2
        assert summary["queue"]["pending"] == 2
        assert not summary["complete"]
        # Re-submission is idempotent; extension enqueues only new cells.
        again = service.submit({"name": "s", "specs": [spec().as_dict()]})
        assert again["enqueued_jobs"] == 0
        wider = service.submit(
            {"name": "s", "specs": [spec(seeds=3).as_dict()]}
        )
        assert wider["enqueued_jobs"] == 1
        assert wider["total"] == 3

    def test_drained_study_serves_serial_identical_rows(self, tmp_path):
        service = StudyService(tmp_path / "served")
        summary = service.submit({"name": "s", "specs": [spec().as_dict()]})
        run_worker(summary["directory"], lease_timeout=5.0)
        progress = service.progress(summary["study"])
        assert progress["complete"]
        assert progress["by_engine"] == {"array": 2}
        serial = Study(spec(), name="ref", store=tmp_path / "ref").run()
        assert normalized(service.rows(summary["study"])) == normalized(
            row.as_dict() for row in serial.rows
        )
        csv_text = service.rows_csv(summary["study"])
        lines = csv_text.strip().splitlines()
        assert lines[0].startswith("study,variant,protocol,engine,n")
        assert len(lines) == 3

    def test_unknown_study_and_bad_submission_raise(self, tmp_path):
        service = StudyService(tmp_path)
        with pytest.raises(ExperimentError, match="unknown study"):
            service.progress("nope-feedc0ffee12")
        with pytest.raises(ExperimentError, match="submission"):
            service.submit({"name": "x"})

    def test_studies_lists_every_store_directory(self, tmp_path):
        service = StudyService(tmp_path)
        service.submit({"name": "a", "specs": [spec().as_dict()]})
        service.submit(
            {"name": "b", "specs": [spec(random_state=1).as_dict()]}
        )
        names = {summary["name"] for summary in service.studies()}
        assert names == {"a", "b"}


class TestHTTPEndToEnd:
    @pytest.fixture()
    def server(self, tmp_path):
        httpd, service = make_server(tmp_path / "served", port=0)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{httpd.server_address[1]}"
        yield base, tmp_path
        httpd.shutdown()
        httpd.server_close()

    def _get(self, url):
        with urllib.request.urlopen(url, timeout=30) as response:
            return response.status, response.read()

    def _post(self, url, payload):
        request = urllib.request.Request(
            url,
            data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())

    def test_submit_drain_progress_download(self, server):
        base, tmp_path = server
        status, summary = self._post(
            f"{base}/studies", {"name": "s", "specs": [spec().as_dict()]}
        )
        assert status == 201
        study_id = summary["study"]

        status, body = self._get(f"{base}/studies/{study_id}")
        assert status == 200
        assert json.loads(body)["done"] == 0

        run_worker(summary["directory"], lease_timeout=5.0)

        # The watch long-poll returns as soon as progress moved.
        status, body = self._get(f"{base}/studies/{study_id}?watch=10")
        progress = json.loads(body)
        assert progress["complete"] and progress["done"] == 2

        status, body = self._get(f"{base}/studies/{study_id}/rows")
        downloaded = json.loads(body)["rows"]
        serial = Study(spec(), name="ref", store=tmp_path / "ref").run()
        assert normalized(downloaded) == normalized(
            row.as_dict() for row in serial.rows
        )

        status, body = self._get(f"{base}/studies/{study_id}/rows.csv")
        assert status == 200
        assert len(body.decode().strip().splitlines()) == 3

        status, body = self._get(f"{base}/studies")
        assert json.loads(body)[0]["study"] == study_id

    def test_errors_are_json(self, server):
        base, _ = server
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._get(f"{base}/studies/nope-feedc0ffee12")
        assert excinfo.value.code == 404
        assert "error" in json.loads(excinfo.value.read())
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._post(f"{base}/studies", {"name": "x"})
        assert excinfo.value.code == 400
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._get(f"{base}/nonsense")
        assert excinfo.value.code == 404


class TestOperatorListing:
    def test_list_studies_shows_queue_depth_and_progress(
        self, tmp_path, capsys
    ):
        service = StudyService(tmp_path)
        summary = service.submit({"name": "s", "specs": [spec().as_dict()]})
        assert main(["list", "--studies", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert summary["study"] in out
        assert "cells 0/2" in out
        assert "queue 2 pending" in out

        run_worker(summary["directory"], lease_timeout=5.0)
        assert main(["list", "--studies", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "cells 2/2" in out
        assert "complete" in out
        assert "array:2" in out

    def test_list_studies_empty_root(self, tmp_path, capsys):
        assert main(["list", "--studies", str(tmp_path / "empty")]) == 0
        assert "no studies" in capsys.readouterr().out

    def test_worker_cli_reports_missing_study(self, tmp_path, capsys):
        code = main(["worker", "--study", str(tmp_path / "nope-abc123")])
        assert code == 1
        assert "no study directory" in capsys.readouterr().err

    def test_worker_cli_drains_submitted_study(self, tmp_path, capsys):
        service = StudyService(tmp_path)
        summary = service.submit({"name": "s", "specs": [spec().as_dict()]})
        code = main(
            ["worker", "--study", summary["directory"],
             "--lease-timeout", "5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "drained 2 job(s)" in out
        assert service.progress(summary["study"])["complete"]


class TestPresetSubmission:
    def test_preset_submission_builds_cli_specs(self, tmp_path):
        service = StudyService(tmp_path)
        summary = service.submit(
            {
                "preset": "topology_sweep",
                "topology": "ring",
                "n": "16",
                "seeds": 2,
            }
        )
        assert summary["name"] == "topology_sweep"
        assert summary["total"] == 4  # (complete + ring) x 2 seeds
        assert summary["enqueued_jobs"] == 4
        # The recorded spec.json round-trips the topology axis, so any
        # worker that attaches plans the same restricted cells.
        run_worker(summary["directory"], lease_timeout=5.0)
        rows = service.rows(summary["study"])
        by_variant = {}
        for row in rows:
            by_variant.setdefault(row["variant"], []).append(row)
        assert set(by_variant) == {"complete", "ring"}
        assert all(r["topology"] == "ring" for r in by_variant["ring"])
        assert all(
            r["engine"] not in ("auto", "aggregate", "group")
            for r in by_variant["ring"]
        )

    def test_preset_submission_rejections(self, tmp_path):
        service = StudyService(tmp_path)
        with pytest.raises(ExperimentError, match="unknown experiment"):
            service.submit({"preset": "figure9"})
        with pytest.raises(ExperimentError, match="unknown preset override"):
            service.submit({"preset": "figure2", "bogus": 1})
        with pytest.raises(ExperimentError, match="not both"):
            service.submit(
                {"preset": "figure2", "specs": [spec().as_dict()]}
            )

    def test_preset_submission_over_http(self, tmp_path):
        httpd, service = make_server(tmp_path / "served", port=0)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{httpd.server_address[1]}"
        try:
            request = urllib.request.Request(
                f"{base}/studies",
                data=json.dumps(
                    {"preset": "scaling", "n": "8", "seeds": 1}
                ).encode(),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with urllib.request.urlopen(request, timeout=30) as response:
                assert response.status == 201
                summary = json.loads(response.read())
            assert summary["name"] == "scaling"
            assert summary["total"] == 1
        finally:
            httpd.shutdown()
            httpd.server_close()
