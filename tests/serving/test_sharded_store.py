"""Tests for the sharded, concurrent-safe result store.

The load-bearing properties: appends are atomic single-write lines (so
concurrent shard writers can never interleave bytes), a torn trailing
record — a writer killed mid-append — is skipped-and-warned by readers
and truncated by the next appender, readers see the union of the
canonical file and every shard, and compaction folds shards back into
one canonical ``rows.jsonl`` without ever rewriting it.
"""

import json
import multiprocessing

import pytest

from repro.core.errors import ExperimentError
from repro.experiments.store import (
    ResultStore,
    append_jsonl_line,
    read_jsonl,
    repair_torn_tail,
)
from repro.serving import ShardedResultStore


def row(variant="v", n=8, seed=0, **extra):
    payload = {
        "variant": variant, "n": n, "seed_index": seed,
        "interactions": 100 + seed, "converged": True,
    }
    payload.update(extra)
    return payload


class TestAtomicAppend:
    def test_append_writes_one_complete_line(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        append_jsonl_line(path, row(seed=0))
        append_jsonl_line(path, row(seed=1), fsync=True)
        text = path.read_text()
        assert text.endswith("\n")
        lines = text.splitlines()
        assert len(lines) == 2
        assert json.loads(lines[1])["seed_index"] == 1

    def test_append_truncates_a_torn_tail_first(self, tmp_path):
        # A crashed writer's partial record must not corrupt the next
        # append into a malformed mid-file line: the partial (which is
        # deterministic to recompute) is truncated away.
        path = tmp_path / "rows.jsonl"
        append_jsonl_line(path, row(seed=0))
        with path.open("a") as handle:
            handle.write('{"variant": "v", "n": 8, "seed_ind')
        append_jsonl_line(path, row(seed=1))
        parsed = [json.loads(line) for line in path.read_text().splitlines()]
        assert [record["seed_index"] for record in parsed] == [0, 1]

    def test_repair_handles_headless_partial_file(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        path.write_text('{"no newline at a')
        assert repair_torn_tail(path)
        assert path.read_text() == ""
        assert not repair_torn_tail(path)

    def test_concurrent_appenders_never_interleave_bytes(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        context = multiprocessing.get_context("spawn")
        processes = [
            context.Process(target=_append_many, args=(str(path), writer))
            for writer in range(4)
        ]
        for process in processes:
            process.start()
        for process in processes:
            process.join()
            assert process.exitcode == 0
        parsed = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(parsed) == 4 * 25
        seen = {(record["variant"], record["seed_index"]) for record in parsed}
        assert len(seen) == 4 * 25


class TestTornTailReads:
    def test_reader_skips_and_warns_on_torn_final_record(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        append_jsonl_line(path, row(seed=0))
        with path.open("a") as handle:
            handle.write('{"variant": "v", "n": 8, "se')
        with pytest.warns(UserWarning, match="torn trailing record"):
            rows = read_jsonl(path)
        assert [record["seed_index"] for record in rows] == [0]

    def test_truncated_mid_record_store_stays_resumable(self, tmp_path):
        # Regression for the satellite: truncate rows.jsonl mid-record
        # (killed writer) and assert load() returns the complete rows.
        store = ResultStore(tmp_path, "study", "feedc0ffee12")
        for seed in range(3):
            store.append(row(seed=seed))
        text = store.rows_path.read_text()
        store.rows_path.write_text(text[: len(text) - 17])  # cut into row 2
        with pytest.warns(UserWarning, match="torn trailing record"):
            rows = store.load()
        assert sorted(rows) == [("v", 8, 0), ("v", 8, 1)]

    def test_malformed_middle_line_still_raises(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        append_jsonl_line(path, row(seed=0))
        with path.open("a") as handle:
            handle.write("garbage\n")
        append_jsonl_line(path, row(seed=1))
        with pytest.raises(ExperimentError, match="corrupt row store"):
            read_jsonl(path)
        with pytest.warns(UserWarning, match="corrupt row store"):
            rows = read_jsonl(path, strict=False)
        assert len(rows) == 2


class TestShardUnion:
    def test_load_unions_canon_with_shards(self, tmp_path):
        canon = ResultStore(tmp_path, "study", "feedc0ffee12")
        canon.append(row(seed=0))
        a = ShardedResultStore(tmp_path, "study", "feedc0ffee12",
                               worker_id="wa")
        b = ShardedResultStore(tmp_path, "study", "feedc0ffee12",
                               worker_id="wb")
        a.append(row(seed=1))
        b.append(row(seed=2))
        # Duplicate of canon's cell in a shard: later (shard) copy wins,
        # which is invisible because duplicates are bit-identical.
        b.append(row(seed=0))
        assert sorted(canon.load()) == [("v", 8, 0), ("v", 8, 1), ("v", 8, 2)]
        assert sorted(a.load()) == sorted(b.load()) == sorted(canon.load())
        assert a.shard_path != b.shard_path
        assert len(canon.shard_paths()) == 2

    def test_sharded_append_never_touches_canon(self, tmp_path):
        shard = ShardedResultStore(tmp_path, "study", "feedc0ffee12")
        shard.append(row(seed=0))
        assert not shard.rows_path.exists()
        assert shard.shard_path.exists()

    def test_open_attaches_by_directory(self, tmp_path):
        store = ResultStore(tmp_path, "my-study", "feedc0ffee12")
        store.append(row(seed=0))
        reopened = ResultStore.open(store.directory)
        assert reopened.directory == store.directory
        assert sorted(reopened.load()) == [("v", 8, 0)]
        sharded = ShardedResultStore.open(store.directory, worker_id="w1")
        assert sharded.worker_id == "w1"
        with pytest.raises(ExperimentError):
            ResultStore.open(tmp_path / "noseparator")


class TestCompaction:
    def test_compact_folds_shards_into_canon(self, tmp_path):
        canon = ResultStore(tmp_path, "study", "feedc0ffee12")
        canon.append(row(seed=0))
        shard = ShardedResultStore(tmp_path, "study", "feedc0ffee12",
                                   worker_id="wa")
        shard.append(row(seed=1))
        shard.append(row(seed=0))  # duplicate of canon: not re-appended
        before = canon.load()
        assert canon.compact() == 1
        assert canon.shard_paths() == []
        assert not canon.shards_directory.exists()
        lines = canon.rows_path.read_text().splitlines()
        assert len(lines) == 2  # the duplicate collapsed
        assert canon.load() == before
        assert canon.compact() == 0  # idempotent

    def test_compact_without_shards_is_a_noop(self, tmp_path):
        store = ResultStore(tmp_path, "study", "feedc0ffee12")
        assert store.compact() == 0


def _append_many(path, writer):
    for index in range(25):
        append_jsonl_line(
            path, row(variant=f"w{writer}", seed=index), fsync=(index % 5 == 0)
        )
