"""Tests for the file-based job queue and its lease protocol.

Jobs are idempotent wrappers around planner work units, keyed by cell
identity (so re-submission dedupes); claims are atomic exclusive file
creates; a lease without heartbeats goes stale and can be reclaimed; and
completion is defined by the store's cell keys, never by queue state.
"""

import os
import time

import pytest

from repro.experiments.study import ExperimentSpec, plan_units
from repro.serving.queue import JobQueue, job_for_unit


def spec(**overrides):
    defaults = dict(
        variant="sr",
        protocol="stable-ranking",
        n_values=(8,),
        seeds=3,
        max_interactions_factor=2000.0,
    )
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


def units_for(the_spec, known=()):
    return plan_units([the_spec], known)


class TestJobIdentity:
    def test_job_wraps_unit_and_lists_cell_keys(self):
        the_spec = spec()
        units = units_for(the_spec)
        jobs = [job_for_unit(unit) for unit in units]
        keys = [key for job in jobs for key in job.cell_keys]
        assert sorted(keys) == [("sr", 8, 0), ("sr", 8, 1), ("sr", 8, 2)]
        for job, unit in zip(jobs, units):
            assert job.unit == unit

    def test_id_ignores_matrix_extent(self):
        # The same cell reached through different matrix extents is the
        # same job: extending a study re-plans without duplicating work.
        narrow = units_for(spec(seeds=1))
        wide = units_for(spec(seeds=4), known=[("sr", 8, 1), ("sr", 8, 2),
                                               ("sr", 8, 3)])
        assert job_for_unit(narrow[0]).id == job_for_unit(wide[0]).id

    def test_id_tracks_trajectory_relevant_fields(self):
        a = job_for_unit(units_for(spec())[0])
        b = job_for_unit(units_for(spec(random_state=7))[0])
        assert a.id != b.id

    def test_round_trip(self):
        job = job_for_unit(units_for(spec())[0])
        assert type(job).from_dict(job.as_dict()) == job


class TestQueue:
    def test_enqueue_dedupes_by_job_id(self, tmp_path):
        queue = JobQueue(tmp_path)
        units = units_for(spec())
        assert len(queue.enqueue_units(units)) == 3
        assert queue.enqueue_units(units) == []
        assert len(queue.jobs()) == 3

    def test_pending_is_defined_by_the_completed_set(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.enqueue_units(units_for(spec()))
        assert len(queue.pending([])) == 3
        assert len(queue.pending([("sr", 8, 0), ("sr", 8, 2)])) == 1
        done = [("sr", 8, 0), ("sr", 8, 1), ("sr", 8, 2)]
        assert queue.pending(done) == []
        assert queue.stats(done) == {
            "jobs": 3, "pending": 0, "active": 0, "stale": 0,
        }

    def test_batch_jobs_are_indivisible(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.enqueue_units(units_for(spec(seeds=8)))
        jobs = queue.jobs()
        assert [job.kind for job in jobs] == ["batch"]
        assert jobs[0].seed_indices == tuple(range(8))
        # One cell persisted does not complete the batch job.
        assert len(queue.pending([("sr", 8, 3)])) == 1


class TestLeases:
    def test_claim_is_exclusive(self, tmp_path):
        queue = JobQueue(tmp_path, lease_timeout=60.0)
        (job,) = queue.enqueue_units(units_for(spec(seeds=1)))
        lease = queue.claim(job, "worker-a")
        assert lease is not None
        assert queue.lease_state(job) == "active"
        assert queue.claim(job, "worker-b") is None
        lease.release()
        assert queue.lease_state(job) == "free"
        assert queue.claim(job, "worker-b") is not None

    def test_stale_lease_is_reclaimed(self, tmp_path):
        queue = JobQueue(tmp_path, lease_timeout=0.2)
        (job,) = queue.enqueue_units(units_for(spec(seeds=1)))
        lease = queue.claim(job, "crashed-worker")
        assert queue.claim(job, "worker-b") is None  # still fresh
        stale = time.time() - 5.0
        os.utime(lease.path, (stale, stale))
        assert queue.lease_state(job) == "stale"
        reclaimed = queue.claim(job, "worker-b")
        assert reclaimed is not None
        assert reclaimed.worker_id == "worker-b"
        assert queue.lease_state(job) == "active"

    def test_heartbeat_keeps_a_lease_fresh(self, tmp_path):
        queue = JobQueue(tmp_path, lease_timeout=0.3)
        (job,) = queue.enqueue_units(units_for(spec(seeds=1)))
        lease = queue.claim(job, "worker-a")
        deadline = time.time() + 0.6
        while time.time() < deadline:
            lease.heartbeat()
            time.sleep(0.05)
        assert queue.lease_state(job) == "active"

    def test_stats_reports_lease_states(self, tmp_path):
        queue = JobQueue(tmp_path, lease_timeout=0.2)
        jobs = queue.enqueue_units(units_for(spec(seeds=3)))
        queue.claim(jobs[0], "a")
        stale_lease = queue.claim(jobs[1], "b")
        stale = time.time() - 5.0
        os.utime(stale_lease.path, (stale, stale))
        assert queue.stats([]) == {
            "jobs": 3, "pending": 3, "active": 1, "stale": 1,
        }

    def test_lease_timeout_must_be_positive(self, tmp_path):
        from repro.core.errors import ExperimentError

        with pytest.raises(ExperimentError):
            JobQueue(tmp_path, lease_timeout=0.0)
