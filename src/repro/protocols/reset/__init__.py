"""Reset propagation sub-protocol (Burman et al. [20])."""

from .propagate_reset import PropagateReset, PropagateResetProtocol, default_reset_depths

__all__ = ["PropagateReset", "PropagateResetProtocol", "default_reset_depths"]
