"""The ``PropagateReset`` sub-protocol (Burman et al. [20], Section V-A).

``PropagateReset`` restarts the whole population when some agent detects an
error.  Each agent carries two counters:

* ``resetCount ∈ [0, R_max]`` — while positive, the agent is *propagating*
  the reset: it infects every computing agent it meets (turning it into a
  propagating agent as well) and decrements its own counter, so the reset
  epidemic dies out after depth ``R_max``.
* ``delayCount ∈ [0, D_max]`` — once ``resetCount`` reaches 0 the agent is
  *dormant* and waits out ``delayCount`` interactions before it restarts the
  computation (re-entering the leader-election protocol).  The delay gives
  slower agents time to be reached by the reset and lets the synthetic coins
  warm up (Lemma 9 / Lemma 28).

The synthetic ``coin`` is the only variable that survives a reset.

The class is used by :class:`~repro.protocols.ranking.stable_ranking.StableRanking`
(Protocol 3, line 1) and can also be exercised standalone through
:class:`PropagateResetProtocol`.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

import numpy as np

from ...core.configuration import Configuration
from ...core.errors import ProtocolError
from ...core.protocol import PopulationProtocol, TransitionResult
from ...core.state import AgentState

__all__ = ["PropagateReset", "PropagateResetProtocol", "default_reset_depths"]

#: Callback that re-initializes an agent after its dormancy expires.  It must
#: preserve the agent's coin (the caller guarantees the coin is already set).
RestartCallback = Callable[[AgentState], None]


def default_reset_depths(n: int, r_scale: float = 3.0, d_scale: float = 8.0) -> tuple[int, int]:
    """Return default ``(R_max, D_max)`` values, both ``Θ(log n)``.

    Lemma 27 uses ``R_max = 60·ln n``; that constant is tuned for the w.h.p.
    statements of the analysis and makes small-population simulations
    needlessly slow, so we default to smaller logarithmic multiples and let
    experiments override them.  ``D_max`` must dominate ``R_max`` plus the
    coin warm-up, hence the larger scale.
    """
    if n < 2:
        raise ProtocolError(f"population size must be at least 2, got {n}")
    log_n = max(math.log(n), 1.0)
    r_max = max(2, int(math.ceil(r_scale * log_n)))
    d_max = max(r_max + 2, int(math.ceil(d_scale * log_n)))
    return r_max, d_max


class PropagateReset:
    """Reset propagation rules operating on :class:`AgentState` pairs.

    Parameters
    ----------
    r_max / d_max:
        Maximum values of ``resetCount`` and ``delayCount``.
    restart:
        Called on an agent whose dormancy has just expired; it must install
        the initial state of the follow-up computation (leader election) while
        keeping the coin.
    """

    def __init__(self, r_max: int, d_max: int, restart: RestartCallback):
        if r_max < 1:
            raise ProtocolError(f"R_max must be positive, got {r_max}")
        if d_max < 1:
            raise ProtocolError(f"D_max must be positive, got {d_max}")
        self._r_max = r_max
        self._d_max = d_max
        self._restart = restart
        self._triggered = 0

    @property
    def r_max(self) -> int:
        """Maximum reset-propagation depth ``R_max``."""
        return self._r_max

    @property
    def d_max(self) -> int:
        """Maximum dormancy ``D_max``."""
        return self._d_max

    @property
    def triggered_count(self) -> int:
        """Number of times :meth:`trigger` has been called (diagnostics)."""
        return self._triggered

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def trigger(self, agent: AgentState) -> None:
        """``TRIGGER RESET``: make ``agent`` a triggered (propagating) agent.

        All variables except the coin are forgotten; a missing coin is
        initialized to 0, exactly as described in Section V-A.
        """
        coin = agent.coin if agent.coin is not None else 0
        agent.clear()
        agent.coin = coin
        agent.reset_count = self._r_max
        agent.delay_count = self._d_max
        self._triggered += 1

    def applies(self, u: AgentState, v: AgentState) -> bool:
        """Whether this interaction is handled by ``PropagateReset`` at all."""
        return u.in_reset or v.in_reset

    def apply(self, u: AgentState, v: AgentState) -> bool:
        """Apply the reset rules to an interacting pair; return whether a
        state changed.

        The rules are symmetric in the two agents (the paper does not
        distinguish initiator and responder here).
        """
        if not self.applies(u, v):
            return False

        changed = False
        u_propagating = u.is_propagating
        v_propagating = v.is_propagating

        if u_propagating and v_propagating:
            # Two propagating agents adopt the maximum counter minus one
            # (unless both are already 0, which cannot happen here because
            # ``is_propagating`` requires a positive counter).
            new_count = max(u.reset_count, v.reset_count) - 1
            u.reset_count = new_count
            v.reset_count = new_count
            changed = True
        elif u_propagating or v_propagating:
            propagating, other = (u, v) if u_propagating else (v, u)
            propagating.reset_count -= 1
            changed = True
            if not other.in_reset:
                # A computing agent is absorbed into the reset epidemic.
                self._infect(other, propagating.reset_count)
            # Propagating-meets-dormant only decrements the propagating agent;
            # the dormant agent's own decrement is handled below.

        # Every dormant agent decrements its delay counter on any interaction.
        for agent in (u, v):
            if agent.is_dormant:
                agent.delay_count -= 1
                changed = True
                if agent.delay_count == 0:
                    self._wake(agent)
        return changed

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _infect(self, agent: AgentState, reset_count: int) -> None:
        """Turn a computing agent into a propagating one."""
        coin = agent.coin if agent.coin is not None else 0
        agent.clear()
        agent.coin = coin
        agent.reset_count = reset_count
        agent.delay_count = self._d_max
        if agent.reset_count == 0 and agent.delay_count == 0:
            self._wake(agent)

    def _wake(self, agent: AgentState) -> None:
        """Dormancy expired: forget the reset state and restart computing."""
        coin = agent.coin if agent.coin is not None else 0
        agent.clear()
        agent.coin = coin
        self._restart(agent)


class PropagateResetProtocol(PopulationProtocol[AgentState]):
    """Standalone wrapper used to test ``PropagateReset`` in isolation.

    Agents start as blank "computing" agents (only a coin); one of them is
    triggered in :meth:`initial_configuration`.  Restarted agents get
    ``leader_done = 0`` so convergence ("everybody restarted") is observable.
    """

    name = "propagate-reset"

    def __init__(self, n: int, r_max: Optional[int] = None, d_max: Optional[int] = None):
        super().__init__(n)
        default_r, default_d = default_reset_depths(n)
        self._reset = PropagateReset(
            r_max if r_max is not None else default_r,
            d_max if d_max is not None else default_d,
            restart=self._restart,
        )

    @staticmethod
    def _restart(agent: AgentState) -> None:
        agent.leader_done = 0
        agent.is_leader = 0

    @property
    def reset(self) -> PropagateReset:
        """The underlying reset rules (exposed for tests)."""
        return self._reset

    def initial_state(self) -> AgentState:
        return AgentState(coin=0)

    def initial_configuration(self) -> Configuration[AgentState]:
        configuration = super().initial_configuration()
        self._reset.trigger(configuration[0])
        return configuration

    def transition(
        self,
        initiator: AgentState,
        responder: AgentState,
        rng: np.random.Generator,
    ) -> TransitionResult:
        changed = self._reset.apply(initiator, responder)
        responder.toggle_coin()
        return TransitionResult(changed=changed)

    def has_converged(self, configuration: Configuration[AgentState]) -> bool:
        """Converged once every agent has been reset and restarted."""
        return all(
            state.leader_done is not None and not state.in_reset
            for state in configuration.states
        )
