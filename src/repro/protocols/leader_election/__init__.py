"""Leader-election sub-protocols used by the ranking protocols."""

from .fast_leader_election import (
    FastLeaderElection,
    FastLeaderElectionProtocol,
    default_l_max,
)
from .gs_leader_election import GSLeaderElection, GSLeaderElectionProtocol
from .interfaces import LeaderElectionModule

__all__ = [
    "FastLeaderElection",
    "FastLeaderElectionProtocol",
    "GSLeaderElection",
    "GSLeaderElectionProtocol",
    "LeaderElectionModule",
    "default_l_max",
]
