"""``FastLeaderElection`` (Protocol 5 / Section C of the paper).

A deliberately simple leader-election protocol used inside the
self-stabilizing ``StableRanking``: an agent declares itself leader after
observing ``⌈log n⌉ + 1`` partner coins showing heads in a row; the first
tails makes it give up (``leaderDone = 1`` without leadership).  With
constant probability exactly one agent wins the lottery (Lemma 30).  Two
safety valves make the protocol self-stabilizing when composed with
``PropagateReset``:

* an interaction countdown ``LECount`` (initialized to ``L_max``) triggers a
  reset when it expires before the agent has entered the main protocol —
  this covers the "no leader elected" outcome; and
* the elected leader only transitions into the main (ranking) protocol if it
  was elected "fast enough" (``LECount ≥ L_max / 2``), otherwise it also
  times out — this covers stale leader-election state left over from an
  adversarial initialization.

Multiple elected leaders are *not* detected here; they produce duplicate
ranks which ``Ranking+`` detects and turns into a reset (Lemma 32, case 2).

The module operates on :class:`~repro.core.state.AgentState` and delegates
"transition to the main protocol" and "trigger a reset" to callbacks so it
can be embedded in ``StableRanking`` or exercised standalone.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

import numpy as np

from ...core.configuration import Configuration
from ...core.errors import ProtocolError
from ...core.protocol import PopulationProtocol, TransitionResult
from ...core.state import AgentState
from .interfaces import LeaderElectionModule

__all__ = ["FastLeaderElection", "FastLeaderElectionProtocol", "default_l_max"]


def default_l_max(n: int, l_scale: float = 16.0) -> int:
    """Default ``L_max = Θ(log n)`` interaction budget.

    The value must comfortably exceed (a) the ``⌈log n⌉ + 1`` activations the
    winning agent needs, doubled because of the ``LECount ≥ L_max / 2``
    fast-enough rule, and (b) the additional ``O(log n)`` activations agents
    spend waiting for the start-of-ranking epidemic to reach them.
    """
    if n < 2:
        raise ProtocolError(f"population size must be at least 2, got {n}")
    return max(8, int(math.ceil(l_scale * math.log2(n))))


class FastLeaderElection(LeaderElectionModule):
    """The lottery-based leader election of Protocol 5.

    Parameters
    ----------
    n:
        Population size.
    l_max:
        The ``L_max`` interaction countdown (default :func:`default_l_max`).
    on_become_waiting:
        Called on the agent that was elected fast enough; must install the
        main-protocol waiting state (``waitCount``/``aliveCount``).
    on_trigger_reset:
        Called on an agent whose countdown expired.
    """

    def __init__(
        self,
        n: int,
        l_max: Optional[int] = None,
        on_become_waiting: Optional[Callable[[AgentState], None]] = None,
        on_trigger_reset: Optional[Callable[[AgentState], None]] = None,
    ):
        if n < 2:
            raise ProtocolError(f"population size must be at least 2, got {n}")
        self._n = n
        self._l_max = l_max if l_max is not None else default_l_max(n)
        if self._l_max < 4:
            raise ProtocolError(f"L_max must be at least 4, got {self._l_max}")
        self._coin_count_init = max(1, int(math.ceil(math.log2(n))))
        self._on_become_waiting = on_become_waiting or self._default_become_waiting
        self._on_trigger_reset = on_trigger_reset or self._default_trigger_reset
        self._resets_triggered = 0

    # ------------------------------------------------------------------
    # Parameters
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Population size."""
        return self._n

    @property
    def l_max(self) -> int:
        """The ``L_max`` countdown value."""
        return self._l_max

    @property
    def coin_count_init(self) -> int:
        """Initial ``coinCount`` (number of heads required is this plus one)."""
        return self._coin_count_init

    @property
    def resets_triggered(self) -> int:
        """Number of resets this module has triggered (for diagnostics)."""
        return self._resets_triggered

    # ------------------------------------------------------------------
    # Default callbacks (used by the standalone wrapper)
    # ------------------------------------------------------------------
    @staticmethod
    def _default_become_waiting(agent: AgentState) -> None:
        agent.wait_count = 1

    @staticmethod
    def _default_trigger_reset(agent: AgentState) -> None:
        # Standalone mode has no reset sub-protocol; simply restart the agent.
        agent.clear(keep_coin=True)

    # ------------------------------------------------------------------
    # LeaderElectionModule interface
    # ------------------------------------------------------------------
    def init_state(self, agent: AgentState) -> None:
        """Install the initial state ``q₀`` of Protocol 5, keeping the coin."""
        coin = agent.coin if agent.coin is not None else 0
        agent.clear()
        agent.coin = coin
        agent.le_count = self._l_max
        agent.coin_count = self._coin_count_init
        agent.leader_done = 0
        agent.is_leader = 0

    def apply(
        self, initiator: AgentState, responder: AgentState, rng: np.random.Generator
    ) -> bool:
        """Execute Protocol 5 for the initiator, observing the responder's coin.

        Returns ``True``; every invocation changes the initiator's countdown.
        """
        u, v = initiator, responder
        if u.le_count is None:
            raise ProtocolError("FastLeaderElection.apply on an agent without LECount")

        # Leader-election phase (lines 1-8).
        u.le_count = max(0, u.le_count - 1)
        if u.leader_done != 1:
            observed = v.coin if v.coin is not None else 0
            if observed == 0:
                u.leader_done = 1  # u will not be leader
            elif u.coin_count > 0:
                u.coin_count -= 1  # u counts coins with value 1
            else:
                u.is_leader = 1  # u observed enough heads in a row
                u.leader_done = 1

        # Transition to the main phase (lines 9-15).
        if u.is_leader == 1 and u.le_count >= self._l_max / 2:
            u.clear_leader_election()
            self._on_become_waiting(u)
            return True
        if u.le_count == 0:
            u.clear_leader_election()
            self._resets_triggered += 1
            self._on_trigger_reset(u)
        return True


class FastLeaderElectionProtocol(PopulationProtocol[AgentState]):
    """Standalone wrapper for :class:`FastLeaderElection`.

    Each interaction runs Protocol 5 for the initiator (observing the
    responder's coin) and then toggles the responder's coin, mirroring
    Protocol 3's structure.  Convergence: exactly one agent has left leader
    election as a waiting agent, and it was the only one declared leader.
    An expired countdown simply restarts the agent (the standalone wrapper
    has no reset sub-protocol), so the protocol retries until it succeeds.
    """

    name = "fast-leader-election"

    def __init__(self, n: int, l_max: Optional[int] = None):
        super().__init__(n)
        self._module = FastLeaderElection(
            n,
            l_max=l_max,
            on_become_waiting=self._become_waiting,
            on_trigger_reset=self._restart,
        )

    def _become_waiting(self, agent: AgentState) -> None:
        agent.wait_count = 1

    def _restart(self, agent: AgentState) -> None:
        self._module.init_state(agent)

    @property
    def module(self) -> FastLeaderElection:
        """The wrapped :class:`FastLeaderElection` instance."""
        return self._module

    def initial_state(self) -> AgentState:
        agent = AgentState(coin=0)
        self._module.init_state(agent)
        return agent

    def transition(
        self,
        initiator: AgentState,
        responder: AgentState,
        rng: np.random.Generator,
    ) -> TransitionResult:
        changed = False
        in_le = (initiator.leader_done is not None, responder.leader_done is not None)
        if all(in_le):
            changed = self._module.apply(initiator, responder, rng)
        elif any(in_le):
            # Mirror Protocol 3 lines 4-6: a leader-electing agent meeting an
            # agent that already entered the main protocol joins it as a
            # phase agent, which spreads "the ranking has started" by epidemic.
            le_agent = initiator if in_le[0] else responder
            le_agent.clear_leader_election()
            le_agent.phase = 1
            changed = True
        responder.toggle_coin()
        return TransitionResult(changed=changed)

    def has_converged(self, configuration: Configuration[AgentState]) -> bool:
        """Exactly one waiting agent and nobody left in leader election."""
        waiting = configuration.count_where(lambda state: state.wait_count is not None)
        still_electing = configuration.count_where(
            lambda state: state.leader_done is not None
        )
        return waiting == 1 and still_electing == 0

    def waiting_count(self, configuration: Configuration[AgentState]) -> int:
        """Number of agents that have transitioned to the waiting state."""
        return configuration.count_where(lambda state: state.wait_count is not None)
