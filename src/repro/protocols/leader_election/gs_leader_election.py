"""Leader-election substrate for ``SpaceEfficientRanking``.

The paper plugs in the protocol of Gasieniec and Stachowiak [30], which
elects a unique leader within ``O(n log² n)`` interactions w.h.p. using
``O(log log n)`` states, and assumes (following [15]) that it exposes a
``leaderDone`` flag.  Reproducing [30] verbatim is outside the scope of this
paper's contribution — it is used strictly as a black box — so this module
provides an interface- and time-faithful substitute (see DESIGN.md,
substitution 1):

* On its first activation every agent draws a random *tag* uniformly from a
  space of size ``n⁴`` (so all tags are distinct w.h.p.).
* Agents propagate the maximum tag they have seen (a one-way epidemic on the
  maximum); an agent keeps ``isLeader = 1`` exactly as long as it has never
  seen a tag larger than its own.
* Every participating agent decrements a countdown of ``Θ(log² n)`` per
  activation; when the countdown expires it sets ``leaderDone = 1``.

After ``O(n log² n)`` interactions the maximum tag has reached every agent
w.h.p., so exactly one agent ends up with ``isLeader = leaderDone = 1`` —
the contract of Lemma 15.  The substitute uses more states than [30]
(``Θ(n⁴)`` tag values instead of ``O(log log n)`` states); the state-space
accounting in :mod:`repro.analysis.state_space` therefore reports both the
as-built count and the paper's count with [30] as a black box.
"""

from __future__ import annotations

import math

import numpy as np

from ...core.configuration import Configuration
from ...core.errors import ProtocolError
from ...core.protocol import PopulationProtocol, TransitionResult
from ...core.state import AgentState
from .interfaces import LeaderElectionModule

__all__ = ["GSLeaderElection", "GSLeaderElectionProtocol"]


class GSLeaderElection(LeaderElectionModule):
    """Maximum-tag leader election with a done-countdown.

    Parameters
    ----------
    n:
        Population size.
    done_constant:
        The countdown is ``⌈done_constant · log₂(n)²⌉`` activations; the
        default leaves a comfortable w.h.p. margin over the ``O(log n)``
        activations needed for the maximum-tag epidemic to finish.
    """

    def __init__(self, n: int, done_constant: float = 3.0):
        if n < 2:
            raise ProtocolError(f"population size must be at least 2, got {n}")
        if done_constant <= 0:
            raise ProtocolError(f"done_constant must be positive, got {done_constant}")
        self._n = n
        log_n = max(math.log2(n), 1.0)
        self._countdown = max(4, int(math.ceil(done_constant * log_n * log_n)))
        self._tag_space = max(16, n ** 4)

    @property
    def n(self) -> int:
        """Population size."""
        return self._n

    @property
    def countdown(self) -> int:
        """Initial value of the per-agent done-countdown (``Θ(log² n)``)."""
        return self._countdown

    @property
    def tag_space(self) -> int:
        """Size of the random tag space (``n⁴``)."""
        return self._tag_space

    # ------------------------------------------------------------------
    # LeaderElectionModule interface
    # ------------------------------------------------------------------
    def init_state(self, agent: AgentState) -> None:
        """Install the initial leader-election variables (``q₀``)."""
        agent.is_leader = 1
        agent.leader_done = 0
        agent.le_level = None  # tag not drawn yet
        agent.le_count = self._countdown

    def apply(
        self, initiator: AgentState, responder: AgentState, rng: np.random.Generator
    ) -> bool:
        """One leader-election interaction between two participating agents."""
        self._ensure_tag(initiator, rng)
        self._ensure_tag(responder, rng)

        changed = False
        maximum = max(initiator.le_level, responder.le_level)
        for agent in (initiator, responder):
            if agent.le_level < maximum:
                agent.le_level = maximum
                if agent.is_leader == 1:
                    agent.is_leader = 0
                changed = True
            if agent.leader_done == 0:
                agent.le_count -= 1
                changed = True
                if agent.le_count <= 0:
                    agent.leader_done = 1
        return changed

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _ensure_tag(self, agent: AgentState, rng: np.random.Generator) -> None:
        if agent.le_level is None:
            agent.le_level = int(rng.integers(0, self._tag_space))


class GSLeaderElectionProtocol(PopulationProtocol[AgentState]):
    """Standalone wrapper running only the leader-election substrate.

    Convergence: every agent is done and exactly one agent believes it is the
    leader.  Used by unit tests and by the leader-election example.
    """

    name = "gs-leader-election"

    def __init__(self, n: int, done_constant: float = 3.0):
        super().__init__(n)
        self._module = GSLeaderElection(n, done_constant=done_constant)

    @property
    def module(self) -> GSLeaderElection:
        """The wrapped :class:`GSLeaderElection` instance."""
        return self._module

    def initial_state(self) -> AgentState:
        agent = AgentState()
        self._module.init_state(agent)
        return agent

    def transition(
        self,
        initiator: AgentState,
        responder: AgentState,
        rng: np.random.Generator,
    ) -> TransitionResult:
        if self._module.participates(initiator) and self._module.participates(responder):
            changed = self._module.apply(initiator, responder, rng)
            return TransitionResult(changed=changed)
        return TransitionResult(changed=False)

    def consumes_randomness(self) -> bool:
        """``True``: agents draw their lottery tags from the rng."""
        return True

    def has_converged(self, configuration: Configuration[AgentState]) -> bool:
        leaders = 0
        for state in configuration.states:
            if state.leader_done != 1:
                return False
            if state.is_leader == 1:
                leaders += 1
        return leaders == 1

    def leader_count(self, configuration: Configuration[AgentState]) -> int:
        """Number of agents currently believing they are the leader."""
        return sum(1 for state in configuration.states if state.is_leader == 1)
