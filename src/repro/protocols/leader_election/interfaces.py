"""Interface shared by the leader-election sub-protocols.

The ranking protocols use leader election as a black box with a small
contract (cf. Lemma 15): agents carry the flags ``isLeader`` and
``leaderDone``; once an agent has ``isLeader = leaderDone = 1`` it considers
itself the unique elected leader, and w.h.p. no other agent ever reaches that
combination.  Both implementations in this package
(:class:`~repro.protocols.leader_election.gs_leader_election.GSLeaderElection`
and
:class:`~repro.protocols.leader_election.fast_leader_election.FastLeaderElection`)
satisfy this contract and expose the same three methods so the ranking
protocols can treat them interchangeably.
"""

from __future__ import annotations

import abc

import numpy as np

from ...core.state import AgentState

__all__ = ["LeaderElectionModule"]


class LeaderElectionModule(abc.ABC):
    """Contract implemented by leader-election sub-protocols."""

    @abc.abstractmethod
    def init_state(self, agent: AgentState) -> None:
        """Install the sub-protocol's initial variables on ``agent``.

        The agent's coin (if any) must be preserved.
        """

    @abc.abstractmethod
    def apply(
        self, initiator: AgentState, responder: AgentState, rng: np.random.Generator
    ) -> bool:
        """Run one interaction of the sub-protocol; return whether state changed.

        Only called when both agents are still executing leader election
        (``leader_done`` is defined on both).
        """

    @staticmethod
    def is_elected(agent: AgentState) -> bool:
        """Whether ``agent`` considers itself the elected leader."""
        return agent.is_leader == 1 and agent.leader_done == 1

    @staticmethod
    def participates(agent: AgentState) -> bool:
        """Whether ``agent`` is still executing leader election (``qLE ≠ ⊥``)."""
        return agent.leader_done is not None
