"""The paper's ranking protocols (core contribution)."""

from .aggregate_space_efficient import AggregateSpaceEfficientRanking
from .phases import PhaseSchedule, wait_count_init
from .ranking_plus import RankingPlus, RankingPlusOutcome
from .rules import RankingOutcome, RankingRules
from .space_efficient import SpaceEfficientRanking
from .stable_ranking import StableRanking
from .states import (
    in_main_state,
    is_initial_ranking_configuration,
    is_initial_waiting_configuration,
    is_productive_pair,
    is_start_ranking_configuration,
)

__all__ = [
    "AggregateSpaceEfficientRanking",
    "PhaseSchedule",
    "RankingOutcome",
    "RankingPlus",
    "RankingPlusOutcome",
    "RankingRules",
    "SpaceEfficientRanking",
    "StableRanking",
    "in_main_state",
    "is_initial_ranking_configuration",
    "is_initial_waiting_configuration",
    "is_productive_pair",
    "is_start_ranking_configuration",
    "wait_count_init",
]
