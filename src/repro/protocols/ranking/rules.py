"""The ``Ranking`` transition rules (Protocol 2).

Protocol 2 is the heart of both ranking protocols: given a unique (unaware)
leader it assigns ranks phase by phase.  It is invoked by
``SpaceEfficientRanking`` for every interaction of two non-leader-electing
agents, and by ``Ranking+`` whenever the responder's coin shows 1.

The implementation follows the pseudocode line by line.  One detail the
pseudocode leaves to the state-space definition: an agent that becomes
ranked holds *only* its rank, so the auxiliary variables of the
self-stabilizing protocol (coin, ``aliveCount``) are cleared on every
transition into a ranked state.  This is a no-op for the non-self-stabilizing
protocol, whose agents never carry those variables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ...core.state import AgentState
from .phases import PhaseSchedule

__all__ = ["RankingRules", "RankingOutcome"]


@dataclass(slots=True)
class RankingOutcome:
    """What a single invocation of Protocol 2 did.

    Attributes
    ----------
    changed:
        Whether any state changed.
    rank_assigned:
        The rank newly assigned to the responder, if any.
    initiator_became_waiting:
        Whether the initiator transitioned from unaware leader to waiting
        (end of a non-final phase) — ``Ranking+`` needs this to install the
        waiting agent's coin and liveness counter (Protocol 4, lines 17–18).
    initiator_became_ranked:
        Whether the initiator transitioned from waiting to rank 1.
    phase_advanced:
        Whether a phase counter increased (responder bumped or epidemic).
    """

    changed: bool = False
    rank_assigned: Optional[int] = None
    initiator_became_waiting: bool = False
    initiator_became_ranked: bool = False
    phase_advanced: bool = False


class RankingRules:
    """Protocol 2, parameterized by the phase schedule and ``c_wait``.

    Parameters
    ----------
    schedule:
        The :class:`PhaseSchedule` for the population size.
    wait_init:
        The value ``⌈c_wait · log n⌉`` loaded into the wait counter at every
        phase transition.
    """

    def __init__(self, schedule: PhaseSchedule, wait_init: int):
        self._schedule = schedule
        self._wait_init = wait_init

    @property
    def schedule(self) -> PhaseSchedule:
        """The phase schedule in use."""
        return self._schedule

    @property
    def wait_init(self) -> int:
        """Initial value of the leader's wait counter."""
        return self._wait_init

    def apply(self, initiator: AgentState, responder: AgentState) -> RankingOutcome:
        """Execute ``Ranking(u, v)`` with ``u = initiator``, ``v = responder``."""
        u, v = initiator, responder
        outcome = RankingOutcome()

        # Line 1: if v is not a phase agent (it is ranked, waiting, …), do nothing.
        if v.phase is None:
            return outcome

        schedule = self._schedule
        if u.rank is not None:
            k = v.phase
            if k <= schedule.phase_count:
                boundary = schedule.ranks_per_phase(k)  # f_k - f_{k+1}
                if 1 <= u.rank <= boundary:
                    # Lines 4-5: u is the unaware leader for phase k and
                    # assigns the next rank of the phase to v.
                    assigned = schedule.f(k + 1) + u.rank
                    v.phase = None
                    v.rank = assigned
                    v.coin = None
                    v.alive_count = None
                    outcome.changed = True
                    outcome.rank_assigned = assigned
                    if u.rank < boundary:
                        # Lines 6-7: phase not done, advance the leader's rank.
                        u.rank += 1
                    elif k < schedule.phase_count:
                        # Lines 8-9: end of a non-final phase, start waiting.
                        u.rank = None
                        u.wait_count = self._wait_init
                        outcome.initiator_became_waiting = True
                    # In the final phase the leader keeps its rank (which is
                    # 1 by this point in a correct execution) and the
                    # protocol becomes silent.
                elif u.rank == schedule.f(k) and k < schedule.phase_count:
                    # Lines 10-11: u holds the last rank of phase k, so v can
                    # safely conclude that phase k is finished.  (In a correct
                    # execution this never fires for the final phase; the
                    # guard keeps adversarial configurations of the
                    # self-stabilizing protocol inside the phase state space.)
                    v.phase = k + 1
                    outcome.changed = True
                    outcome.phase_advanced = True
            return outcome

        if u.phase is not None:
            # Lines 12-14: two phase agents adopt the more advanced phase.
            maximum = max(u.phase, v.phase)
            if u.phase != maximum or v.phase != maximum:
                u.phase = maximum
                v.phase = maximum
                outcome.changed = True
                outcome.phase_advanced = True
            return outcome

        if u.wait_count is not None:
            # Lines 15-19: the waiting leader counts down against phase agents
            # and eventually re-enters the ranking with rank 1.
            u.wait_count -= 1
            outcome.changed = True
            if u.wait_count == 0:
                u.wait_count = None
                u.rank = 1
                u.coin = None
                u.alive_count = None
                outcome.initiator_became_ranked = True
        return outcome
