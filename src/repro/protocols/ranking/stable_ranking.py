"""``StableRanking`` — the self-stabilizing ranking protocol (Theorem 2).

Protocol 3 composes three sub-protocols on a shared state space of
``n + O(log² n)`` states:

* :class:`~repro.protocols.reset.propagate_reset.PropagateReset` restarts the
  population whenever an error is detected (line 1);
* :class:`~repro.protocols.leader_election.fast_leader_election.FastLeaderElection`
  elects a leader with constant probability per attempt and times out into a
  reset otherwise (lines 2–3);
* :class:`~repro.protocols.ranking.ranking_plus.RankingPlus` assigns ranks and
  detects duplicate ranks, duplicate waiting agents and missing progress
  (lines 7–8).

A leader-electing agent meeting an agent that already executes the main
protocol joins it as a phase-1 agent (lines 4–6), and the responder's
synthetic coin is toggled at the end of every interaction (lines 9–10).

Starting from *any* configuration over the protocol's state space, the
population reaches the set of silent legal configurations (every agent holds
a unique rank, nothing else) within ``O(n² log n)`` interactions w.h.p.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ...core.configuration import Configuration
from ...core.protocol import RankingProtocol, TransitionResult
from ...core.state import AgentState
from ..leader_election.fast_leader_election import FastLeaderElection, default_l_max
from ..reset.propagate_reset import PropagateReset, default_reset_depths
from .phases import PhaseSchedule, wait_count_init
from .ranking_plus import RankingPlus
from .states import in_main_state

__all__ = ["StableRanking"]


class StableRanking(RankingProtocol[AgentState]):
    """The paper's silent self-stabilizing ranking protocol.

    Parameters
    ----------
    n:
        Population size (must be known exactly).
    c_wait:
        Wait-counter constant (the paper's simulations use 2).
    c_live:
        Liveness replenishment constant; the replenished value is
        ``⌈c_live · log₂ n⌉`` (the paper's simulations use 4).
    l_max:
        Maximum liveness / leader-election countdown ``L_max = Θ(log n)``.
    r_max / d_max:
        ``PropagateReset`` depths ``R_max`` and ``D_max`` (both ``Θ(log n)``).
    """

    name = "stable-ranking"

    def __init__(
        self,
        n: int,
        c_wait: float = 2.0,
        c_live: float = 4.0,
        l_max: Optional[int] = None,
        r_max: Optional[int] = None,
        d_max: Optional[int] = None,
    ):
        super().__init__(n)
        self._c_wait = c_wait
        self._c_live = c_live
        self._schedule = PhaseSchedule(n)
        self._wait_init = wait_count_init(n, c_wait)
        self._l_max = l_max if l_max is not None else default_l_max(n)
        self._alive_reset = max(1, int(math.ceil(c_live * math.log2(n))))
        if self._alive_reset > self._l_max:
            self._alive_reset = self._l_max

        default_r, default_d = default_reset_depths(n)
        self._reset = PropagateReset(
            r_max if r_max is not None else default_r,
            d_max if d_max is not None else default_d,
            restart=self._restart_leader_election,
        )
        self._leader_election = FastLeaderElection(
            n,
            l_max=self._l_max,
            on_become_waiting=self._become_waiting,
            on_trigger_reset=self._reset.trigger,
        )
        self._ranking_plus = RankingPlus(
            self._schedule,
            self._wait_init,
            alive_reset=self._alive_reset,
            l_max=self._l_max,
            trigger_reset=self._reset.trigger,
        )

    # ------------------------------------------------------------------
    # Sub-protocol wiring
    # ------------------------------------------------------------------
    def _restart_leader_election(self, agent: AgentState) -> None:
        """After dormancy, agents restart with ``FastLeaderElection``."""
        self._leader_election.init_state(agent)

    def _become_waiting(self, agent: AgentState) -> None:
        """Protocol 5, line 11: the elected leader enters the main protocol."""
        agent.wait_count = self._wait_init
        agent.alive_count = self._l_max
        if agent.coin is None:
            agent.coin = 0

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def schedule(self) -> PhaseSchedule:
        """The phase schedule ``f_k``."""
        return self._schedule

    @property
    def reset(self) -> PropagateReset:
        """The ``PropagateReset`` sub-protocol."""
        return self._reset

    @property
    def leader_election(self) -> FastLeaderElection:
        """The ``FastLeaderElection`` sub-protocol."""
        return self._leader_election

    @property
    def ranking_plus(self) -> RankingPlus:
        """The ``Ranking+`` sub-protocol."""
        return self._ranking_plus

    @property
    def wait_init(self) -> int:
        """The wait counter ``⌈c_wait log n⌉``."""
        return self._wait_init

    @property
    def l_max(self) -> int:
        """The countdown bound ``L_max``."""
        return self._l_max

    @property
    def alive_reset(self) -> int:
        """The liveness replenishment value ``⌈c_live log n⌉``."""
        return self._alive_reset

    # ------------------------------------------------------------------
    # PopulationProtocol interface
    # ------------------------------------------------------------------
    def initial_state(self) -> AgentState:
        """Designated fresh start: every agent begins in leader election."""
        agent = AgentState(coin=0)
        self._leader_election.init_state(agent)
        return agent

    def transition(
        self,
        initiator: AgentState,
        responder: AgentState,
        rng: np.random.Generator,
    ) -> TransitionResult:
        u, v = initiator, responder
        changed = False
        rank_assigned = None
        triggers_before = self._reset.triggered_count

        # Line 1: propagate resets and manage dormancy.
        if self._reset.applies(u, v):
            changed = self._reset.apply(u, v) or changed

        # Lines 2-3: both agents still electing a leader.
        if u.leader_done is not None and v.leader_done is not None:
            changed = self._leader_election.apply(u, v, rng) or changed

        # Lines 4-6: a leader-electing agent meets an agent already executing
        # the main protocol and joins it as a phase-1 agent.
        u_in_le = u.leader_done is not None
        v_in_le = v.leader_done is not None
        if u_in_le != v_in_le:
            le_agent, other = (u, v) if u_in_le else (v, u)
            if in_main_state(other):
                coin = le_agent.coin if le_agent.coin is not None else 0
                le_agent.clear()
                le_agent.coin = coin
                le_agent.phase = 1
                le_agent.alive_count = self._l_max
                changed = True

        # Lines 7-8: both agents hold main states — run Ranking+.
        if in_main_state(u) and in_main_state(v):
            outcome = self._ranking_plus.apply(u, v)
            changed = changed or outcome.changed
            rank_assigned = outcome.rank_assigned

        # Lines 9-10: toggle the responder's coin if it has one.
        if v.coin is not None:
            v.toggle_coin()
            changed = True

        return TransitionResult(
            changed=changed,
            rank_assigned=rank_assigned,
            reset_triggered=self._reset.triggered_count > triggers_before,
        )

    def has_converged(self, configuration: Configuration[AgentState]) -> bool:
        """Membership in the silent legal set: a clean, valid ranking.

        Beyond the rank permutation, every agent must hold *only* its rank —
        any leftover auxiliary variable (possible only in adversarial
        initializations) would allow further state changes.
        """
        if not configuration.is_valid_ranking():
            return False
        return all(self._holds_only_rank(state) for state in configuration.states)

    def state_converged(self, state: AgentState) -> bool:
        """Screen: convergence requires every agent to hold only its rank."""
        return self._holds_only_rank(state)

    @staticmethod
    def _holds_only_rank(state: AgentState) -> bool:
        return (
            state.rank is not None
            and state.phase is None
            and state.wait_count is None
            and state.coin is None
            and state.alive_count is None
            and not state.in_reset
            and not state.in_leader_election
        )

    # ------------------------------------------------------------------
    # State accounting (Theorem 2)
    # ------------------------------------------------------------------
    def overhead_states(self) -> int:
        """Number of states beyond the ``n`` rank states (``O(log² n)``).

        Protocol 3's non-rank states are pairs of a coin with either a reset
        state (``R_max · D_max`` combinations collapsed in the paper to
        ``Θ(log n) × Θ(log n)``), a leader-election state
        (``|Q_SLE| = Θ(log² n)``) or a main non-rank state
        (``aliveCount × (waitCount ⊎ phase)``).
        """
        reset_states = (self._reset.r_max + 1) * (self._reset.d_max + 1)
        le_states = self._l_max * self._leader_election.coin_count_init * 4
        main_states = self._l_max * (self._wait_init + self._schedule.phase_count)
        return 2 * (reset_states + le_states + main_states)

    def state_space_size(self) -> int:
        """Total states per the paper's accounting (``n + O(log² n)``)."""
        return self.n + self.overhead_states()

    def describe(self) -> dict:
        info = super().describe()
        info.update(
            c_wait=self._c_wait,
            c_live=self._c_live,
            l_max=self._l_max,
            wait_init=self._wait_init,
            alive_reset=self._alive_reset,
            r_max=self._reset.r_max,
            d_max=self._reset.d_max,
        )
        return info

    def consumes_randomness(self) -> bool:
        """Transitions are deterministic (synthetic coins are togglings)."""
        return False

    def codec_fields(self):
        from ...core.state import AGENT_STATE_FIELDS

        return AGENT_STATE_FIELDS

    def vectorized_kernel(self, codec):
        """The mid-run SoA fast path (coin toggles, liveness counters).

        See :mod:`repro.protocols.ranking.soa_kernel`; the kernel is exact
        and conservative, handing every base-state-writing pair back to
        the array engine's ordered walk.
        """
        from .soa_kernel import StableRankingKernel

        return StableRankingKernel(self)
