"""Exact event-driven simulation of ``SpaceEfficientRanking``.

The paper's Figure 3 measures, for populations up to ``n = 8192`` and 100
repetitions per size, how many interactions it takes to rank constant
fractions of the agents.  Simulating each of the ``Θ(n²)`` interactions
individually in Python is out of reach at that scale, but almost all of those
interactions are no-ops: the protocol only changes state when the (unaware or
waiting) leader, a lagging phase agent, or a still-unconverted
leader-electing agent is involved.

:class:`AggregateSpaceEfficientRanking` therefore simulates the *same
stochastic process* on group counts (see
:class:`~repro.core.aggregate.EventDrivenSimulator`): it tracks the number of
unconverted leader-electing agents, the number of phase agents per phase
value, the leader's mode (holding a rank or waiting) and the set of assigned
ranks, and enumerates every productive ordered-pair class together with its
exact probability weight.  Runs of no-op interactions are skipped with
geometrically distributed waiting times, so a full execution costs ``O(n)``
events instead of ``Θ(n² log n)`` interactions.

Two deliberate simplifications versus the agent-level reference (both
validated to be statistically irrelevant by the test suite, see DESIGN.md):

* interactions between two still-unconverted leader-electing agents are
  treated as no-ops (their internal leader-election dynamics cannot elect a
  second leader before the conversion epidemic absorbs them, w.h.p.);
* the vanishing-probability path in which a stale ranked agent assigns a
  duplicate rank to a phase agent whose phase lags several phases behind is
  not modeled (it requires an unconverted agent to survive ``Θ(n²)``
  interactions, while conversion completes within ``O(n log n)`` w.h.p.).
  Concretely, assignment events are only offered while the candidate rank
  ``f_{k+1} + leader_rank`` is still unassigned; a leader meeting a lagging
  phase agent after that rank was handed out is treated as a no-op instead
  of producing an unrepresentable duplicate.  Without this gate the
  duplicate would be silently merged into the assigned-rank set and an
  agent would vanish from the aggregate bookkeeping.
"""

from __future__ import annotations

from typing import Dict, Optional

from ...core.aggregate import EventDrivenSimulator
from ...core.errors import ConfigurationError
from ...core.rng import RandomState
from .phases import PhaseSchedule, wait_count_init

__all__ = ["AggregateSpaceEfficientRanking"]


class AggregateSpaceEfficientRanking(EventDrivenSimulator):
    """Event-driven simulation of ``SpaceEfficientRanking``.

    The default initial configuration is the one used by the paper's
    Figure 3: one unaware leader already holding rank 1 and all other agents
    still in a leader-election state.

    Parameters
    ----------
    n:
        Population size.
    c_wait:
        Wait-counter constant (default 2, as in the paper's simulations).
    random_state:
        Seed or generator.
    """

    def __init__(self, n: int, c_wait: float = 2.0, random_state: RandomState = None):
        super().__init__(n, random_state)
        self._schedule = PhaseSchedule(n)
        self._wait_init = wait_count_init(n, c_wait)

        # Precomputed schedule tables and interned event-key strings: the
        # event loop runs ~3n times per execution, so per-event method calls
        # and f-string construction dominate at large n without these.
        phase_count = self._schedule.phase_count
        self._phase_limit = phase_count
        self._f = [0] * (phase_count + 2)
        for phase in range(1, phase_count + 2):
            self._f[phase] = self._schedule.f(phase)
        self._rpp = [0] * (phase_count + 1)
        for phase in range(1, phase_count + 1):
            self._rpp[phase] = self._schedule.ranks_per_phase(phase)
        self._assign_keys = [f"assign:{p}" for p in range(phase_count + 1)]
        self._bump_keys = [f"bump:{p}" for p in range(phase_count + 1)]
        self._join_keys = [f"convert_join:{p}" for p in range(phase_count + 1)]
        self._merge_keys: Dict[tuple, str] = {}
        self._event_thunks: Dict[str, object] = {}

        # Figure 3 initial configuration.
        self._unconverted = n - 1
        self._phase_counts: Dict[int, int] = {}
        self._total_phase = 0
        self._leader_mode = "rank"
        self._leader_rank = 1
        self._leader_wait = 0
        self._assigned: set[int] = set()

    # ------------------------------------------------------------------
    # Alternative initial configurations
    # ------------------------------------------------------------------
    @classmethod
    def from_start_ranking(
        cls, n: int, c_wait: float = 2.0, random_state: RandomState = None
    ) -> "AggregateSpaceEfficientRanking":
        """Start from ``C_SR``: a waiting leader and ``n - 1`` phase-1 agents."""
        simulator = cls(n, c_wait=c_wait, random_state=random_state)
        simulator._unconverted = 0
        simulator._phase_counts = {1: n - 1}
        simulator._total_phase = n - 1
        simulator._leader_mode = "wait"
        simulator._leader_wait = simulator._wait_init
        simulator._leader_rank = 0
        simulator._assigned = set()
        return simulator

    # ------------------------------------------------------------------
    # Aggregate state accessors
    # ------------------------------------------------------------------
    @property
    def schedule(self) -> PhaseSchedule:
        """The phase schedule."""
        return self._schedule

    @property
    def phase_counts(self) -> Dict[int, int]:
        """Number of phase agents per phase value (copy)."""
        return dict(self._phase_counts)

    @property
    def unconverted(self) -> int:
        """Number of agents still in a leader-election state."""
        return self._unconverted

    @property
    def leader_mode(self) -> str:
        """``"rank"`` while the leader holds a rank, ``"wait"`` while waiting."""
        return self._leader_mode

    def ranked_count(self) -> int:
        """Number of ranked agents (including the leader when it holds a rank)."""
        return len(self._assigned) + (1 if self._leader_mode == "rank" else 0)

    def ranked_fraction(self) -> float:
        """Fraction of agents currently holding a rank."""
        return self.ranked_count() / self.n

    def is_done(self) -> bool:
        return len(self._assigned) + (self._leader_mode == "rank") == self._n

    # ------------------------------------------------------------------
    # Event decomposition
    # ------------------------------------------------------------------
    def event_weights(self) -> Dict[str, float]:
        weights: Dict[str, float] = {}
        phase_counts = self._phase_counts
        unconverted = self._unconverted
        assigned = self._assigned
        f = self._f
        phase_limit = self._phase_limit

        leader_ranked = self._leader_mode == "rank"
        rank = self._leader_rank if leader_ranked and self._leader_rank >= 1 else 0
        if leader_ranked:
            if unconverted:
                weights["convert_by_leader"] = unconverted
        else:  # waiting leader
            if self._total_phase:
                weights["wait_tick"] = self._total_phase
            if unconverted:
                weights["convert_by_waiting"] = unconverted

        # One fused pass over the phase groups: the leader assigning to a
        # phase-k agent, a phase-k agent meeting the holder of rank f_k
        # (advancing its phase), and a leader-electing agent converted by a
        # phase-k agent (Protocol 1, lines 7-9).
        rpp = self._rpp
        assign_keys = self._assign_keys
        bump_keys = self._bump_keys
        join_keys = self._join_keys
        double_unconverted = 2 * unconverted
        for phase, count in phase_counts.items():
            if (
                rank
                and phase <= phase_limit
                and rank <= rpp[phase]
                and f[phase + 1] + rank not in assigned
            ):
                weights[assign_keys[phase]] = count
            if phase < phase_limit and f[phase] in assigned:
                weights[bump_keys[phase]] = count
            if unconverted:
                weights[join_keys[phase]] = double_unconverted * count

        # Two phase agents with different phases adopt the maximum.
        if len(phase_counts) > 1:
            phases = sorted(phase_counts)
            merge_keys = self._merge_keys
            for i, low in enumerate(phases):
                count_low = phase_counts[low]
                for high in phases[i + 1:]:
                    pair = (low, high)
                    key = merge_keys.get(pair)
                    if key is None:
                        key = f"merge:{low}:{high}"
                        merge_keys[pair] = key
                    weights[key] = 2 * count_low * phase_counts[high]

        if unconverted:
            # Conversions by ranked agents and the remaining leader-electing
            # pool, split by the same-interaction follow-up they trigger.
            ranked_others = len(assigned)
            weights["convert_plain"] = unconverted * (ranked_others + 1)
            bumper = 1 if self.n in assigned else 0
            if bumper:
                weights["convert_bumped"] = unconverted * bumper
            remaining = ranked_others - bumper
            if remaining:
                weights["convert_plain_responder"] = unconverted * remaining
        return weights

    # ------------------------------------------------------------------
    # Event application
    # ------------------------------------------------------------------
    def apply_event(self, name: str) -> None:
        thunk = self._event_thunks.get(name)
        if thunk is None:
            thunk = self._compile_event(name)
            self._event_thunks[name] = thunk
        thunk()

    def _compile_event(self, name: str):
        """Parse an event name once and return a reusable applier thunk.

        Event names are interned strings reused across events, so memoizing
        the parse removes per-event ``str.split``/``int`` work from the loop.
        """
        if name.startswith("assign:"):
            phase = int(name.split(":")[1])
            return lambda: self._apply_assignment(phase)
        if name == "convert_by_leader":
            def convert_by_leader() -> None:
                self._unconverted -= 1
                self._follow_up_leader_meets_new_phase_agent()
            return convert_by_leader
        if name == "convert_by_waiting":
            def convert_by_waiting() -> None:
                self._unconverted -= 1
                self._add_phase_agent(1)
                self._tick_wait()
            return convert_by_waiting
        if name == "wait_tick":
            return self._tick_wait
        if name.startswith("bump:"):
            phase = int(name.split(":")[1])
            def bump() -> None:
                self._remove_phase_agent(phase)
                self._add_phase_agent(phase + 1)
            return bump
        if name.startswith("merge:"):
            _, low_text, high_text = name.split(":")
            low, high = int(low_text), int(high_text)
            def merge() -> None:
                self._remove_phase_agent(low)
                self._add_phase_agent(high)
            return merge
        if name.startswith("convert_join:"):
            phase = int(name.split(":")[1])
            def convert_join() -> None:
                self._unconverted -= 1
                self._add_phase_agent(phase)
            return convert_join
        if name in ("convert_plain", "convert_plain_responder"):
            def convert_plain() -> None:
                self._unconverted -= 1
                self._add_phase_agent(1)
            return convert_plain
        if name == "convert_bumped":
            def convert_bumped() -> None:
                self._unconverted -= 1
                self._add_phase_agent(2)
            return convert_bumped
        raise ConfigurationError(f"unknown aggregate event {name!r}")

    # ------------------------------------------------------------------
    # Internal state updates
    # ------------------------------------------------------------------
    def _add_phase_agent(self, phase: int) -> None:
        if phase > self._phase_limit:
            phase = self._phase_limit
        self._phase_counts[phase] = self._phase_counts.get(phase, 0) + 1
        self._total_phase += 1

    def _remove_phase_agent(self, phase: int) -> None:
        count = self._phase_counts.get(phase, 0)
        if count <= 0:
            raise ConfigurationError(f"no phase-{phase} agents to remove")
        if count == 1:
            del self._phase_counts[phase]
        else:
            self._phase_counts[phase] = count - 1
        self._total_phase -= 1

    def _tick_wait(self) -> None:
        self._leader_wait -= 1
        if self._leader_wait <= 0:
            self._leader_mode = "rank"
            self._leader_rank = 1

    def _apply_assignment(self, phase: int) -> None:
        """The unaware leader assigns the next rank of ``phase`` (lines 4-9)."""
        boundary = self._rpp[phase]
        assigned_rank = self._f[phase + 1] + self._leader_rank
        if assigned_rank in self._assigned:  # pragma: no cover - guarded by event_weights
            raise ConfigurationError(
                f"rank {assigned_rank} would be assigned twice (phase {phase})"
            )
        self._remove_phase_agent(phase)
        self._assigned.add(assigned_rank)
        if self._leader_rank < boundary:
            self._leader_rank += 1
        elif phase < self._phase_limit:
            self._leader_mode = "wait"
            self._leader_wait = self._wait_init
            self._leader_rank = 0
        # In the final phase the leader keeps its rank and the run finishes.

    def _follow_up_leader_meets_new_phase_agent(self) -> None:
        """A converted agent (phase 1) immediately interacts with the leader.

        Protocol 1 runs ``Ranking(u, v)`` in the same interaction after the
        conversion of lines 7-9, so when the leader initiated the conversion
        it may directly assign a rank to the fresh phase-1 agent.
        """
        boundary = self._rpp[1]
        rank = self._leader_rank
        if 1 <= rank <= boundary and self._f[2] + rank not in self._assigned:
            self._assigned.add(self._f[2] + rank)
            if rank < boundary:
                self._leader_rank += 1
            elif self._phase_limit > 1:
                self._leader_mode = "wait"
                self._leader_wait = self._wait_init
                self._leader_rank = 0
        else:
            self._add_phase_agent(1)

    # ------------------------------------------------------------------
    # Convenience for experiments
    # ------------------------------------------------------------------
    def milestone_predicates(self, fractions) -> Dict[str, object]:
        """Milestone predicates "at least ``fraction`` of the agents ranked"."""
        def make(threshold: float):
            return lambda: self.ranked_count() >= threshold * self.n

        return {f"ranked_{fraction}": make(fraction) for fraction in fractions}
