"""Exact event-driven simulation of ``SpaceEfficientRanking``.

The paper's Figure 3 measures, for populations up to ``n = 8192`` and 100
repetitions per size, how many interactions it takes to rank constant
fractions of the agents.  Simulating each of the ``Θ(n²)`` interactions
individually in Python is out of reach at that scale, but almost all of those
interactions are no-ops: the protocol only changes state when the (unaware or
waiting) leader, a lagging phase agent, or a still-unconverted
leader-electing agent is involved.

:class:`AggregateSpaceEfficientRanking` therefore simulates the *same
stochastic process* on group counts (see
:class:`~repro.core.aggregate.EventDrivenSimulator`): it tracks the number of
unconverted leader-electing agents, the number of phase agents per phase
value, the leader's mode (holding a rank or waiting) and the set of assigned
ranks, and enumerates every productive ordered-pair class together with its
exact probability weight.  Runs of no-op interactions are skipped with
geometrically distributed waiting times, so a full execution costs ``O(n)``
events instead of ``Θ(n² log n)`` interactions.

Two deliberate simplifications versus the agent-level reference (both
validated to be statistically irrelevant by the test suite, see DESIGN.md):

* interactions between two still-unconverted leader-electing agents are
  treated as no-ops (their internal leader-election dynamics cannot elect a
  second leader before the conversion epidemic absorbs them, w.h.p.);
* the vanishing-probability path in which a stale ranked agent assigns a
  duplicate rank to a phase agent whose phase lags several phases behind is
  not modeled (it requires an unconverted agent to survive ``Θ(n²)``
  interactions, while conversion completes within ``O(n log n)`` w.h.p.).
  Concretely, assignment events are only offered while the candidate rank
  ``f_{k+1} + leader_rank`` is still unassigned; a leader meeting a lagging
  phase agent after that rank was handed out is treated as a no-op instead
  of producing an unrepresentable duplicate.  Without this gate the
  duplicate would be silently merged into the assigned-rank set and an
  agent would vanish from the aggregate bookkeeping.
"""

from __future__ import annotations

from typing import Dict, Optional

from ...core.aggregate import EventDrivenSimulator
from ...core.errors import ConfigurationError
from ...core.rng import RandomState
from .phases import PhaseSchedule, wait_count_init

__all__ = ["AggregateSpaceEfficientRanking"]


class AggregateSpaceEfficientRanking(EventDrivenSimulator):
    """Event-driven simulation of ``SpaceEfficientRanking``.

    The default initial configuration is the one used by the paper's
    Figure 3: one unaware leader already holding rank 1 and all other agents
    still in a leader-election state.

    Parameters
    ----------
    n:
        Population size.
    c_wait:
        Wait-counter constant (default 2, as in the paper's simulations).
    random_state:
        Seed or generator.
    """

    def __init__(self, n: int, c_wait: float = 2.0, random_state: RandomState = None):
        super().__init__(n, random_state)
        self._schedule = PhaseSchedule(n)
        self._wait_init = wait_count_init(n, c_wait)

        # Figure 3 initial configuration.
        self._unconverted = n - 1
        self._phase_counts: Dict[int, int] = {}
        self._leader_mode = "rank"
        self._leader_rank = 1
        self._leader_wait = 0
        self._assigned: set[int] = set()

    # ------------------------------------------------------------------
    # Alternative initial configurations
    # ------------------------------------------------------------------
    @classmethod
    def from_start_ranking(
        cls, n: int, c_wait: float = 2.0, random_state: RandomState = None
    ) -> "AggregateSpaceEfficientRanking":
        """Start from ``C_SR``: a waiting leader and ``n - 1`` phase-1 agents."""
        simulator = cls(n, c_wait=c_wait, random_state=random_state)
        simulator._unconverted = 0
        simulator._phase_counts = {1: n - 1}
        simulator._leader_mode = "wait"
        simulator._leader_wait = simulator._wait_init
        simulator._leader_rank = 0
        simulator._assigned = set()
        return simulator

    # ------------------------------------------------------------------
    # Aggregate state accessors
    # ------------------------------------------------------------------
    @property
    def schedule(self) -> PhaseSchedule:
        """The phase schedule."""
        return self._schedule

    @property
    def phase_counts(self) -> Dict[int, int]:
        """Number of phase agents per phase value (copy)."""
        return dict(self._phase_counts)

    @property
    def unconverted(self) -> int:
        """Number of agents still in a leader-election state."""
        return self._unconverted

    @property
    def leader_mode(self) -> str:
        """``"rank"`` while the leader holds a rank, ``"wait"`` while waiting."""
        return self._leader_mode

    def ranked_count(self) -> int:
        """Number of ranked agents (including the leader when it holds a rank)."""
        return len(self._assigned) + (1 if self._leader_mode == "rank" else 0)

    def ranked_fraction(self) -> float:
        """Fraction of agents currently holding a rank."""
        return self.ranked_count() / self.n

    def is_done(self) -> bool:
        return self.ranked_count() == self.n

    # ------------------------------------------------------------------
    # Event decomposition
    # ------------------------------------------------------------------
    def event_weights(self) -> Dict[str, float]:
        weights: Dict[str, float] = {}
        schedule = self._schedule
        phase_counts = self._phase_counts
        unconverted = self._unconverted
        ranked_others = len(self._assigned)
        total_phase = sum(phase_counts.values())

        if self._leader_mode == "rank":
            rank = self._leader_rank
            for phase, count in phase_counts.items():
                if (
                    phase <= schedule.phase_count
                    and 1 <= rank <= schedule.ranks_per_phase(phase)
                    and schedule.f(phase + 1) + rank not in self._assigned
                ):
                    weights[f"assign:{phase}"] = count
            if unconverted:
                weights["convert_by_leader"] = unconverted
        else:  # waiting leader
            if total_phase:
                weights["wait_tick"] = total_phase
            if unconverted:
                weights["convert_by_waiting"] = unconverted

        # A phase-k agent meeting the holder of rank f_k advances its phase.
        for phase, count in phase_counts.items():
            if phase < schedule.phase_count and schedule.f(phase) in self._assigned:
                weights[f"bump:{phase}"] = count

        # Two phase agents with different phases adopt the maximum.
        phases = sorted(phase_counts)
        for i, low in enumerate(phases):
            for high in phases[i + 1:]:
                weights[f"merge:{low}:{high}"] = 2 * phase_counts[low] * phase_counts[high]

        if unconverted:
            # Conversions of leader-electing agents (Protocol 1, lines 7-9),
            # split by the same-interaction follow-up they trigger.
            for phase, count in phase_counts.items():
                weights[f"convert_join:{phase}"] = 2 * unconverted * count
            weights["convert_plain"] = unconverted * (ranked_others + 1)
            bumper = 1 if self.n in self._assigned else 0
            if bumper:
                weights["convert_bumped"] = unconverted * bumper
            remaining = ranked_others - bumper
            if remaining:
                weights["convert_plain_responder"] = unconverted * remaining
        return weights

    # ------------------------------------------------------------------
    # Event application
    # ------------------------------------------------------------------
    def apply_event(self, name: str) -> None:
        if name.startswith("assign:"):
            self._apply_assignment(int(name.split(":")[1]))
        elif name == "convert_by_leader":
            self._unconverted -= 1
            self._follow_up_leader_meets_new_phase_agent()
        elif name == "convert_by_waiting":
            self._unconverted -= 1
            self._add_phase_agent(1)
            self._tick_wait()
        elif name == "wait_tick":
            self._tick_wait()
        elif name.startswith("bump:"):
            phase = int(name.split(":")[1])
            self._remove_phase_agent(phase)
            self._add_phase_agent(phase + 1)
        elif name.startswith("merge:"):
            _, low, high = name.split(":")
            self._remove_phase_agent(int(low))
            self._add_phase_agent(int(high))
        elif name.startswith("convert_join:"):
            phase = int(name.split(":")[1])
            self._unconverted -= 1
            self._add_phase_agent(phase)
        elif name in ("convert_plain", "convert_plain_responder"):
            self._unconverted -= 1
            self._add_phase_agent(1)
        elif name == "convert_bumped":
            self._unconverted -= 1
            self._add_phase_agent(2)
        else:  # pragma: no cover - defensive
            raise ConfigurationError(f"unknown aggregate event {name!r}")

    # ------------------------------------------------------------------
    # Internal state updates
    # ------------------------------------------------------------------
    def _add_phase_agent(self, phase: int) -> None:
        phase = min(phase, self._schedule.phase_count)
        self._phase_counts[phase] = self._phase_counts.get(phase, 0) + 1

    def _remove_phase_agent(self, phase: int) -> None:
        count = self._phase_counts.get(phase, 0)
        if count <= 0:
            raise ConfigurationError(f"no phase-{phase} agents to remove")
        if count == 1:
            del self._phase_counts[phase]
        else:
            self._phase_counts[phase] = count - 1

    def _tick_wait(self) -> None:
        self._leader_wait -= 1
        if self._leader_wait <= 0:
            self._leader_mode = "rank"
            self._leader_rank = 1

    def _apply_assignment(self, phase: int) -> None:
        """The unaware leader assigns the next rank of ``phase`` (lines 4-9)."""
        schedule = self._schedule
        boundary = schedule.ranks_per_phase(phase)
        assigned_rank = schedule.f(phase + 1) + self._leader_rank
        if assigned_rank in self._assigned:  # pragma: no cover - guarded by event_weights
            raise ConfigurationError(
                f"rank {assigned_rank} would be assigned twice (phase {phase})"
            )
        self._remove_phase_agent(phase)
        self._assigned.add(assigned_rank)
        if self._leader_rank < boundary:
            self._leader_rank += 1
        elif phase < schedule.phase_count:
            self._leader_mode = "wait"
            self._leader_wait = self._wait_init
            self._leader_rank = 0
        # In the final phase the leader keeps its rank and the run finishes.

    def _follow_up_leader_meets_new_phase_agent(self) -> None:
        """A converted agent (phase 1) immediately interacts with the leader.

        Protocol 1 runs ``Ranking(u, v)`` in the same interaction after the
        conversion of lines 7-9, so when the leader initiated the conversion
        it may directly assign a rank to the fresh phase-1 agent.
        """
        schedule = self._schedule
        boundary = schedule.ranks_per_phase(1)
        rank = self._leader_rank
        if 1 <= rank <= boundary and schedule.f(2) + rank not in self._assigned:
            self._assigned.add(schedule.f(2) + rank)
            if rank < boundary:
                self._leader_rank += 1
            elif schedule.phase_count > 1:
                self._leader_mode = "wait"
                self._leader_wait = self._wait_init
                self._leader_rank = 0
        else:
            self._add_phase_agent(1)

    # ------------------------------------------------------------------
    # Convenience for experiments
    # ------------------------------------------------------------------
    def milestone_predicates(self, fractions) -> Dict[str, object]:
        """Milestone predicates "at least ``fraction`` of the agents ranked"."""
        def make(threshold: float):
            return lambda: self.ranked_count() >= threshold * self.n

        return {f"ranked_{fraction}": make(fraction) for fraction in fractions}
