"""The phase schedule of the ranking protocols.

Ranks are assigned in ``⌈log₂ n⌉`` phases.  Writing ``f_k`` for the maximal
rank assigned in phase ``k``, the paper defines ``f_1 = n`` and
``f_i = ⌈f_{i-1} / 2⌉`` for ``i > 1``; phase ``k`` assigns the ranks
``f_{k+1} + 1, …, f_k`` (Section IV).  The sequence always ends with
``f_{⌈log₂ n⌉ + 1} = 1``, so across all phases exactly the ranks
``2, …, n`` are handed out and the unaware leader keeps rank 1.

:class:`PhaseSchedule` precomputes the sequence once per population size and
offers the queries the protocols and the analysis need.
"""

from __future__ import annotations

import math
from typing import List

from ...core.errors import ProtocolError

__all__ = ["PhaseSchedule", "wait_count_init"]


def wait_count_init(n: int, c_wait: float) -> int:
    """The leader's wait counter ``⌈c_wait · log₂ n⌉`` (at least 1)."""
    if n < 2:
        raise ProtocolError(f"population size must be at least 2, got {n}")
    if c_wait <= 0:
        raise ProtocolError(f"c_wait must be positive, got {c_wait}")
    return max(1, int(math.ceil(c_wait * math.log2(n))))


class PhaseSchedule:
    """Precomputed ``f_k`` sequence and derived phase queries for a given ``n``."""

    def __init__(self, n: int):
        if n < 2:
            raise ProtocolError(f"population size must be at least 2, got {n}")
        self._n = n
        self._phase_count = max(1, int(math.ceil(math.log2(n))))
        # self._f[k] = f_k for k = 1 … phase_count + 1 (index 0 unused).
        values: List[int] = [0, n]
        for _ in range(self._phase_count):
            values.append(math.ceil(values[-1] / 2))
        self._f = values

    @property
    def n(self) -> int:
        """Population size."""
        return self._n

    @property
    def phase_count(self) -> int:
        """Number of phases, ``⌈log₂ n⌉``."""
        return self._phase_count

    def f(self, k: int) -> int:
        """``f_k``, the largest rank assigned in phase ``k``.

        Defined for ``1 ≤ k ≤ phase_count + 1``; ``f_{phase_count + 1} = 1``.
        """
        if not 1 <= k <= self._phase_count + 1:
            raise ProtocolError(
                f"phase index must be in [1, {self._phase_count + 1}], got {k}"
            )
        return self._f[k]

    def ranks_in_phase(self, k: int) -> range:
        """The ranks assigned during phase ``k``: ``f_{k+1} + 1 … f_k``."""
        if not 1 <= k <= self._phase_count:
            raise ProtocolError(
                f"phase index must be in [1, {self._phase_count}], got {k}"
            )
        return range(self.f(k + 1) + 1, self.f(k) + 1)

    def ranks_per_phase(self, k: int) -> int:
        """Number of ranks assigned in phase ``k`` (``f_k - f_{k+1}``)."""
        return self.f(k) - self.f(k + 1)

    def is_final_phase(self, k: int) -> bool:
        """Whether ``k`` is the last phase."""
        return k >= self._phase_count

    def phase_of_rank(self, rank: int) -> int:
        """The phase during which ``rank`` is assigned (rank 1 → phase count).

        Rank 1 is never handed out — it is the unaware leader's own rank at
        the end of the final phase — so it is attributed to the final phase.
        """
        if not 1 <= rank <= self._n:
            raise ProtocolError(f"rank must be in [1, {self._n}], got {rank}")
        if rank == 1:
            return self._phase_count
        for k in range(1, self._phase_count + 1):
            if rank in self.ranks_in_phase(k):
                return k
        raise ProtocolError(f"rank {rank} not covered by any phase")  # pragma: no cover

    def unranked_leader_threshold(self, phase: int) -> int:
        """The ``⌊n · 2^-phase⌋`` threshold used by ``Ranking+`` (line 13).

        A ranked agent ``u`` meeting a phase-``phase`` agent concludes that it
        is the unaware leader when ``rank(u)`` is at most this value.
        """
        if phase < 1:
            raise ProtocolError(f"phase must be at least 1, got {phase}")
        return int(math.floor(self._n * 2.0 ** (-phase)))

    def describe(self) -> dict:
        """Schedule metadata for experiment records."""
        return {
            "n": self._n,
            "phase_count": self._phase_count,
            "f": {k: self.f(k) for k in range(1, self._phase_count + 2)},
        }
