"""``Ranking+`` — the error-detecting ranking rules (Protocol 4).

``Ranking+`` extends ``Ranking`` with the three error detectors that make
the composed protocol self-stabilizing:

1. **Duplicate ranks / duplicate waiting agents** (lines 1–4): detected when
   the two offenders interact directly; triggers a reset.
2. **Liveness checking** (lines 5–11): unranked agents carry an
   ``aliveCount`` that is driven towards zero by pairwise max-minus-one
   averaging and by meetings with the agents ranked ``n-1`` or ``n``; it is
   replenished whenever a *productive pair* interacts with the phase agent's
   coin showing 0.  A counter hitting zero means the protocol stopped making
   progress and triggers a reset.
3. **Coin-gated base protocol** (lines 12–18): the plain ``Ranking`` rules
   only run when the responder's coin shows 1, so progress and liveness
   replenishment each get roughly half of the productive interactions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ...core.state import AgentState
from .phases import PhaseSchedule
from .rules import RankingOutcome, RankingRules

__all__ = ["RankingPlus", "RankingPlusOutcome"]


@dataclass(slots=True)
class RankingPlusOutcome:
    """Result of one ``Ranking+`` invocation."""

    changed: bool = False
    rank_assigned: Optional[int] = None
    reset_triggered: bool = False
    error: Optional[str] = None


class RankingPlus:
    """Protocol 4, operating on pairs of main-state agents.

    Parameters
    ----------
    schedule:
        Phase schedule for the population size.
    wait_init:
        Wait counter loaded at phase transitions (``⌈c_wait log n⌉``).
    alive_reset:
        Replenishment value ``⌈c_live · log n⌉`` for the liveness counter
        (Protocol 4, line 14).
    l_max:
        The maximum liveness value ``L_max`` installed when an agent becomes
        waiting (line 18) and when agents join the main protocol.
    trigger_reset:
        Callback invoking ``TriggerReset`` on an agent.
    """

    def __init__(
        self,
        schedule: PhaseSchedule,
        wait_init: int,
        alive_reset: int,
        l_max: int,
        trigger_reset: Callable[[AgentState], None],
    ):
        if alive_reset < 1:
            raise ValueError(f"alive_reset must be positive, got {alive_reset}")
        if l_max < alive_reset:
            raise ValueError(
                f"L_max ({l_max}) must be at least alive_reset ({alive_reset})"
            )
        self._schedule = schedule
        self._rules = RankingRules(schedule, wait_init)
        self._alive_reset = alive_reset
        self._l_max = l_max
        self._trigger_reset = trigger_reset
        self._errors_detected = {"duplicate_rank": 0, "duplicate_waiting": 0, "liveness": 0}

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def rules(self) -> RankingRules:
        """The embedded Protocol 2 rules."""
        return self._rules

    @property
    def alive_reset(self) -> int:
        """The liveness replenishment value ``⌈c_live log n⌉``."""
        return self._alive_reset

    @property
    def l_max(self) -> int:
        """The maximum liveness counter ``L_max``."""
        return self._l_max

    @property
    def errors_detected(self) -> dict:
        """Counts of detected errors by category (diagnostics)."""
        return dict(self._errors_detected)

    # ------------------------------------------------------------------
    # Protocol 4
    # ------------------------------------------------------------------
    def apply(self, initiator: AgentState, responder: AgentState) -> RankingPlusOutcome:
        """Execute ``Ranking+(u, v)`` with ``u = initiator``, ``v = responder``."""
        u, v = initiator, responder
        n = self._schedule.n

        # Lines 1-4: directly detectable errors.
        if u.rank is not None and u.rank == v.rank:
            self._errors_detected["duplicate_rank"] += 1
            self._trigger_reset(u)
            return RankingPlusOutcome(
                changed=True, reset_triggered=True, error="duplicate_rank"
            )
        if u.wait_count is not None and v.wait_count is not None:
            self._errors_detected["duplicate_waiting"] += 1
            self._trigger_reset(u)
            return RankingPlusOutcome(
                changed=True, reset_triggered=True, error="duplicate_waiting"
            )

        changed = False

        # Lines 5-6: two liveness-checking agents adopt the maximum minus one.
        if u.alive_count is not None and v.alive_count is not None:
            new_count = max(0, max(u.alive_count, v.alive_count) - 1)
            if u.alive_count != new_count or v.alive_count != new_count:
                u.alive_count = new_count
                v.alive_count = new_count
                changed = True

        # Lines 7-8: meeting one of the top-ranked agents drains the counter.
        if u.rank in (n - 1, n) and v.alive_count is not None:
            v.alive_count = max(0, v.alive_count - 1)
            changed = True

        # Lines 9-11: a drained counter means no progress — reset.
        if v.alive_count == 0:
            self._errors_detected["liveness"] += 1
            self._trigger_reset(u)
            return RankingPlusOutcome(
                changed=True, reset_triggered=True, error="liveness"
            )

        if v.coin == 0:
            # Lines 12-14: replenish the liveness counter when the pair is
            # productive but the coin forbids actual progress this time.
            productive = u.wait_count is not None or (
                u.rank is not None
                and v.phase is not None
                and u.rank <= self._schedule.unranked_leader_threshold(v.phase)
            )
            if productive and v.alive_count != self._alive_reset:
                v.alive_count = self._alive_reset
                changed = True
        elif v.coin == 1:
            # Lines 15-18: execute the base protocol.
            outcome: RankingOutcome = self._rules.apply(u, v)
            changed = changed or outcome.changed
            if outcome.initiator_became_waiting:
                u.coin = 0
                u.alive_count = self._l_max
            return RankingPlusOutcome(
                changed=changed, rank_assigned=outcome.rank_assigned
            )
        return RankingPlusOutcome(changed=changed)
