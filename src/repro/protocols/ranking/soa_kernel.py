"""Struct-of-arrays kernel for ``StableRanking`` / ``Ranking+``.

The mid-run regime of the self-stabilizing protocol — many unranked agents
toggling synthetic coins and averaging liveness counters while ranks trickle
out — defeats the array engine's bulk no-op elimination: almost every pair
writes a coin or an ``aliveCount``, so almost every pair lands in the scalar
ordered walk at ~0.5 µs apiece, and every liveness-counter combination is a
novel state pair the engine's pair cache has never seen.  This kernel
exploits the structure the generic walk cannot:

* the synthetic-coin toggle of the responder (Protocol 3, lines 9–10) is
  pure occurrence *parity*, computable for a whole chunk at once — and
  coin *presence* is invariant under every fast-path rule, so the parity
  trajectory never needs revalidation;
* the ``Ranking+`` counter updates (averaging, top-rank drain, coin-0
  replenishment; Protocol 4, lines 5–14), the phase adoptions and
  end-of-phase bumps (Protocol 2, lines 10–14), the ``FastLeaderElection``
  countdown (Protocol 5, lines 1–8) and the whole ``PropagateReset``
  life-cycle (propagation, infection of leader-electing agents, dormancy,
  wake-up, countdown-expiry resets) are genuinely sequential chains — but
  they only touch a handful of integer fields per agent, so a single
  ordered Python loop over the *counter-touching pairs only* resolves them
  at a few dozen nanoseconds per field instead of a per-pair transition
  call;
* everything else — overwhelmingly ranked×ranked meetings late in a run —
  is a provable no-op and costs nothing.

The agent classes split into a *main* domain (ranked / phase / waiting)
and a *start-up* domain (leader-electing / resetting).  Within a chunk
prefix, main-domain agents keep their class (the transitions that would
change it are declined, see below), and the start-up domain is closed
under its own rules (infection turns a leader-electing agent into a reset
agent, a wake-up turns it back), so pair *routing* is static even though
agent state is not.

Pair classification is *conservative*: the kernel stops in front of the
first pair that could take a transition it does not model — a rank
assignment, a wait-counter countdown, a drained liveness counter (reset
trigger), a leader election won (the agent enters the main protocol), an
agent of either domain meeting the other domain (joins and infections of
main agents), any agent outside the five pure state classes, duplicate
ranks, duplicate waiting agents.  Those pairs (a fraction of a percent of
a run) are resolved exactly by the engine's validated ordered walk, after
which the kernel resumes.  Everything the kernel *does* commit is
bit-identical to the reference simulator, including the ``changed`` flag
driving convergence checks and the ``resets`` counter (countdown-expiry
resets are executed inline and counted).

Classification happens per *state code*, once, when the code first
appears; chunk-time classification is a handful of gathers over
precomputed per-code attribute arrays.  The kernel holds no reference to
the protocol instance — only derived parameters — so one kernel is shared
across runs of equally parameterized protocols through an
:class:`~repro.core.array_engine.EngineCache` (the same contract as the
shared pair cache).

One representational caveat: columns encode the paper's ``⊥`` as ``-1``
(:meth:`~repro.core.codec.StateCodec.field_columns`), so an *adversarial*
state holding a genuinely negative counter is classified into the
conservative ``other`` class and handled by the walk — never executed
wrongly, at worst more slowly.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ...core.soa import ChunkOutcome, ColumnStore, grow_column, occurrence_index

__all__ = ["StableRankingKernel"]

# Pure state classes of the fast path.  Everything else — blank agents,
# adversarial mixtures — is OTHER and ends the vectorized prefix.
_RANKED = 0   # rank only (coins and counters cleared on ranking)
_PHASE = 1    # phase + coin + aliveCount
_WAIT = 2     # waitCount + coin + aliveCount
_LE = 3       # FastLeaderElection state + coin
_RESET = 4    # PropagateReset counters + coin
_OTHER = 5

#: All AgentState fields; the leading ones drive the fast path, the rest
#: are checked against ⊥ to keep the pure classes honest.
_FIELDS = (
    "rank",
    "phase",
    "wait_count",
    "coin",
    "alive_count",
    "leader_done",
    "le_count",
    "coin_count",
    "is_leader",
    "reset_count",
    "delay_count",
    "le_level",
    "aux",
)
#: Fields that must be ⊥ in every pure class.
_BLANK_FIELDS = ("le_level", "aux")

# Opcode bits of the merged scalar loop (one byte per counter-touching
# pair).
_OP_AVG = 1        # both agents hold aliveCount: max-minus-one averaging
_OP_DRAIN = 2      # initiator holds rank n-1 or n: drain v's counter
_OP_PHASE_V = 4    # responder is a phase agent (rules may run on coin 1)
_OP_DOMAIN = 8     # both agents in the leader-election / reset domain
_OP_COIN = 16      # responder's coin at this position (precomputed parity)
_OP_U_RANKED = 32  # initiator is ranked (assign / bump / productive checks)
_OP_U_WAIT = 64    # initiator is the waiting leader


class StableRankingKernel:
    """Vectorized fast path for the self-stabilizing ranking protocol."""

    def __init__(self, protocol):
        schedule = protocol.schedule
        n = protocol.n
        self._n = n
        self._alive_reset = protocol.alive_reset
        self._l_max = protocol.l_max
        self._coin_count_init = protocol.leader_election.coin_count_init
        self._r_max = protocol.reset.r_max
        self._d_max = protocol.reset.d_max
        phase_count = schedule.phase_count
        #: Phases above this value never occur in reachable configurations;
        #: codes carrying one are classified OTHER.
        self._max_phase = phase_count + 1

        # Per-(phase, rank) decision rows, consulted inside the scalar
        # loop with the *live* phase values (phases evolve mid-chunk when
        # adoption pairs run): "does this rank assign in this phase?"
        # (Protocol 2 lines 4-9 — handed to the walk) and "is this pair
        # productive?" (Protocol 4 line 13 — replenishes the counter).
        # Plain nested lists: the loop indexes them with Python ints.
        self._assign_rows = []
        self._productive_rows = []
        #: f_k when the rank f_k announces the end of phase k (lines
        #: 10-11), else 0 — the phase-bump the loop executes inline.
        self._bump_rank = [0] * (self._max_phase + 1)
        for k in range(self._max_phase + 1):
            assign_row = [False] * (n + 1)
            productive_row = [False] * (n + 1)
            if 1 <= k <= phase_count:
                boundary = schedule.ranks_per_phase(k)
                for rank in range(1, boundary + 1):
                    assign_row[rank] = True
                if k < phase_count:
                    self._bump_rank[k] = schedule.f(k)
            if k >= 1:
                threshold = min(schedule.unranked_leader_threshold(k), n)
                for rank in range(1, threshold + 1):
                    productive_row[rank] = True
            self._assign_rows.append(assign_row)
            self._productive_rows.append(productive_row)
        drain = np.zeros(n + 1, dtype=bool)
        drain[n - 1] = True
        drain[n] = True
        self._drain_rank = drain

        # Per-code attribute arrays, grown as the codec interns states.
        self._classified = 0
        self._kind = np.empty(0, dtype=np.int8)
        self._coin_of = np.empty(0, dtype=np.int64)
        self._alive_of = np.empty(0, dtype=np.int64)
        self._rank_of = np.empty(0, dtype=np.int64)
        self._phase_of = np.empty(0, dtype=np.int64)
        self._reset_of = np.empty(0, dtype=np.int64)
        self._delay_of = np.empty(0, dtype=np.int64)
        self._le_count_of = np.empty(0, dtype=np.int64)
        self._le_done_of = np.empty(0, dtype=np.int64)
        self._le_coins_of = np.empty(0, dtype=np.int64)
        self._le_leader_of = np.empty(0, dtype=np.int64)
        #: field-value tuples → interned code (commit memo).
        self._variants: Dict[Tuple[int, ...], int] = {}

        # Persistent per-agent shadow of the live population: the field
        # lists the scalar loop reads and writes, kept in lockstep with the
        # engine's code array across invocations.  Between kernel calls
        # only walked/table-path agents change, so re-entry costs one
        # vectorized code comparison plus O(#changed) Python work instead
        # of re-gathering O(n) lists per call.  ``_bound_codes`` tracks the
        # identity of the engine's code array — a shared kernel that is
        # re-bound to another engine's population (interleaved runs on one
        # EngineCache) rebuilds the shadow wholesale.
        self._bound_codes: np.ndarray | None = None
        self._synced = np.empty(0, dtype=np.int64)
        self._agent_kind: list = []
        self._agent_alive: list = []
        self._agent_phase: list = []
        self._agent_reset: list = []
        self._agent_delay: list = []
        self._agent_le_count: list = []
        self._agent_le_done: list = []
        self._agent_le_coins: list = []
        self._agent_le_leader: list = []

    # ------------------------------------------------------------------
    # VectorizedKernel interface
    # ------------------------------------------------------------------
    def columns(self) -> Tuple[str, ...]:
        return _FIELDS

    def chunk_scalar_share(self, code_v: np.ndarray, columns: ColumnStore) -> float:
        """Fraction of a chunk that would run the ordered scalar loop.

        A pair enters the loop when its responder carries a synthetic coin
        (every pure class but ranked), so this is one per-code gather over
        the responder codes.  The engine consults it before handing a
        chunk over: in loop-bound regimes (measured ≥ 0.5 only during the
        early counter-churn, ≤ 0.15 mid-run) the kernel has no vectorized
        win left and pre-tabulated chunks are cheaper on the warm
        table-path walk.
        """
        if not len(code_v):
            return 0.0
        self._refresh(columns)
        kind_v = self._kind[code_v]
        return float(
            np.count_nonzero((kind_v >= _PHASE) & (kind_v < _OTHER)) / len(code_v)
        )

    def _refresh(self, store: ColumnStore) -> None:
        """Classify codes interned since the last call."""
        size = store.refresh()
        start = self._classified
        if size <= start:
            return
        for name in (
            "_kind", "_coin_of", "_alive_of", "_rank_of", "_phase_of",
            "_reset_of", "_delay_of", "_le_count_of", "_le_done_of",
            "_le_coins_of", "_le_leader_of",
        ):
            setattr(self, name, grow_column(getattr(self, name), start, size))
        window = slice(start, size)
        rank = store.column("rank")[window]
        phase = store.column("phase")[window]
        wait = store.column("wait_count")[window]
        coin = store.column("coin")[window]
        alive = store.column("alive_count")[window]
        leader_done = store.column("leader_done")[window]
        le_count = store.column("le_count")[window]
        coin_count = store.column("coin_count")[window]
        is_leader = store.column("is_leader")[window]
        reset = store.column("reset_count")[window]
        delay = store.column("delay_count")[window]
        blank = np.ones(size - start, dtype=bool)
        for field in _BLANK_FIELDS:
            blank &= store.column(field)[window] == -1
        no_le = (
            (leader_done < 0) & (le_count < 0) & (coin_count < 0) & (is_leader < 0)
        )
        no_reset = (reset < 0) & (delay < 0)
        counters = (coin >= 0) & (alive >= 0) & blank & no_le & no_reset
        pure_phase = (
            (phase >= 1) & (phase <= self._max_phase)
            & (rank < 0) & (wait < 0) & counters
        )
        pure_wait = (wait >= 0) & (rank < 0) & (phase < 0) & counters
        pure_ranked = (
            (rank >= 1) & (rank <= self._n)
            & (phase < 0) & (wait < 0) & (coin < 0) & (alive < 0)
            & blank & no_le & no_reset
        )
        pure_le = (
            (leader_done >= 0) & (le_count >= 0) & (coin_count >= 0)
            & (is_leader >= 0) & (coin >= 0)
            & (rank < 0) & (phase < 0) & (wait < 0) & (alive < 0)
            & blank & no_reset
        )
        pure_reset = (
            ((reset >= 0) | (delay >= 0)) & (coin >= 0)
            & (rank < 0) & (phase < 0) & (wait < 0) & (alive < 0)
            & blank & no_le
        )
        kind = np.full(size - start, _OTHER, dtype=np.int8)
        kind[pure_phase] = _PHASE
        kind[pure_wait] = _WAIT
        kind[pure_le] = _LE
        kind[pure_reset] = _RESET
        kind[pure_ranked] = _RANKED
        self._kind[window] = kind
        self._coin_of[window] = np.where(coin >= 0, coin, 0)
        self._alive_of[window] = alive
        self._rank_of[window] = np.where(pure_ranked, rank, 0)
        self._phase_of[window] = np.where(pure_phase, phase, 0)
        self._reset_of[window] = reset
        self._delay_of[window] = delay
        self._le_count_of[window] = le_count
        self._le_done_of[window] = leader_done
        self._le_coins_of[window] = coin_count
        self._le_leader_of[window] = is_leader
        self._classified = size

    def _agent_lists(self) -> tuple:
        return (
            self._agent_kind, self._agent_alive, self._agent_phase,
            self._agent_reset, self._agent_delay, self._agent_le_count,
            self._agent_le_done, self._agent_le_coins, self._agent_le_leader,
        )

    def _agent_columns(self) -> tuple:
        return (
            self._kind, self._alive_of, self._phase_of,
            self._reset_of, self._delay_of, self._le_count_of,
            self._le_done_of, self._le_coins_of, self._le_leader_of,
        )

    def _sync_agents(self, codes: np.ndarray) -> None:
        """Bring the per-agent field shadow in line with the live codes.

        Agents whose code changed outside the kernel (walk segments, table
        chunks) are found by comparing against the snapshot taken at the
        last sync; only those entries are re-projected.  The shadow of a
        committed agent always equals its current code's projection, so
        nothing else can have drifted.
        """
        if self._bound_codes is not codes or len(self._synced) != len(codes):
            self._bound_codes = codes
            self._synced = codes.copy()
            self._agent_kind = self._kind[codes].tolist()
            self._agent_alive = self._alive_of[codes].tolist()
            self._agent_phase = self._phase_of[codes].tolist()
            self._agent_reset = self._reset_of[codes].tolist()
            self._agent_delay = self._delay_of[codes].tolist()
            self._agent_le_count = self._le_count_of[codes].tolist()
            self._agent_le_done = self._le_done_of[codes].tolist()
            self._agent_le_coins = self._le_coins_of[codes].tolist()
            self._agent_le_leader = self._le_leader_of[codes].tolist()
            return
        dirty = np.flatnonzero(codes != self._synced)
        if not len(dirty):
            return
        self._synced[dirty] = codes[dirty]
        agents = dirty.tolist()
        dirty_codes = codes[dirty]
        for shadow, column in zip(self._agent_lists(), self._agent_columns()):
            for agent, value in zip(agents, column[dirty_codes].tolist()):
                shadow[agent] = value

    # ------------------------------------------------------------------
    # Chunk processing
    # ------------------------------------------------------------------
    def apply_chunk(
        self,
        initiators: np.ndarray,
        responders: np.ndarray,
        columns: ColumnStore,
        rng: np.random.Generator,
    ) -> ChunkOutcome:
        self._refresh(columns)
        codes = columns.codes
        self._sync_agents(codes)
        code_u = codes[initiators]
        code_v = codes[responders]
        kind_u = self._kind[code_u]
        kind_v = self._kind[code_v]

        # --- classification: where must the vectorized prefix end? -----
        risk = (kind_u == _OTHER) | (kind_v == _OTHER)
        # A start-up-domain agent meeting a main-domain agent either joins
        # the main protocol (Protocol 3, lines 4-6) or infects it with a
        # reset — a class change either way round.
        domain_u = (kind_u == _LE) | (kind_u == _RESET)
        domain_v = (kind_v == _LE) | (kind_v == _RESET)
        risk |= domain_u != domain_v
        # Duplicate waiting agents reset on contact (Protocol 4, line 3).
        risk |= (kind_u == _WAIT) & (kind_v == _WAIT)
        # Duplicate ranks reset on contact (line 1; adversarial only).
        both_ranked = (kind_u == _RANKED) & (kind_v == _RANKED)
        risk |= both_ranked & (self._rank_of[code_u] == self._rank_of[code_v])

        # Responders carrying a coin (everyone but ranked agents) are
        # toggled every interaction, so the coin at position t is the
        # chunk-start coin XOR the parity of the agent's earlier responder
        # appearances.  Coin presence is invariant under every fast-path
        # rule, so the parity trajectory is exact for the whole prefix.
        # All phase- and state-dependent decisions are taken inside the
        # ordered loop below against the *live* values.
        coin_positions = np.flatnonzero((kind_v >= _PHASE) & (kind_v < _OTHER))
        coin_at = None
        if len(coin_positions):
            occurrence = occurrence_index(responders[coin_positions])
            coin_at = self._coin_of[code_v[coin_positions]] ^ (occurrence & 1)

        prefix = int(np.argmax(risk)) if risk.any() else len(initiators)
        if prefix == 0:
            return ChunkOutcome(0)

        # --- sequential chains, in one ordered scalar loop --------------
        # The loop's field state lives in the persistent per-agent shadow
        # (see :meth:`_sync_agents`): reads see the current codes'
        # projections, writes carry the committed chains over to the next
        # invocation.  Declined pairs must still leave no trace — every
        # decline below breaks *before* its first shadow write.
        alive = self._agent_alive
        phase_l = self._agent_phase
        dyn_kind = self._agent_kind
        reset_l = self._agent_reset
        delay_l = self._agent_delay
        le_count_l = self._agent_le_count
        le_done_l = self._agent_le_done
        le_coins_l = self._agent_le_coins
        le_leader_l = self._agent_le_leader
        touched = set()
        resets = 0
        reset_positions: list = []
        if coin_at is not None:
            in_prefix = coin_positions < prefix
            loop_positions = coin_positions[in_prefix]
        else:
            loop_positions = np.empty(0, dtype=np.int64)
        if len(loop_positions):
            lu = code_u[loop_positions]
            ku = kind_u[loop_positions]
            domain_pair = domain_v[loop_positions]
            averaging = (ku == _PHASE) | (ku == _WAIT)
            u_ranked = ku == _RANKED
            rank_u = self._rank_of[lu]
            draining = u_ranked & self._drain_rank[rank_u]
            coin_l = coin_at[in_prefix]
            opcode = (
                averaging * _OP_AVG
                + draining * _OP_DRAIN
                + (kind_v[loop_positions] == _PHASE) * _OP_PHASE_V
                + domain_pair * _OP_DOMAIN
                + coin_l * _OP_COIN
                + u_ranked * _OP_U_RANKED
                + (ku == _WAIT) * _OP_U_WAIT
            )
            ops = opcode.tolist()
            init_l = initiators[loop_positions].tolist()
            resp_l = responders[loop_positions].tolist()
            rank_l = rank_u.tolist()
            pos_l = loop_positions.tolist()
            refill = self._alive_reset
            l_max = self._l_max
            r_max = self._r_max
            d_max = self._d_max
            coins_init = self._coin_count_init
            assign_rows = self._assign_rows
            productive_rows = self._productive_rows
            bump_rank = self._bump_rank
            add = touched.add
            for index in range(len(ops)):
                op = ops[index]
                if op & _OP_DOMAIN:
                    # Start-up domain: PropagateReset and leader election.
                    # Class flips (infection, wake-up, countdown-expiry
                    # resets) stay inside the domain, so routing here was
                    # decided statically while the per-agent state is
                    # live.  All candidate values are computed before any
                    # write: a dormancy expiry re-enters leader election
                    # *within the same transition* (Protocol 3 line 1 then
                    # lines 2-3), and that follow-up step may conclude the
                    # election, in which case the whole pair is declined
                    # and must leave no trace.
                    i = init_l[index]
                    j = resp_l[index]
                    ki = dyn_kind[i]
                    kj = dyn_kind[j]
                    woke_i = woke_j = False
                    if ki == _RESET or kj == _RESET:
                        # Reset rules (Protocol 3, line 1 / Section V-A).
                        next_ki, next_kj = ki, kj
                        count_i = reset_l[i]
                        wait_i = delay_l[i]
                        count_j = reset_l[j]
                        wait_j = delay_l[j]
                        if count_i > 0 and count_j > 0:
                            count_i = count_j = (
                                count_i if count_i >= count_j else count_j
                            ) - 1
                        elif count_i > 0:
                            count_i -= 1
                            if kj != _RESET:
                                # Infect the leader-electing responder.
                                next_kj = _RESET
                                count_j = count_i
                                wait_j = d_max
                        elif count_j > 0:
                            count_j -= 1
                            if ki != _RESET:
                                next_ki = _RESET
                                count_i = count_j
                                wait_i = d_max
                        # Dormancy: initiator first, then responder.
                        if next_ki == _RESET and count_i == 0 and wait_i > 0:
                            wait_i -= 1
                            if wait_i == 0:
                                # Wake: restart leader election.
                                next_ki = _LE
                                count_i = wait_i = -1
                                woke_i = True
                        if next_kj == _RESET and count_j == 0 and wait_j > 0:
                            wait_j -= 1
                            if wait_j == 0:
                                next_kj = _LE
                                count_j = wait_j = -1
                                woke_j = True
                    else:
                        next_ki, next_kj = ki, kj
                        count_i = wait_i = count_j = wait_j = -1
                    # Protocol 3 lines 2-3: if both agents are (now) in
                    # leader election, Protocol 5 runs for the initiator.
                    le_write = False
                    if next_ki == _LE and next_kj == _LE:
                        count = l_max if woke_i else le_count_l[i]
                        done = 0 if woke_i else le_done_l[i]
                        coins = coins_init if woke_i else le_coins_l[i]
                        leader = 0 if woke_i else le_leader_l[i]
                        count = count - 1 if count > 0 else 0
                        if done != 1:
                            if not op & _OP_COIN:
                                done = 1
                            elif coins > 0:
                                coins -= 1
                            else:
                                leader = 1
                                done = 1
                        if leader == 1 and 2 * count >= l_max:
                            # Elected fast enough: the agent joins the
                            # main protocol — the walk executes this pair.
                            prefix = pos_l[index]
                            break
                        if count == 0:
                            # Countdown expired: TriggerReset (counted).
                            next_ki = _RESET
                            count_i = r_max
                            wait_i = d_max
                            resets += 1
                            reset_positions.append(pos_l[index])
                        else:
                            le_write = True
                    # Commit the pair's effects to the tracked chains.
                    if ki == _RESET or kj == _RESET or next_ki != ki:
                        dyn_kind[i] = next_ki
                        dyn_kind[j] = next_kj
                        reset_l[i] = count_i
                        delay_l[i] = wait_i
                        reset_l[j] = count_j
                        delay_l[j] = wait_j
                    if woke_j:
                        le_count_l[j] = l_max
                        le_coins_l[j] = coins_init
                        le_done_l[j] = 0
                        le_leader_l[j] = 0
                    if le_write:
                        le_count_l[i] = count
                        le_done_l[i] = done
                        le_coins_l[i] = coins
                        le_leader_l[i] = leader
                    elif woke_i and next_ki == _LE:
                        le_count_l[i] = l_max
                        le_coins_l[i] = coins_init
                        le_done_l[i] = 0
                        le_leader_l[i] = 0
                    add(i)
                    add(j)
                    continue
                # Ranking+ on a main-state pair (responder holds a coin
                # and an aliveCount).  Candidate counter values are
                # computed first and only written once the pair is known
                # to stay on the fast path — a declined pair must leave
                # no trace (the walk executes it in full).
                j = resp_l[index]
                value = alive[j]
                if op & _OP_AVG:
                    i = init_l[index]
                    other = alive[i]
                    new = (value if value >= other else other) - 1
                    if new < 0:
                        new = 0
                    shared = new
                else:
                    new = value
                    shared = -1
                if op & _OP_DRAIN and new > 0:
                    new -= 1
                if new == 0:
                    # Lines 9-11: a drained counter triggers a reset; the
                    # pair (and everything after it) goes to the walk.
                    prefix = pos_l[index]
                    break
                bump = 0
                adopt = 0
                if op & _OP_COIN:
                    # Lines 15-18: the coin shows 1, the Protocol 2 rules
                    # run.  Against a phase responder a ranked initiator
                    # may assign (walked) or announce the end of a phase
                    # (inline bump); the waiting leader counts down
                    # (walked); two phase agents adopt the maximum phase
                    # (inline).
                    if op & _OP_PHASE_V:
                        pv = phase_l[j]
                        if op & _OP_U_RANKED:
                            rank = rank_l[index]
                            if assign_rows[pv][rank]:
                                prefix = pos_l[index]
                                break
                            if rank == bump_rank[pv]:
                                bump = pv + 1
                        elif op & _OP_U_WAIT:
                            prefix = pos_l[index]
                            break
                        elif op & _OP_AVG:  # initiator is a phase agent
                            pu = phase_l[i]
                            if pu != pv:
                                adopt = pu if pu >= pv else pv
                elif op & _OP_U_WAIT or (
                    op & _OP_U_RANKED
                    and op & _OP_PHASE_V
                    and productive_rows[phase_l[j]][rank_l[index]]
                ):
                    # Lines 12-14: coin 0 on a productive pair replenishes
                    # the liveness counter.
                    if new != refill:
                        new = refill
                if shared >= 0:
                    alive[i] = shared
                    add(i)
                alive[j] = new
                add(j)
                if bump:
                    phase_l[j] = bump
                elif adopt:
                    phase_l[i] = adopt
                    phase_l[j] = adopt
        if prefix == 0:
            return ChunkOutcome(0)

        # --- commit: coins by parity, everything else from the chains ---
        if coin_at is not None:
            toggle_positions = coin_positions[coin_positions < prefix]
        else:
            toggle_positions = coin_positions
        changed = bool(len(toggle_positions))
        flips = None
        if len(toggle_positions):
            flips = np.bincount(
                responders[toggle_positions], minlength=len(codes)
            )
            touched.update(np.flatnonzero(flips & 1).tolist())
        if touched:
            commit_agents = []
            commit_codes = []
            coin_of = self._coin_of
            alive_of = self._alive_of
            phase_of = self._phase_of
            variants = self._variants
            for agent in touched:
                old_code = int(codes[agent])
                old_coin = int(coin_of[old_code])
                new_coin = old_coin
                if flips is not None and flips[agent] & 1:
                    new_coin ^= 1
                kind_now = dyn_kind[agent]
                if kind_now == _LE or kind_now == _RESET:
                    # Start-up domain: rebuild the code from the tracked
                    # field values (the domain class may have flipped).
                    if kind_now == _RESET:
                        key = (
                            old_code, _RESET, new_coin,
                            reset_l[agent], delay_l[agent],
                        )
                        new_code = variants.get(key)
                        if new_code is None:
                            count = reset_l[agent]
                            wait = delay_l[agent]
                            new_code = columns.codec.variant_code(
                                old_code,
                                coin=new_coin,
                                reset_count=None if count < 0 else count,
                                delay_count=None if wait < 0 else wait,
                                le_count=None,
                                coin_count=None,
                                leader_done=None,
                                is_leader=None,
                            )
                            variants[key] = new_code
                    else:
                        key = (
                            old_code, _LE, new_coin,
                            le_count_l[agent], le_done_l[agent],
                            le_coins_l[agent], le_leader_l[agent],
                        )
                        new_code = variants.get(key)
                        if new_code is None:
                            new_code = columns.codec.variant_code(
                                old_code,
                                coin=new_coin,
                                le_count=le_count_l[agent],
                                leader_done=le_done_l[agent],
                                coin_count=le_coins_l[agent],
                                is_leader=le_leader_l[agent],
                                reset_count=None,
                                delay_count=None,
                            )
                            variants[key] = new_code
                else:
                    old_alive = int(alive_of[old_code])
                    new_alive = alive[agent]
                    old_phase = int(phase_of[old_code])
                    new_phase = phase_l[agent]
                    if new_coin == old_coin and new_alive == old_alive and (
                        new_phase == old_phase
                    ):
                        new_code = old_code
                    else:
                        key = (old_code, new_coin, new_alive, new_phase)
                        new_code = variants.get(key)
                        if new_code is None:
                            updates = {"coin": new_coin}
                            if new_alive >= 0:
                                updates["alive_count"] = new_alive
                            if new_phase >= 1:
                                updates["phase"] = new_phase
                            new_code = columns.codec.variant_code(old_code, **updates)
                            variants[key] = new_code
                if new_code != old_code:
                    commit_agents.append(agent)
                    commit_codes.append(new_code)
            if commit_agents:
                columns.commit(commit_agents, commit_codes)
                # The shadow already holds the committed field values;
                # record the new codes so the next sync sees no drift.
                self._synced[commit_agents] = commit_codes
        if resets:
            # Resets at or past a shortened prefix were never committed.
            reset_positions = [pos for pos in reset_positions if pos < prefix]
            resets = len(reset_positions)
        return ChunkOutcome(
            prefix, changed, 0, resets, reset_positions if resets else None
        )
