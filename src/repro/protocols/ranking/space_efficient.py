"""``SpaceEfficientRanking`` — the non-self-stabilizing protocol (Theorem 1).

Protocol 1 composes a leader-election substrate with the ``Ranking`` rules of
Protocol 2:

1. While both agents are still leader-electing, they run the leader-election
   sub-protocol (lines 1–2).
2. The moment an agent holds ``isLeader = leaderDone = 1`` it forgets its
   leader-election state and becomes the unique waiting agent with counter
   ``⌈c_wait · log n⌉`` (lines 3–6).
3. A leader-electing agent meeting a non-leader-electing agent forgets its
   leader-election state and becomes a phase agent with phase 1 — the
   one-way epidemic announcing that the ranking has started (lines 7–9).
4. Two non-leader-electing agents run ``Ranking`` (lines 10–11).

The protocol is silent and reaches a valid ranking in ``O(n² log n)``
interactions w.h.p., using ``n + Θ(log n)`` states (with the leader-election
protocol of [30] as a black box; see DESIGN.md on the substitute substrate).
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ...core.configuration import Configuration
from ...core.protocol import RankingProtocol, TransitionResult
from ...core.state import AgentState
from ..leader_election.gs_leader_election import GSLeaderElection
from ..leader_election.interfaces import LeaderElectionModule
from .phases import PhaseSchedule, wait_count_init
from .rules import RankingRules

__all__ = ["SpaceEfficientRanking"]


class SpaceEfficientRanking(RankingProtocol[AgentState]):
    """The paper's non-self-stabilizing ranking protocol.

    Parameters
    ----------
    n:
        Population size (must be known exactly).
    c_wait:
        Constant of the leader's wait counter; the paper's analysis requires
        a sufficiently large constant, the paper's own simulations use 2.
    leader_election:
        The leader-election substrate.  Defaults to the GS-style substitute
        (see :mod:`repro.protocols.leader_election.gs_leader_election`).
    """

    name = "space-efficient-ranking"

    def __init__(
        self,
        n: int,
        c_wait: float = 2.0,
        leader_election: Optional[LeaderElectionModule] = None,
    ):
        super().__init__(n)
        self._c_wait = c_wait
        self._schedule = PhaseSchedule(n)
        self._wait_init = wait_count_init(n, c_wait)
        self._leader_election = leader_election or GSLeaderElection(n)
        self._rules = RankingRules(self._schedule, self._wait_init)

    # ------------------------------------------------------------------
    # Accessors used by experiments and tests
    # ------------------------------------------------------------------
    @property
    def schedule(self) -> PhaseSchedule:
        """The phase schedule ``f_k``."""
        return self._schedule

    @property
    def rules(self) -> RankingRules:
        """The Protocol 2 rules instance."""
        return self._rules

    @property
    def wait_init(self) -> int:
        """The leader's wait counter ``⌈c_wait · log n⌉``."""
        return self._wait_init

    @property
    def leader_election(self) -> LeaderElectionModule:
        """The leader-election substrate."""
        return self._leader_election

    # ------------------------------------------------------------------
    # PopulationProtocol interface
    # ------------------------------------------------------------------
    def initial_state(self) -> AgentState:
        agent = AgentState()
        self._leader_election.init_state(agent)
        return agent

    def transition(
        self,
        initiator: AgentState,
        responder: AgentState,
        rng: np.random.Generator,
    ) -> TransitionResult:
        u, v = initiator, responder
        changed = False

        # Lines 1-2: two leader-electing agents run the LE sub-protocol.
        if u.in_leader_election and v.in_leader_election:
            changed = self._leader_election.apply(u, v, rng) or changed

        # Lines 3-6: an elected, finished leader becomes the waiting agent.
        for agent in (u, v):
            if agent.is_leader == 1 and agent.leader_done == 1:
                agent.clear_leader_election()
                agent.wait_count = self._wait_init
                return TransitionResult(changed=True, label="leader_becomes_waiting")

        # Lines 7-9: a leader-electing agent meeting a non-leader-electing
        # agent joins the ranking as a phase-1 agent.
        if u.in_leader_election != v.in_leader_election:
            joining = u if u.in_leader_election else v
            joining.clear_leader_election()
            joining.phase = 1
            changed = True

        # Lines 10-11: two non-leader-electing agents run Ranking.
        if not u.in_leader_election and not v.in_leader_election:
            outcome = self._rules.apply(u, v)
            changed = changed or outcome.changed
            return TransitionResult(
                changed=changed,
                rank_assigned=outcome.rank_assigned,
                label="ranking" if outcome.changed else None,
            )
        return TransitionResult(changed=changed)

    def has_converged(self, configuration: Configuration[AgentState]) -> bool:
        return configuration.is_valid_ranking()

    def consumes_randomness(self) -> bool:
        """``True``: the GS leader-election substrate draws random tags."""
        return True

    def codec_fields(self):
        from ...core.state import AGENT_STATE_FIELDS

        return AGENT_STATE_FIELDS

    # ------------------------------------------------------------------
    # State accounting (Theorem 1)
    # ------------------------------------------------------------------
    def overhead_states(self, le_states: Optional[int] = None) -> int:
        """Number of states beyond the ``n`` rank states.

        Following the accounting in Section IV-A: ``⌈c_wait log n⌉`` wait
        states, ``⌈log n⌉`` phase states and ``2·|Q_LE|`` leader-election
        states.  ``le_states`` defaults to the paper's black-box
        ``|Q_LE| = Θ(log log n)`` bound (rounded up); pass the substitute's
        actual count to get the as-built figure.
        """
        if le_states is None:
            le_states = max(1, int(math.ceil(math.log2(max(math.log2(self.n), 2.0)))))
        return self._wait_init + self._schedule.phase_count + 2 * le_states

    def state_space_size(self) -> int:
        """Total number of states per the paper's accounting (``n + Θ(log n)``)."""
        return self.n + self.overhead_states()

    def describe(self) -> dict:
        info = super().describe()
        info.update(
            c_wait=self._c_wait,
            wait_init=self._wait_init,
            phase_count=self._schedule.phase_count,
        )
        return info
