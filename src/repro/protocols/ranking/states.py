"""State-space helpers shared by the ranking protocols.

The self-stabilizing protocol partitions agent states into the *main* states
``Q_Main`` (rank, or coin × aliveCount × (waitCount or phase)), the
leader-election states, and the reset states (Protocol 3).  The helpers in
this module implement those membership tests and the configuration-level
predicates used by the analysis (the configuration classes ``C_SR``,
``C_{k,wait}``, ``C_{k,rank}`` of Definition 5).
"""

from __future__ import annotations

from typing import Optional

from ...core.configuration import Configuration
from ...core.state import AgentState
from .phases import PhaseSchedule

__all__ = [
    "in_main_state",
    "is_productive_pair",
    "is_start_ranking_configuration",
    "is_initial_waiting_configuration",
    "is_initial_ranking_configuration",
]


def in_main_state(state: AgentState) -> bool:
    """Whether ``state`` belongs to ``Q_Main`` of Protocol 3.

    A main state is either a bare rank, or an unranked main state consisting
    of a coin, an ``aliveCount`` and either a wait counter or a phase.  States
    carrying leader-election or reset variables are not main states.
    """
    if state.in_reset or state.in_leader_election:
        return False
    if state.rank is not None:
        return True
    has_main_variable = state.wait_count is not None or state.phase is not None
    return state.alive_count is not None and has_main_variable


def is_productive_pair(
    u: AgentState, v: AgentState, schedule: PhaseSchedule
) -> bool:
    """The "productive pair" predicate of the potential-function analysis.

    A pair is productive when the protocol could make progress if the phase
    agent's coin showed 1 (Protocol 4, line 13, ignoring the coin): either
    ``u`` is waiting and ``v`` is a phase agent, or ``u`` is ranked, ``v`` is
    a phase agent and ``rank(u) ≤ ⌊n · 2^-phase(v)⌋``.
    """
    if v.phase is None:
        return False
    if u.wait_count is not None:
        return True
    if u.rank is None:
        return False
    return u.rank <= schedule.unranked_leader_threshold(v.phase)


def _unique_waiting_index(configuration: Configuration[AgentState]) -> Optional[int]:
    waiting = [
        index
        for index, state in enumerate(configuration.states)
        if state.wait_count is not None
    ]
    return waiting[0] if len(waiting) == 1 else None


def is_start_ranking_configuration(
    configuration: Configuration[AgentState], wait_init: int
) -> bool:
    """Membership test for ``C_SR`` (Lemma 3).

    A unique waiting agent with the full wait counter exists, and every other
    agent is either still leader-electing with ``isLeader = 0`` or is a phase
    agent with phase 1.
    """
    waiting_index = _unique_waiting_index(configuration)
    if waiting_index is None:
        return False
    if configuration[waiting_index].wait_count != wait_init:
        return False
    for index, state in enumerate(configuration.states):
        if index == waiting_index:
            continue
        if state.in_leader_election:
            if state.is_leader == 1:
                return False
        elif state.phase != 1:
            return False
    return True


def is_initial_waiting_configuration(
    configuration: Configuration[AgentState],
    schedule: PhaseSchedule,
    phase: int,
    wait_init: int,
) -> bool:
    """Membership test for ``C_{k,wait}`` (Definition 5.2), ``k > 1``.

    A unique waiting agent with the full counter, exactly the ranks
    ``f_k + 1 … n`` assigned (each once), all phase agents at phase at most
    ``k`` and no leader-electing agents.
    """
    waiting_index = _unique_waiting_index(configuration)
    if waiting_index is None:
        return False
    if configuration[waiting_index].wait_count != wait_init:
        return False
    expected_ranks = set(range(schedule.f(phase) + 1, schedule.n + 1))
    if sorted(configuration.assigned_ranks()) != sorted(expected_ranks):
        return False
    for state in configuration.states:
        if state.in_leader_election:
            return False
        if state.phase is not None and state.phase > phase:
            return False
    return True


def is_initial_ranking_configuration(
    configuration: Configuration[AgentState],
    schedule: PhaseSchedule,
    phase: int,
) -> bool:
    """Membership test for ``C_{k,rank}`` (Definition 5.3).

    A unique unaware leader with rank 1, exactly the ranks ``f_k + 1 … n``
    assigned to other agents, all phase agents at phase exactly ``k``, and no
    leader-electing or waiting agents.
    """
    leaders = [state for state in configuration.states if state.rank == 1]
    if len(leaders) != 1:
        return False
    other_ranks = sorted(
        state.rank
        for state in configuration.states
        if state.rank is not None and state.rank != 1
    )
    expected = list(range(schedule.f(phase) + 1, schedule.n + 1))
    if other_ranks != expected:
        return False
    for state in configuration.states:
        if state.in_leader_election or state.wait_count is not None:
            return False
        if state.phase is not None and state.phase != phase:
            return False
    return True
