"""Reusable population-protocol primitives (synthetic coin, epidemics)."""

from .one_way_epidemic import EpidemicState, OneWayEpidemicProtocol, epidemic_upper_bound
from .synthetic_coin import (
    SyntheticCoinProtocol,
    coin_counts,
    coin_imbalance,
    warmup_interactions,
)

__all__ = [
    "EpidemicState",
    "OneWayEpidemicProtocol",
    "SyntheticCoinProtocol",
    "coin_counts",
    "coin_imbalance",
    "epidemic_upper_bound",
    "warmup_interactions",
]
