"""One-way epidemics (broadcasts).

A one-way epidemic spreads a piece of information from a single initially
informed agent to the whole population (or to a designated subpopulation):
whenever the initiator of an interaction is informed, the responder becomes
informed as well.  The paper uses one-way epidemics in three places — to
start the ranking after leader election, to propagate phase increments among
the unranked agents, and (inside ``PropagateReset``) to spread resets — and
analyses them with the tail bound of Lemma 14.

This module provides a standalone epidemic protocol for tests and examples
and the corresponding analytic bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ...core.configuration import Configuration
from ...core.protocol import PopulationProtocol, TransitionResult

__all__ = [
    "EpidemicState",
    "OneWayEpidemicProtocol",
    "epidemic_upper_bound",
]


@dataclass(slots=True)
class EpidemicState:
    """State of one agent in the standalone epidemic protocol.

    Attributes
    ----------
    informed:
        Whether the agent carries the broadcast.
    active:
        Whether the agent belongs to the subpopulation that participates in
        the epidemic (the paper's epidemics among phase agents are restricted
        to the ``m`` unranked agents; inactive agents model the rest).
    rank:
        Present only so the generic :class:`Configuration` helpers work; the
        epidemic protocol itself never assigns ranks.
    """

    informed: bool = False
    active: bool = True
    rank: object = None

    def copy(self) -> "EpidemicState":
        return EpidemicState(self.informed, self.active, self.rank)


class OneWayEpidemicProtocol(PopulationProtocol[EpidemicState]):
    """One-way epidemic restricted to an ``m``-agent subpopulation.

    Parameters
    ----------
    n:
        Total population size.
    m:
        Size of the participating subpopulation (defaults to ``n``).  The
        remaining ``n - m`` agents are inert, mirroring the setting of
        Lemma 14 where ranked agents neither spread nor receive the epidemic.
    """

    name = "one-way-epidemic"

    def __init__(self, n: int, m: int | None = None):
        super().__init__(n)
        self._m = n if m is None else int(m)
        if not 1 <= self._m <= n:
            raise ValueError(f"m must be in [1, n], got m={m} with n={n}")

    @property
    def m(self) -> int:
        """Size of the participating subpopulation."""
        return self._m

    def initial_state(self) -> EpidemicState:
        return EpidemicState(informed=False, active=True)

    def initial_configuration(self) -> Configuration[EpidemicState]:
        """One informed active agent, ``m - 1`` uninformed active agents, rest inert."""
        states = [EpidemicState(informed=True, active=True)]
        states += [EpidemicState(informed=False, active=True) for _ in range(self._m - 1)]
        states += [
            EpidemicState(informed=False, active=False) for _ in range(self.n - self._m)
        ]
        return Configuration(states)

    def transition(
        self,
        initiator: EpidemicState,
        responder: EpidemicState,
        rng: np.random.Generator,
    ) -> TransitionResult:
        if (
            initiator.active
            and responder.active
            and initiator.informed
            and not responder.informed
        ):
            responder.informed = True
            return TransitionResult(changed=True, label="infect")
        return TransitionResult(changed=False)

    def has_converged(self, configuration: Configuration[EpidemicState]) -> bool:
        return all(
            state.informed for state in configuration.states if state.active
        )

    def informed_count(self, configuration: Configuration[EpidemicState]) -> int:
        """Number of informed agents in ``configuration``."""
        return sum(1 for state in configuration.states if state.informed)

    def state_space_size(self) -> int:
        return 4  # informed x active


def epidemic_upper_bound(n: int, m: int, gamma: float = 1.0) -> float:
    """Interaction bound of Lemma 14.

    With probability at least ``1 - 2·n^-gamma`` a one-way epidemic among a
    subset of ``m`` agents (one initially informed) in a population of ``n``
    agents completes within ``3·n²/m · (log m + 2·gamma·log n)`` interactions.
    """
    if not 2 <= m <= n:
        raise ValueError(f"need 2 <= m <= n, got m={m}, n={n}")
    if gamma <= 0:
        raise ValueError(f"gamma must be positive, got {gamma}")
    return 3.0 * n * n / m * (math.log(m) + 2.0 * gamma * math.log(n))
