"""One-way epidemics (broadcasts).

A one-way epidemic spreads a piece of information from a single initially
informed agent to the whole population (or to a designated subpopulation):
whenever the initiator of an interaction is informed, the responder becomes
informed as well.  The paper uses one-way epidemics in three places — to
start the ranking after leader election, to propagate phase increments among
the unranked agents, and (inside ``PropagateReset``) to spread resets — and
analyses them with the tail bound of Lemma 14.

This module provides a standalone epidemic protocol for tests and examples
and the corresponding analytic bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ...core.configuration import Configuration
from ...core.group_engine import CountGoal
from ...core.protocol import PopulationProtocol, TransitionResult

__all__ = [
    "EpidemicCountGoal",
    "EpidemicState",
    "OneWayEpidemicKernel",
    "OneWayEpidemicProtocol",
    "epidemic_upper_bound",
]


@dataclass(slots=True)
class EpidemicState:
    """State of one agent in the standalone epidemic protocol.

    Attributes
    ----------
    informed:
        Whether the agent carries the broadcast.
    active:
        Whether the agent belongs to the subpopulation that participates in
        the epidemic (the paper's epidemics among phase agents are restricted
        to the ``m`` unranked agents; inactive agents model the rest).
    rank:
        Present only so the generic :class:`Configuration` helpers work; the
        epidemic protocol itself never assigns ranks.
    """

    informed: bool = False
    active: bool = True
    rank: object = None

    def copy(self) -> "EpidemicState":
        return EpidemicState(self.informed, self.active, self.rank)


class OneWayEpidemicProtocol(PopulationProtocol[EpidemicState]):
    """One-way epidemic restricted to an ``m``-agent subpopulation.

    Parameters
    ----------
    n:
        Total population size.
    m:
        Size of the participating subpopulation (defaults to ``n``).  The
        remaining ``n - m`` agents are inert, mirroring the setting of
        Lemma 14 where ranked agents neither spread nor receive the epidemic.
    """

    name = "one-way-epidemic"

    def __init__(self, n: int, m: int | None = None):
        super().__init__(n)
        self._m = n if m is None else int(m)
        if not 1 <= self._m <= n:
            raise ValueError(f"m must be in [1, n], got m={m} with n={n}")

    @property
    def m(self) -> int:
        """Size of the participating subpopulation."""
        return self._m

    def initial_state(self) -> EpidemicState:
        return EpidemicState(informed=False, active=True)

    def initial_configuration(self) -> Configuration[EpidemicState]:
        """One informed active agent, ``m - 1`` uninformed active agents, rest inert."""
        states = [EpidemicState(informed=True, active=True)]
        states += [EpidemicState(informed=False, active=True) for _ in range(self._m - 1)]
        states += [
            EpidemicState(informed=False, active=False) for _ in range(self.n - self._m)
        ]
        return Configuration(states)

    def transition(
        self,
        initiator: EpidemicState,
        responder: EpidemicState,
        rng: np.random.Generator,
    ) -> TransitionResult:
        if (
            initiator.active
            and responder.active
            and initiator.informed
            and not responder.informed
        ):
            responder.informed = True
            return TransitionResult(changed=True, label="infect")
        return TransitionResult(changed=False)

    def has_converged(self, configuration: Configuration[EpidemicState]) -> bool:
        return all(
            state.informed for state in configuration.states if state.active
        )

    def state_converged(self, state: EpidemicState) -> bool:
        """Screen: an active uninformed agent rules out convergence."""
        return state.informed or not state.active

    def informed_count(self, configuration: Configuration[EpidemicState]) -> int:
        """Number of informed agents in ``configuration``."""
        return sum(1 for state in configuration.states if state.informed)

    def state_space_size(self) -> int:
        return 4  # informed x active

    def consumes_randomness(self) -> bool:
        """Infection is a deterministic function of the two states."""
        return False

    def codec_fields(self):
        return ("informed", "active")

    def count_goal(self, codec):
        """Completion over counts: every active agent is informed."""
        return EpidemicCountGoal()

    def count_profile(self):
        """The three distinct states of the designated initial configuration."""
        profile = [(EpidemicState(informed=True, active=True), 1)]
        if self._m > 1:
            profile.append((EpidemicState(informed=False, active=True), self._m - 1))
        if self.n > self._m:
            profile.append(
                (EpidemicState(informed=False, active=False), self.n - self._m)
            )
        return profile

    def vectorized_kernel(self, codec):
        """The epidemic SoA kernel — the simplest exemplar of the hook."""
        return OneWayEpidemicKernel()


class EpidemicCountGoal(CountGoal):
    """Epidemic completion read off state counts.

    ``measure()`` counts informed active agents, ``target()`` the active
    subpopulation — both linear in the counts, and the number of active
    agents is invariant under the transition, so the target is constant.
    """

    def __init__(self):
        self._informed_active = 0
        self._active = 0

    def on_count(self, state: EpidemicState, delta: int) -> None:
        if state.active:
            self._active += delta
            if state.informed:
                self._informed_active += delta

    def measure(self) -> int:
        return self._informed_active

    def target(self) -> int:
        return self._active


class OneWayEpidemicKernel:
    """Struct-of-arrays kernel for the one-way epidemic.

    The exemplar :class:`~repro.core.soa.VectorizedKernel`: the epidemic's
    only effect is monotone (``informed`` flips to ``True`` and stays), so
    a whole chunk resolves as a time-respecting reachability fixpoint —
    agent ``v`` is informed after the chunk iff some pair ``(u, v)`` at
    position ``t`` had ``u`` informed strictly before ``t``.  Iterating
    the earliest-infection-time relaxation converges in at most the depth
    of the chunk's infection forest (a handful of rounds) and consumes
    every chunk completely; the kernel never defers to the walk.
    """

    _COLUMNS = ("informed", "active")

    def __init__(self):
        self._classified = 0
        self._informed = np.empty(0, dtype=bool)
        self._active = np.empty(0, dtype=bool)

    def columns(self):
        return self._COLUMNS

    def _refresh(self, store) -> None:
        from ...core.soa import grow_column

        size = store.refresh()
        start = self._classified
        if size <= start:
            return
        self._informed = grow_column(self._informed, start, size, minimum=8)
        self._active = grow_column(self._active, start, size, minimum=8)
        window = slice(start, size)
        self._informed[window] = store.column("informed")[window] > 0
        self._active[window] = store.column("active")[window] > 0
        self._classified = size

    def apply_chunk(self, initiators, responders, columns, rng):
        from ...core.soa import ChunkOutcome

        self._refresh(columns)
        codes = columns.codes
        informed = self._informed[codes]
        active = self._active[codes]
        total = len(initiators)
        live = active[initiators] & active[responders]
        if not live.any():
            return ChunkOutcome(total)
        positions = np.flatnonzero(live)
        pair_u = initiators[positions]
        pair_v = responders[positions]
        never = total + 1
        infection_time = np.where(informed, np.int64(-1), np.int64(never))
        while True:
            spreads = (infection_time[pair_u] < positions) & (
                infection_time[pair_v] > positions
            )
            if not spreads.any():
                break
            np.minimum.at(infection_time, pair_v[spreads], positions[spreads])
        newly = np.flatnonzero((infection_time >= 0) & (infection_time < never))
        if not len(newly):
            return ChunkOutcome(total)
        new_codes = [
            columns.variant(int(codes[agent]), informed=True)
            for agent in newly.tolist()
        ]
        columns.commit(newly.tolist(), new_codes)
        return ChunkOutcome(total, changed=True)


def epidemic_upper_bound(n: int, m: int, gamma: float = 1.0) -> float:
    """Interaction bound of Lemma 14.

    With probability at least ``1 - 2·n^-gamma`` a one-way epidemic among a
    subset of ``m`` agents (one initially informed) in a population of ``n``
    agents completes within ``3·n²/m · (log m + 2·gamma·log n)`` interactions.
    """
    if not 2 <= m <= n:
        raise ValueError(f"need 2 <= m <= n, got m={m}, n={n}")
    if gamma <= 0:
        raise ValueError(f"gamma must be positive, got {gamma}")
    return 3.0 * n * n / m * (math.log(m) + 2.0 * gamma * math.log(n))
