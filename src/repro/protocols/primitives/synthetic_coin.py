"""The synthetic coin primitive.

The self-stabilizing protocol needs randomness that is *part of the state*
rather than drawn fresh in every transition: each unranked agent carries a
bit ``coin(v)`` that is toggled on every activation (Protocol 3, lines 9–10).
After a warm-up of ``O(n log log n)`` interactions the coins of the
population are close to a balanced Bernoulli source (cf. Alistarh et al.
[2] / Berenbrink et al. [14]), so "observe the partner's coin" behaves like a
fair coin flip.

This module provides helpers to query coin balance and a tiny standalone
protocol used by the unit tests to verify the balance property empirically.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from ...core.configuration import Configuration
from ...core.protocol import PopulationProtocol, TransitionResult
from ...core.state import AgentState

__all__ = [
    "coin_counts",
    "coin_imbalance",
    "warmup_interactions",
    "SyntheticCoinProtocol",
]


def coin_counts(states: Iterable[AgentState]) -> tuple[int, int]:
    """Return ``(zeros, ones)`` over all agents that carry a coin."""
    zeros = 0
    ones = 0
    for state in states:
        if state.coin == 0:
            zeros += 1
        elif state.coin == 1:
            ones += 1
    return zeros, ones


def coin_imbalance(states: Iterable[AgentState]) -> int:
    """Absolute difference between the number of 1-coins and 0-coins.

    The leader-election entry condition ``C_LE`` (Definition 29) requires this
    to be at most ``n / (4 log n)``.
    """
    zeros, ones = coin_counts(states)
    return abs(ones - zeros)


def warmup_interactions(n: int) -> int:
    """Number of interactions after which coins are balanced w.h.p.

    Lemma 28 (following [14]) holds for any interaction count of at least
    ``n·log(4·log n)/2``; we round up and guard small populations.
    """
    if n < 2:
        raise ValueError(f"population size must be at least 2, got {n}")
    log_n = max(math.log2(n), 1.0)
    return int(math.ceil(n * math.log(4.0 * log_n) / 2.0))


class SyntheticCoinProtocol(PopulationProtocol[AgentState]):
    """A protocol that only toggles the responder's coin.

    Used by tests and examples to study the warm-up behaviour of the coin in
    isolation.  Every agent starts with ``coin = 0`` (the worst case for the
    balance property) and the responder toggles its coin on each interaction,
    exactly like line 10 of Protocol 3.
    """

    name = "synthetic-coin"

    def initial_state(self) -> AgentState:
        return AgentState(coin=0)

    def transition(
        self,
        initiator: AgentState,
        responder: AgentState,
        rng: np.random.Generator,
    ) -> TransitionResult:
        responder.toggle_coin()
        return TransitionResult(changed=True, label="coin_toggle")

    def has_converged(self, configuration: Configuration[AgentState]) -> bool:
        """The coin protocol never terminates; convergence means balance."""
        n = configuration.population_size
        threshold = max(1.0, n / (4.0 * max(math.log2(n), 1.0)))
        return coin_imbalance(configuration.states) <= threshold

    def state_space_size(self) -> int:
        return 2
