"""Protocol implementations: the paper's ranking protocols and their substrates."""
