"""Experiment harness: repeated, seeded runs and parameter sweeps.

Every experiment in this repository follows the same pattern — build a
protocol, build an initial configuration, run the simulator to convergence
(or to a milestone), repeat over independent seeds, and summarize — so the
harness factors that pattern out once.  Experiment drivers
(:mod:`repro.experiments.figure2`, …) only provide factories and decide what
to extract from each run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..core import backends as _backends
from ..core.array_engine import EngineCache
from ..core.configuration import Configuration
from ..core.errors import ExperimentError
from ..core.protocol import PopulationProtocol
from ..core.rng import RandomState, spawn_seeds
from ..core.simulation import SimulationResult, Simulator
from ..analysis.statistics import RunSummary, summarize

__all__ = ["RunRecord", "SweepResult", "ExperimentRunner"]

ProtocolFactory = Callable[[], PopulationProtocol]
ConfigurationFactory = Callable[[PopulationProtocol], Configuration]


@dataclass
class RunRecord:
    """One simulation run inside an experiment."""

    protocol: str
    n: int
    seed_index: int
    converged: bool
    interactions: int
    resets: int
    extras: Dict[str, float] = field(default_factory=dict)

    @property
    def normalized_interactions(self) -> float:
        """Interactions divided by ``n²``."""
        return self.interactions / float(self.n * self.n)

    def as_dict(self) -> dict:
        row = {
            "protocol": self.protocol,
            "n": self.n,
            "seed_index": self.seed_index,
            "converged": self.converged,
            "interactions": self.interactions,
            "normalized_interactions": self.normalized_interactions,
            "resets": self.resets,
        }
        row.update(self.extras)
        return row


@dataclass
class SweepResult:
    """All runs of one experiment plus per-group summaries."""

    records: List[RunRecord]

    def group_by_n(self) -> Dict[int, List[RunRecord]]:
        groups: Dict[int, List[RunRecord]] = {}
        for record in self.records:
            groups.setdefault(record.n, []).append(record)
        return groups

    def summary_by_n(self, key: Callable[[RunRecord], float]) -> Dict[int, RunSummary]:
        """Summaries of ``key(record)`` per population size."""
        return {
            n: summarize([key(record) for record in records])
            for n, records in sorted(self.group_by_n().items())
        }

    def convergence_rate(self) -> float:
        """Fraction of runs that converged."""
        if not self.records:
            return 0.0
        return sum(record.converged for record in self.records) / len(self.records)

    def rows(self) -> List[dict]:
        """All records as flat dictionaries (for CSV export)."""
        return [record.as_dict() for record in self.records]


class ExperimentRunner:
    """Runs a protocol repeatedly with independent seeds.

    Parameters
    ----------
    protocol_factory:
        Builds a fresh protocol instance per run (protocol instances carry
        mutable diagnostics, so they are not shared across runs).
    configuration_factory:
        Builds the initial configuration for a given protocol instance;
        defaults to the protocol's designated initial configuration.
    max_interactions:
        Interaction budget per run.
    random_state:
        Master seed; per-run seeds are spawned deterministically from it.
    engine:
        An agent-level backend name from :mod:`repro.core.backends`
        (``"reference"``, the default, or ``"array"``), or ``"auto"`` to
        negotiate the fastest capable backend per protocol through the
        registry.  The array engine shares one
        :class:`~repro.core.array_engine.EngineCache` across the
        repetitions — sound because the factory builds identically
        parameterized protocols — so the transition tabulation is paid once
        per sweep instead of once per run.
    """

    def __init__(
        self,
        protocol_factory: ProtocolFactory,
        configuration_factory: Optional[ConfigurationFactory] = None,
        max_interactions: int = 10_000_000,
        random_state: RandomState = 0,
        engine: str = "reference",
    ):
        if max_interactions < 1:
            raise ExperimentError("max_interactions must be positive")
        agent_choices = tuple(
            name for name in _backends.backend_names()
            if _backends.get_backend(name).kind == "agent"
        ) + (_backends.AUTO_ENGINE,)
        if engine not in agent_choices:
            raise ExperimentError(
                f"unknown engine {engine!r}; expected one of {agent_choices}"
            )
        self._protocol_factory = protocol_factory
        self._configuration_factory = configuration_factory or (
            lambda protocol: protocol.initial_configuration()
        )
        self._max_interactions = max_interactions
        self._random_state = random_state
        self._engine = engine
        self._engine_cache: Optional[EngineCache] = None

    @property
    def engine(self) -> str:
        """The simulation engine used for the runs."""
        return self._engine

    def _build_simulator(self, protocol, configuration, rng):
        backend, _ = _backends.resolve_backend(
            protocol, "fresh", protocol.n,
            engine=self._engine, kinds=("agent",),
        )
        cache = None
        if backend.uses_cache:
            if self._engine_cache is None:
                self._engine_cache = EngineCache()
            cache = self._engine_cache
        return backend.create(
            protocol, configuration=configuration, random_state=rng, cache=cache
        )

    def run(
        self,
        repetitions: int,
        stop_on_convergence: bool = True,
        extras: Optional[Callable[[SimulationResult, Simulator], Dict[str, float]]] = None,
    ) -> SweepResult:
        """Execute ``repetitions`` independent runs and collect records."""
        if repetitions < 1:
            raise ExperimentError("repetitions must be positive")
        seeds = spawn_seeds(self._random_state, repetitions)
        records: List[RunRecord] = []
        for index, seed in enumerate(seeds):
            protocol = self._protocol_factory()
            configuration = self._configuration_factory(protocol)
            simulator = self._build_simulator(
                protocol, configuration, np.random.default_rng(seed)
            )
            result = simulator.run(
                max_interactions=self._max_interactions,
                stop_on_convergence=stop_on_convergence,
            )
            extra_values = extras(result, simulator) if extras is not None else {}
            records.append(
                RunRecord(
                    protocol=protocol.name,
                    n=protocol.n,
                    seed_index=index,
                    converged=result.converged,
                    interactions=result.interactions,
                    resets=result.resets,
                    extras=extra_values,
                )
            )
        return SweepResult(records)

    def run_until(
        self,
        repetitions: int,
        predicate: Callable[[Configuration], bool],
    ) -> SweepResult:
        """Like :meth:`run`, but each run stops when ``predicate`` holds."""
        if repetitions < 1:
            raise ExperimentError("repetitions must be positive")
        seeds = spawn_seeds(self._random_state, repetitions)
        records: List[RunRecord] = []
        for index, seed in enumerate(seeds):
            protocol = self._protocol_factory()
            configuration = self._configuration_factory(protocol)
            simulator = self._build_simulator(
                protocol, configuration, np.random.default_rng(seed)
            )
            result = simulator.run_until(
                predicate, max_interactions=self._max_interactions
            )
            records.append(
                RunRecord(
                    protocol=protocol.name,
                    n=protocol.n,
                    seed_index=index,
                    converged=result.converged,
                    interactions=result.interactions,
                    resets=result.resets,
                )
            )
        return SweepResult(records)
