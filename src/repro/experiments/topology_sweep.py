"""Topology sweep — stabilization across interaction topologies vs complete.

The paper's schedulers draw uniform pairs from the complete interaction
graph; the topology subsystem (:mod:`repro.topologies`) restricts the
sampler to a named family instead.  This preset measures how the
restriction changes stabilization: it runs the one-way epidemic — the
primitive whose completion time the paper's Lemma 14 bounds on the
complete graph — on each requested topology family plus the complete
baseline, and renders the measured interaction counts against the exact
expectations and the Herman-style ring band from
:mod:`repro.analysis.theory`.

The epidemic is the right probe because its spread time is topology
sensitive in a way the theory pins down exactly: ``2(n-1)·H(n-1)``
(``Θ(n log n)``) on the complete graph versus ``n(n-1)`` (``Θ(n²)``) on
the ring, with the Herman self-stabilization bounds ``[4n²/27, 0.64·n²]``
bracketing the same ``Θ(n²)`` ring regime.  (The ranking protocols
themselves rely on complete-graph mixing and generally do not stabilize
under a restricted topology — measuring that non-convergence is a
different experiment.)

Restricted-topology cells are agent level by construction: the
aggregate and group-count engines decline them during capability
negotiation, so ``engine="auto"`` resolves every restricted cell to a
concrete agent-level backend (see ``docs/topologies.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.statistics import summarize
from ..analysis.theory import (
    complete_epidemic_expected_interactions,
    herman_ring_conjectured_bound,
    herman_ring_upper_bound,
    ring_epidemic_expected_interactions,
)
from ..core.errors import ExperimentError
from ..topologies import topology_names
from .ascii_plot import format_table
from .study import ExperimentSpec, ResultSet

__all__ = [
    "TopologySweepResult",
    "topology_sweep_specs",
    "topology_sweep_result_from_rows",
    "format_topology_sweep",
    "SWEEP_TOPOLOGIES",
    "SWEEP_POPULATION_SIZES",
]

#: Restricted families swept by default, next to the complete baseline.
SWEEP_TOPOLOGIES = ("ring", "grid2d", "power_law")

#: Default population sizes — small enough for the Θ(n²) ring regime to
#: finish quickly at agent level, large enough for the shapes to separate.
SWEEP_POPULATION_SIZES = (16, 32, 64)

#: The complete-graph baseline variant every sweep includes.
BASELINE = "complete"


def _expected_interactions(topology: str, n: int) -> Optional[float]:
    """Exact expected epidemic completion where the theory pins it down."""
    if topology == BASELINE:
        return complete_epidemic_expected_interactions(n)
    if topology == "ring":
        return ring_epidemic_expected_interactions(n)
    return None


@dataclass
class TopologySweepResult:
    """Epidemic completion times per (topology, population size)."""

    topologies: Sequence[str]
    n_values: Sequence[int]
    repetitions: int
    engine: str
    #: interactions[topology][n] = completion interactions, one per run.
    interactions: Dict[str, Dict[int, List[int]]] = field(default_factory=dict)

    def mean(self, topology: str, n: int) -> float:
        return summarize(self.interactions[topology][n]).mean

    def rows(self) -> List[dict]:
        rows = []
        for topology in self.topologies:
            for n in self.n_values:
                raw = summarize(self.interactions[topology][n])
                expected = _expected_interactions(topology, n)
                row = {
                    "topology": topology,
                    "n": n,
                    "mean_interactions": raw.mean,
                    "mean_over_n2": raw.mean / (n * n),
                    "vs_complete": raw.mean / self.mean(BASELINE, n),
                    "expected": expected,
                    "mean_over_expected": (
                        raw.mean / expected if expected else None
                    ),
                    "runs": raw.count,
                }
                rows.append(row)
        return rows

    def herman_band_lines(self) -> List[str]:
        """The Herman ring band next to the measured ring means."""
        if "ring" not in self.topologies:
            return []
        lines = [
            "",
            "Herman ring band (Θ(n²) self-stabilization bounds bracketing "
            "the ring regime):",
        ]
        for n in self.n_values:
            low = herman_ring_conjectured_bound(n)
            high = herman_ring_upper_bound(n)
            measured = self.mean("ring", n)
            lines.append(
                f"  n={n:<6} measured ring mean {measured:>12.1f}   "
                f"4n²/27 = {low:>10.1f}   0.64n² = {high:>10.1f}   "
                f"measured/n² = {measured / (n * n):.3f}"
            )
        return lines


def topology_sweep_specs(
    topologies: Sequence[str] = SWEEP_TOPOLOGIES,
    n_values: Sequence[int] = SWEEP_POPULATION_SIZES,
    repetitions: int = 10,
    engine: str = "auto",
    max_interactions_factor: float = 50.0,
    random_state: int = 0,
) -> Tuple[ExperimentSpec, ...]:
    """The topology sweep as declarative specs: complete baseline first,
    then one variant per restricted family.

    ``engine="auto"`` routes the complete baseline through the normal
    negotiation and every restricted cell to a concrete agent-level
    backend (aggregate/group decline topology-restricted cells).  The
    interaction budget is ``max_interactions_factor · n²`` — the ring
    epidemic completes in ``n(n-1)`` expected interactions, so the
    default factor of 50 leaves a wide w.h.p. margin.
    """
    if not topologies:
        raise ExperimentError("topology sweep needs at least one topology")
    known = set(topology_names())
    specs = []
    seen = set()
    for topology in (BASELINE, *topologies):
        if topology in seen:
            continue
        seen.add(topology)
        if topology not in known:
            raise ExperimentError(
                f"unknown topology {topology!r}; choices: "
                f"{', '.join(topology_names())}"
            )
        specs.append(
            ExperimentSpec(
                variant=topology,
                protocol="one-way-epidemic",
                n_values=tuple(n_values),
                seeds=repetitions,
                engine=engine,
                workload="fresh",
                topology=None if topology == BASELINE else topology,
                max_interactions_factor=float(max_interactions_factor),
                random_state=random_state,
            )
        )
    return tuple(specs)


def topology_sweep_result_from_rows(result: ResultSet) -> TopologySweepResult:
    """Collect the study rows into a :class:`TopologySweepResult`."""
    spec = result.specs[0]
    topologies = tuple(s.variant for s in result.specs)
    engines = sorted({row.engine for row in result.rows}) or [spec.engine]
    out = TopologySweepResult(
        topologies=topologies,
        n_values=tuple(spec.n_values),
        repetitions=spec.seeds,
        engine="/".join(engines),
    )
    for topology in topologies:
        per_n: Dict[int, List[int]] = {}
        for n in spec.n_values:
            times: List[int] = []
            for row in result.filter(variant=topology, n=n).rows:
                if not row.converged:
                    raise ExperimentError(
                        f"epidemic on topology {topology!r} for n={n} "
                        f"(seed {row.seed_index}) did not complete within "
                        f"budget"
                    )
                times.append(row.interactions)
            per_n[n] = times
        out.interactions[topology] = per_n
    return out


def format_topology_sweep(result: TopologySweepResult) -> str:
    """Text table: measured completion per topology vs the exact theory.

    The ``expected`` column is the exact expectation where the theory
    pins it down (``2(n-1)·H(n-1)`` complete, ``n(n-1)`` ring); the
    Herman band lines below bracket the ring's ``Θ(n²)`` regime.
    """
    header = (
        f"Topology sweep — one-way epidemic completion interactions per "
        f"interaction topology ({result.engine} engine, "
        f"{result.repetitions} runs per cell).  'expected' is the exact "
        f"expectation where known; 'vs_complete' is the slowdown against "
        f"the complete-graph baseline."
    )
    body = format_table(result.rows())
    return "\n".join([header, body, *result.herman_band_lines()])
