"""Experiment E7 — recovery under periodic mid-run fault injection.

Where the fault-injection experiment (:mod:`repro.experiments
.fault_injection`) perturbs the *initial* configuration only, this preset
exercises the full strength of Theorem 2: an event-bearing scenario
(:mod:`repro.scenarios`) fires deterministic perturbations — duplicate
ranks, agent crashes, adversarial re-scrambles, population churn — every
``period_factor · n²`` interactions of a live run, and the study records
per-event *recovery times*: the number of interactions until the
population is back in a clean legal configuration after each injection.

Rows carry the segment accounting produced by the engines' segmented
runs: ``events_fired`` / ``events_recovered`` / ``mean_recovery_
interactions`` extras plus ``converged_initial`` and ``event<k>_recovered``
milestones.  Every engine answering ``supports_events`` runs these cells,
and array-engine cells are bit-identical to the reference for the same
seed despite the mid-run events.

Run it with ``python -m repro run fault_storm`` (``--scenario`` switches
the event family, e.g. ``--scenario churn``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..core.errors import ExperimentError
from ..scenarios import EVENTS, get_scenario
from .ascii_plot import format_table
from .study import ExperimentSpec, ResultSet

__all__ = [
    "FaultStormResult",
    "STORM_FAULTS",
    "fault_storm_specs",
    "fault_storm_result_from_rows",
    "format_fault_storm",
]

#: Default event kinds injected by the ``fault_storm`` preset (one study
#: variant each).
STORM_FAULTS = ("duplicate_rank", "crash_reset", "scramble")


@dataclass
class FaultStormResult:
    """Per-variant recovery statistics under periodic fault injection."""

    n_values: Sequence[int]
    repetitions: int
    scenario: str = "fault_storm"
    # cells[(variant, n)] = list of per-run (fired, recovered, mean_recovery).
    cells: Dict[tuple, List[Tuple[int, int, float]]] = field(
        default_factory=dict
    )

    def rows(self) -> List[dict]:
        rows = []
        for (variant, n), samples in sorted(
            self.cells.items(), key=lambda kv: (kv[0][1], kv[0][0])
        ):
            fired = sum(sample[0] for sample in samples)
            recovered = sum(sample[1] for sample in samples)
            # Pool per-event: each run's mean is weighted by how many
            # events it recovered, so this column and recovered_fraction
            # aggregate over the same per-event population.
            mean_recovery = (
                sum(sample[1] * sample[2] for sample in samples) / recovered
                if recovered else 0.0
            )
            rows.append(
                {
                    "variant": variant,
                    "n": n,
                    "events_fired": fired,
                    "recovered_fraction": (
                        recovered / fired if fired else 0.0
                    ),
                    "mean_recovery_over_n2": mean_recovery / (n * n),
                    "runs": len(samples),
                }
            )
        return rows


def fault_storm_specs(
    n_values: Sequence[int] = (32, 64),
    repetitions: int = 3,
    scenario: str = "fault_storm",
    faults: Sequence[str] = STORM_FAULTS,
    events: int = 3,
    period_factor: float = 80.0,
    max_interactions_factor: float | None = None,
    l_max: int | None = None,
    engine: str = "auto",
    random_state: int = 0,
) -> Tuple[ExperimentSpec, ...]:
    """The fault-storm study: event-bearing scenarios over ``StableRanking``.

    With the default ``fault_storm`` scenario the study is one variant per
    event kind in ``faults``; other event-bearing scenarios (e.g.
    ``churn``) yield a single variant parameterized by ``events`` and
    ``period_factor``.  The default interaction budget leaves one extra
    period after the last event for the final recovery.
    """
    scn = get_scenario(scenario)
    if scn.is_static:
        raise ExperimentError(
            f"scenario {scenario!r} fires no events; use "
            "`python -m repro run fault_injection` for one-shot faults"
        )
    events = int(events)
    if max_interactions_factor is None:
        max_interactions_factor = float(period_factor) * (events + 2)
    params = {} if l_max is None else {"l_max": l_max}
    if scenario == "fault_storm":
        for fault in faults:
            if fault not in EVENTS:
                raise ExperimentError(f"unknown event kind {fault!r}")
        variants = [
            (
                f"storm_{fault}",
                {
                    "fault": fault,
                    "events": events,
                    "period_factor": float(period_factor),
                },
            )
            for fault in faults
        ]
    else:
        variants = [
            (
                scenario,
                {"events": events, "period_factor": float(period_factor)},
            )
        ]
    return tuple(
        ExperimentSpec(
            variant=variant,
            protocol="stable-ranking",
            n_values=tuple(n_values),
            seeds=repetitions,
            engine=engine,
            scenario=scenario,
            scenario_params=scenario_params,
            protocol_params=params,
            max_interactions_factor=float(max_interactions_factor),
            random_state=random_state,
        )
        for variant, scenario_params in variants
    )


def fault_storm_result_from_rows(result: ResultSet) -> FaultStormResult:
    """Aggregate a fault-storm result set into per-variant recovery stats."""
    if not result.specs:
        return FaultStormResult(n_values=(), repetitions=0)
    first = result.specs[0]
    out = FaultStormResult(
        n_values=tuple(first.n_values),
        repetitions=first.seeds,
        scenario=first.scenario or "fault_storm",
    )
    for spec in result.specs:
        for n in spec.n_values:
            rows = result.filter(variant=spec.variant, n=n).rows
            out.cells[(spec.variant, n)] = [
                (
                    int(row.extras.get("events_fired", 0.0)),
                    int(row.extras.get("events_recovered", 0.0)),
                    float(row.extras.get("mean_recovery_interactions", 0.0)),
                )
                for row in rows
            ]
    return out


def format_fault_storm(result: FaultStormResult) -> str:
    """Render the fault-storm study as a text table."""
    header = (
        f"Fault-storm recovery — StableRanking under the "
        f"{result.scenario!r} scenario ({result.repetitions} runs per "
        f"cell).  Each event should be recovered from within "
        f"O(n² log n) interactions."
    )
    return header + "\n" + format_table(result.rows())
