"""Experiment drivers reproducing the paper's evaluation (and extensions)."""

from .ascii_plot import ascii_plot, format_table
from .comparison import ComparisonResult, format_comparison, run_comparison
from .fault_injection import (
    FaultInjectionResult,
    format_fault_injection,
    run_fault_injection,
)
from .figure2 import Figure2Result, format_figure2, run_figure2
from .figure3 import (
    PAPER_FRACTIONS,
    Figure3Result,
    format_figure3,
    run_figure3,
)
from .harness import ExperimentRunner, RunRecord, SweepResult
from .recording import default_results_dir, read_csv, write_csv, write_json
from .scaling import ScalingResult, format_scaling, run_scaling
from .workloads import (
    adversarial_configuration,
    duplicate_rank_configuration,
    figure2_initial_configuration,
    figure3_initial_configuration,
    fresh_configuration,
    missing_rank_configuration,
    valid_ranking_configuration,
)

__all__ = [
    "ComparisonResult",
    "ExperimentRunner",
    "FaultInjectionResult",
    "Figure2Result",
    "Figure3Result",
    "PAPER_FRACTIONS",
    "RunRecord",
    "ScalingResult",
    "SweepResult",
    "adversarial_configuration",
    "ascii_plot",
    "default_results_dir",
    "duplicate_rank_configuration",
    "figure2_initial_configuration",
    "figure3_initial_configuration",
    "format_comparison",
    "format_fault_injection",
    "format_figure2",
    "format_figure3",
    "format_scaling",
    "format_table",
    "fresh_configuration",
    "missing_rank_configuration",
    "read_csv",
    "run_comparison",
    "run_fault_injection",
    "run_figure2",
    "run_figure3",
    "run_scaling",
    "valid_ranking_configuration",
    "write_csv",
    "write_json",
]
