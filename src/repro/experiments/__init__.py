"""Experiment layer: declarative studies plus the paper's figure presets.

The center of the package is the study API (:mod:`repro.experiments.study`):
an :class:`ExperimentSpec` declares a protocol, workload, engine, seed plan
and measurements as plain data; a :class:`Study` expands specs into a
``variants × n × seeds`` cell matrix, executes it (optionally across worker
processes), persists every finished cell through a :class:`ResultStore`,
and returns one unified :class:`ResultSet`.  The paper's figures are thin
presets over that API — as spec builders (``figure2_specs``, …), as
deprecated legacy shims (``run_figure2``, …) and as the ``python -m
repro`` command line (:mod:`repro.experiments.cli`).
"""

from .ascii_plot import ascii_plot, format_table
from .comparison import (
    ComparisonResult,
    comparison_result_from_rows,
    comparison_specs,
    format_comparison,
    run_comparison,
)
from .fault_injection import (
    FaultInjectionResult,
    fault_injection_result_from_rows,
    fault_injection_specs,
    format_fault_injection,
    run_fault_injection,
)
from .fault_storm import (
    FaultStormResult,
    fault_storm_result_from_rows,
    fault_storm_specs,
    format_fault_storm,
)
from .figure2 import (
    Figure2Result,
    figure2_result_from_rows,
    figure2_specs,
    format_figure2,
    run_figure2,
)
from .figure3 import (
    PAPER_FRACTIONS,
    Figure3Result,
    figure3_result_from_rows,
    figure3_specs,
    format_figure3,
    run_figure3,
)
from .harness import ExperimentRunner, RunRecord, SweepResult
from .recording import default_results_dir, read_csv, write_csv, write_json
from .scaling import (
    ScalingResult,
    format_scaling,
    run_scaling,
    scaling_result_from_rows,
    scaling_specs,
)
from .store import ResultStore
from .study import (
    EXTRACTORS,
    PROTOCOLS,
    WORKLOADS,
    ExperimentSpec,
    ResultSet,
    RunRow,
    Study,
)
from .workloads import (
    adversarial_configuration,
    adversarial_state,
    duplicate_rank_configuration,
    figure2_initial_configuration,
    figure3_initial_configuration,
    fresh_configuration,
    missing_rank_configuration,
    valid_ranking_configuration,
)

__all__ = [
    "ComparisonResult",
    "EXTRACTORS",
    "ExperimentRunner",
    "ExperimentSpec",
    "FaultInjectionResult",
    "FaultStormResult",
    "Figure2Result",
    "Figure3Result",
    "PAPER_FRACTIONS",
    "PROTOCOLS",
    "ResultSet",
    "ResultStore",
    "RunRecord",
    "RunRow",
    "ScalingResult",
    "Study",
    "SweepResult",
    "WORKLOADS",
    "adversarial_configuration",
    "adversarial_state",
    "ascii_plot",
    "comparison_result_from_rows",
    "comparison_specs",
    "default_results_dir",
    "duplicate_rank_configuration",
    "fault_injection_result_from_rows",
    "fault_injection_specs",
    "fault_storm_result_from_rows",
    "fault_storm_specs",
    "figure2_initial_configuration",
    "figure2_result_from_rows",
    "figure2_specs",
    "figure3_initial_configuration",
    "figure3_result_from_rows",
    "figure3_specs",
    "format_comparison",
    "format_fault_injection",
    "format_fault_storm",
    "format_figure2",
    "format_figure3",
    "format_scaling",
    "format_table",
    "fresh_configuration",
    "missing_rank_configuration",
    "read_csv",
    "run_comparison",
    "run_fault_injection",
    "run_figure2",
    "run_figure3",
    "run_scaling",
    "scaling_result_from_rows",
    "scaling_specs",
    "valid_ranking_configuration",
    "write_csv",
    "write_json",
]
