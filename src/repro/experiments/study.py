"""Declarative study API: one spec, a run matrix, one result schema.

The paper's evaluation is statistical — convergence and milestone times
over many independent seeded runs, across population sizes, protocols and
engines — so the experiment layer treats ``variants × n × seeds`` as a
first-class object instead of a hand-rolled loop per figure:

* an :class:`ExperimentSpec` *names* everything a run needs — a protocol
  factory and its parameters, a workload (initial-configuration family
  from :mod:`repro.experiments.workloads`), an engine, milestones, metric
  series, extractors — as plain JSON-serializable data;
* a :class:`Study` expands one or more specs into a cell matrix, executes
  the missing cells (serially or with multiprocess fan-out, see
  :mod:`repro.experiments.parallel`), persists each finished cell through
  a :class:`~repro.experiments.store.ResultStore`, and returns a
  :class:`ResultSet` of unified :class:`RunRow` rows.

Because specs are data and every cell's seed is derived deterministically
from the spec identity and the cell coordinates (no Python ``hash()``,
which is process-salted), a study is *reproducible across processes*:
``--jobs 8`` produces bit-identical rows to a serial run, and re-running a
finished study loads every cell from the store without simulating
anything.  The legacy drivers (``run_figure2``, ``run_figure3``,
``run_scaling``, ``run_comparison``, ``run_fault_injection``) are thin
deprecation shims over this API, and ``python -m repro`` exposes the same
presets on the command line.
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import math

import numpy as np

from ..analysis.statistics import RunSummary, summarize
from ..baselines.burman_ranking import BurmanStyleRanking
from ..baselines.cai_ranking import CaiRanking
from ..baselines.token_counter_ranking import TokenCounterRanking
from ..core import backends as _backends
from ..core.array_engine import EngineCache
from ..core.errors import ExperimentError
from ..core.metrics import MetricsCollector, standard_ranking_probes
from ..core.rng import cell_seed_sequences
from ..core.table_store import ENV_VAR as _TABLE_CACHE_ENV
from ..core.table_store import resolve_store_dir
from ..protocols.primitives.one_way_epidemic import OneWayEpidemicProtocol
from ..protocols.ranking.aggregate_space_efficient import (
    AggregateSpaceEfficientRanking,
)
from ..protocols.ranking.space_efficient import SpaceEfficientRanking
from ..protocols.ranking.stable_ranking import StableRanking
from ..scenarios import bind_schedule, get_scenario
from ..topologies import build_topology as _build_topology
from ..topologies import get_topology as _get_topology
from .store import ResultStore
from . import workloads as _workloads

__all__ = [
    "ExperimentSpec",
    "execute_batch",
    "plan_units",
    "ResultSet",
    "RunRow",
    "Study",
    "PROTOCOLS",
    "WORKLOADS",
    "EXTRACTORS",
    "paper_l_max",
]

#: Scale of the maximum liveness counter used by the Figure 2 workload
#: (``L_max = scale · log₂ n``); see :mod:`repro.experiments.figure2`.
PAPER_COUNTER_SCALE = 6.0


def paper_l_max(n: int) -> int:
    """The Figure 2 liveness-counter bound ``⌈6 · log₂ n⌉`` (min 8)."""
    return max(8, int(math.ceil(PAPER_COUNTER_SCALE * math.log2(n))))


# ----------------------------------------------------------------------
# Registries: specs name factories instead of holding callables, so a
# spec pickles/serializes cleanly and a worker process can rebuild the
# exact experiment from the spec dict alone.
# ----------------------------------------------------------------------

#: Protocol factories by name; each takes ``(n, **protocol_params)``.
PROTOCOLS: Dict[str, Callable] = {
    "stable-ranking": StableRanking,
    "stable-ranking-figure2": lambda n, **params: StableRanking(
        n, l_max=params.pop("l_max", None) or paper_l_max(n), **params
    ),
    "space-efficient-ranking": SpaceEfficientRanking,
    "burman-style-ranking": BurmanStyleRanking,
    "cai-ranking": CaiRanking,
    "token-counter-ranking": TokenCounterRanking,
    "one-way-epidemic": OneWayEpidemicProtocol,
}

#: Workload (initial configuration) builders by name; each takes
#: ``(protocol, rng, **workload_params)`` and returns a Configuration or
#: ``None`` for the protocol's designated initial configuration.
WORKLOADS: Dict[str, Callable] = {
    "fresh": lambda protocol, rng, **params: None,
    "figure2": lambda protocol, rng, **params: (
        _workloads.figure2_initial_configuration(protocol)
    ),
    "figure3": lambda protocol, rng, **params: (
        _workloads.figure3_initial_configuration(protocol)
    ),
    "duplicate_rank": lambda protocol, rng, **params: (
        _workloads.duplicate_rank_configuration(
            protocol.n, duplicates=params.get("duplicates", 1), random_state=rng
        )
    ),
    "missing_rank": lambda protocol, rng, **params: (
        _workloads.missing_rank_configuration(
            protocol,
            missing_rank=params.get("missing_rank")
            or int(rng.integers(1, protocol.n + 1)),
        )
    ),
    "adversarial": lambda protocol, rng, **params: (
        _workloads.adversarial_configuration(protocol, random_state=rng)
    ),
}

#: Per-run extractors by name: ``(result, simulator) -> {column: value}``.
EXTRACTORS: Dict[str, Callable] = {
    "ranked_agents": lambda result, simulator: {
        "ranked_agents": float(result.configuration.ranked_count())
    },
    "duplicate_ranks": lambda result, simulator: {
        "duplicate_ranks": float(len(result.configuration.duplicate_ranks()))
    },
    "overhead_states": lambda result, simulator: {
        "overhead_states": float(simulator.protocol.overhead_states())
        if hasattr(simulator.protocol, "overhead_states")
        else -1.0
    },
}



#: Trajectory-relevant revisions of workload builders.  Bump a workload's
#: entry (starting at 2; absent means the original draw pattern) whenever
#: its generator consumption changes: the revision joins the spec
#: identity, so same-seed cells produced by different builder versions
#: can never share a store directory.  ``duplicate_rank`` moved from
#: order-dependent choice+integers draws to a disjoint victim/donor
#: permutation (exact fault counts) in v1.3.
_WORKLOAD_REVISIONS: Dict[str, int] = {
    "duplicate_rank": 2,
}


#: Per-process memo of spec matrices whose explicit-engine capability
#: validation already ran (keyed by identity seed + matrix n_values), so
#: worker-side ``from_dict`` calls pay the resolution pass once per spec
#: rather than once per cell.
_VALIDATED_MATRICES: set = set()


# ----------------------------------------------------------------------
# Spec
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ExperimentSpec:
    """One variant of a study, as plain declarative data.

    A spec expands to ``len(n_values) × seeds`` independent cells.  All
    fields are JSON-serializable; factories are referenced by name through
    :data:`PROTOCOLS`, :data:`WORKLOADS` and :data:`EXTRACTORS` so a
    worker process can reconstruct the experiment from the dict alone.

    Parameters
    ----------
    variant:
        Label distinguishing this spec's rows inside the study (protocol
        name, fault model, …).
    protocol:
        Key into :data:`PROTOCOLS`.  Required for every spec: backend
        capability probes run against the constructed protocol instance
        (the aggregate engine accepts only ``space-efficient-ranking``
        and substitutes its own count-level simulation at run time).
    n_values, seeds:
        The matrix extent: population sizes × independent seeded runs.
        Deliberately excluded from the spec's identity hash so a study
        can be extended in place (see ``identity_dict``).
    engine:
        A backend name from :mod:`repro.core.backends` (``"reference"``,
        ``"array"``, ``"aggregate"``, ``"group"``) or ``"auto"`` (the
        default), which resolves each cell to the fastest backend whose
        :meth:`~repro.core.backends.Backend.capabilities` probe accepts
        it.  Rows record the *resolved* backend name.
    exactness:
        Optional exactness-class pin (``"trajectory"`` or
        ``"distribution"``).  ``None`` (the default) accepts any class.
        Pinning ``"distribution"`` lets ``engine="auto"`` route the
        cell to the count-level engines even where an agent engine holds
        the higher throughput hint — the declared intent is "this cell
        measures a distribution, not a trajectory", which is what makes
        million-agent sweeps tractable.  Rows record the resolved
        capability's exactness class.
    workload:
        Key into :data:`WORKLOADS` — the initial-configuration family.
        When ``scenario`` is set this is the scenario's *initial
        condition*: leaving it at the default ``"fresh"`` adopts the
        scenario's declared workload, any other value overrides it
        (composition: e.g. a fault storm on the Figure 2 start).
    scenario:
        Optional name from the scenario registry
        (:mod:`repro.scenarios`).  A *static* scenario normalizes to its
        ``workload=`` alias (same identity hash, same store, same
        trajectory); an event-bearing scenario fires its deterministic
        perturbation schedule mid-run through the engines' segmented
        runs.  ``None`` (the default) keeps the plain workload path and
        the exact legacy spec identity.
    scenario_params:
        Keyword arguments for the scenario's schedule builder (event
        kind, count, period, …).
    protocol_params, workload_params:
        Keyword arguments for the two factories.
    max_interactions_factor:
        Interaction budget per run in units of ``n²``.
    stop_on_convergence:
        Whether a run stops at the protocol's convergence predicate.
    milestone_fractions:
        Ranked fractions whose first-hit interaction counts are recorded
        per run (the Figure 3 measurement).  When non-empty the run stops
        after the last milestone instead of at convergence.
    samples:
        When positive, record the standard ranking probes as time series
        with ``samples`` snapshots across the budget (the Figure 2
        measurement).
    extractors:
        Names from :data:`EXTRACTORS` applied to each finished run.
    random_state:
        Root seed; every cell derives its generator deterministically
        from this, the spec identity and the cell coordinates.
    topology:
        Optional name from the topology registry
        (:mod:`repro.topologies`) restricting which agent pairs the
        scheduler may deliver.  ``"complete"`` (with no parameters)
        normalizes to ``None`` — the paper's uniform scheduler and the
        exact legacy spec identity.  A restricted topology joins the
        identity hash, is built deterministically per ``n`` (all seeds of
        a cell share one graph), and restricts backend resolution to
        agent-level engines (the count engines answer complete-only).
    topology_params:
        Keyword arguments for the topology family (e.g. ``degree`` for
        ``random_regular``, ``base``/``delay`` for ``delayed``).
    """

    variant: str
    protocol: str = "stable-ranking"
    n_values: Tuple[int, ...] = (64,)
    seeds: int = 1
    engine: str = "auto"
    exactness: Optional[str] = None
    workload: str = "fresh"
    scenario: Optional[str] = None
    scenario_params: Mapping[str, object] = field(default_factory=dict)
    protocol_params: Mapping[str, object] = field(default_factory=dict)
    workload_params: Mapping[str, object] = field(default_factory=dict)
    max_interactions_factor: float = 400.0
    stop_on_convergence: bool = True
    milestone_fractions: Tuple[float, ...] = ()
    samples: int = 0
    extractors: Tuple[str, ...] = ()
    random_state: int = 0
    topology: Optional[str] = None
    topology_params: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self):
        object.__setattr__(self, "n_values", tuple(int(n) for n in self.n_values))
        object.__setattr__(
            self,
            "milestone_fractions",
            tuple(sorted(float(f) for f in self.milestone_fractions)),
        )
        object.__setattr__(self, "extractors", tuple(self.extractors))
        object.__setattr__(self, "protocol_params", dict(self.protocol_params))
        object.__setattr__(self, "workload_params", dict(self.workload_params))
        object.__setattr__(self, "scenario_params", dict(self.scenario_params))
        object.__setattr__(self, "topology_params", dict(self.topology_params))
        self._normalize_topology()
        if self.scenario is not None:
            self._normalize_scenario()
        if self.engine not in _backends.engine_choices():
            raise ExperimentError(
                f"unknown engine {self.engine!r}; expected one of "
                f"{_backends.engine_choices()}"
            )
        if self.exactness not in (None, "trajectory", "distribution"):
            raise ExperimentError(
                f"unknown exactness {self.exactness!r}; expected "
                "'trajectory', 'distribution' or None"
            )
        if self.protocol not in PROTOCOLS:
            raise ExperimentError(f"unknown protocol {self.protocol!r}")
        if self.workload not in WORKLOADS:
            raise ExperimentError(f"unknown workload {self.workload!r}")
        for name in self.extractors:
            if name not in EXTRACTORS:
                raise ExperimentError(f"unknown extractor {name!r}")
        if self.seeds < 1:
            raise ExperimentError("seeds must be positive")
        if not self.n_values:
            raise ExperimentError("n_values must not be empty")
        if self.max_interactions_factor <= 0:
            raise ExperimentError("max_interactions_factor must be positive")
        # Engine-specific constraints live with the backends now: an
        # *explicit* engine must be capable of every cell of the matrix
        # (raises ExperimentError with the backend's reason otherwise).
        # ``engine="auto"`` needs no validation pass — the reference
        # backend supports every agent-level cell, so auto resolution
        # cannot fail — unless an exactness class is pinned, which can
        # leave no capable backend and must fail at spec construction,
        # not mid-study.  The pass is memoized per process: worker-side
        # ``from_dict`` round-trips happen once per *cell*, and rebuilding
        # the whole protocol matrix each time would dominate small cells.
        if self.engine != _backends.AUTO_ENGINE or self.exactness is not None:
            memo_key = (self.identity_seed(), self.n_values)
            if memo_key not in _VALIDATED_MATRICES:
                for n in self.n_values:
                    self.resolve_backend(n)
                _VALIDATED_MATRICES.add(memo_key)

    def _normalize_topology(self) -> None:
        """Resolve the topology name and fold the complete graph onto ``None``.

        ``topology="complete"`` with no parameters *is* the paper's
        uniform scheduler, so it normalizes to the unset field — the
        spec's identity hash (and therefore its store directory and every
        cell trajectory) is shared between the two spellings, exactly
        like static scenarios folding onto their workload alias.  A
        restricted topology is validated for every ``n`` of the matrix by
        building it (construction is cached per process, so this warms
        the graphs the cells will sample).
        """
        if self.topology is None:
            if self.topology_params:
                raise ExperimentError(
                    "topology_params given without a topology family"
                )
            return
        _get_topology(self.topology)
        if self.topology == "complete":
            if self.topology_params:
                raise ExperimentError(
                    "topology 'complete' takes no parameters; "
                    f"got {sorted(self.topology_params)}"
                )
            object.__setattr__(self, "topology", None)
            return
        for n in self.n_values:
            _build_topology(self.topology, n, self.topology_params)

    def _normalize_scenario(self) -> None:
        """Resolve the scenario name and fold static scenarios onto workloads.

        A static scenario is *identical* to its ``workload=`` alias, so it
        is normalized onto it — the spec's identity hash (and therefore
        its store directory and every cell trajectory) is shared between
        the two spellings, and pre-scenario stores keep resolving.  An
        event-bearing scenario keeps its ``scenario`` field, adopts the
        scenario's initial condition unless the spec overrides it, and
        has its schedule validated for every ``n`` of the matrix.
        """
        scenario = get_scenario(self.scenario)
        if self.workload == "fresh":
            object.__setattr__(self, "workload", scenario.workload)
        if scenario.is_static:
            if self.scenario_params:
                raise ExperimentError(
                    f"static scenario {scenario.name!r} accepts no "
                    f"scenario_params; use workload_params instead"
                )
            object.__setattr__(self, "scenario", None)
            return
        if self.milestone_fractions:
            raise ExperimentError(
                "event-bearing scenarios do not support milestone "
                "fractions; per-event recovery times are recorded instead"
            )
        for n in self.n_values:
            scenario.schedule(n, **self.scenario_params)

    def as_dict(self) -> dict:
        """The full spec as JSON-ready data (matrix extent included).

        The ``scenario`` keys appear only for event-bearing scenarios,
        ``exactness`` only when pinned, and the ``topology`` keys only
        for restricted topologies, so legacy specs serialize — and
        hash — exactly as they did before those fields existed.
        """
        payload = {
            "variant": self.variant,
            "protocol": self.protocol,
            "n_values": list(self.n_values),
            "seeds": self.seeds,
            "engine": self.engine,
            "workload": self.workload,
            "protocol_params": dict(self.protocol_params),
            "workload_params": dict(self.workload_params),
            "max_interactions_factor": self.max_interactions_factor,
            "stop_on_convergence": self.stop_on_convergence,
            "milestone_fractions": list(self.milestone_fractions),
            "samples": self.samples,
            "extractors": list(self.extractors),
            "random_state": self.random_state,
        }
        if self.scenario is not None:
            payload["scenario"] = self.scenario
            payload["scenario_params"] = dict(self.scenario_params)
        if self.exactness is not None:
            payload["exactness"] = self.exactness
        if self.topology is not None:
            payload["topology"] = self.topology
            payload["topology_params"] = dict(self.topology_params)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ExperimentSpec":
        """Rebuild a spec from :meth:`as_dict` output."""
        return cls(**payload)

    def identity_dict(self) -> dict:
        """The fields that determine a cell's trajectory.

        Excludes the matrix extent (``n_values``, ``seeds``): a cell's
        result depends only on its own coordinates, so extending the
        matrix must not re-key the study's store.  Includes the workload
        builder's revision when one is recorded in
        :data:`_WORKLOAD_REVISIONS`: a builder whose rng draw pattern
        changed produces different trajectories from the same seeds, and
        the store contract ("changing anything trajectory-relevant
        re-keys the directory") must hold for builder fixes too —
        otherwise resuming a pre-fix store would silently mix rows from
        two different seeded configurations under one identity.
        """
        payload = self.as_dict()
        del payload["n_values"]
        del payload["seeds"]
        revision = _WORKLOAD_REVISIONS.get(self.workload)
        if revision is not None:
            payload["workload_revision"] = revision
        return payload

    def identity_seed(self) -> int:
        """A process-stable 63-bit integer derived from the identity."""
        canonical = json.dumps(self.identity_dict(), sort_keys=True)
        digest = hashlib.sha256(canonical.encode()).digest()
        return int.from_bytes(digest[:8], "big") & 0x7FFF_FFFF_FFFF_FFFF

    # ------------------------------------------------------------------
    # Backend negotiation
    # ------------------------------------------------------------------
    def build_protocol(self, n: int):
        """Construct the protocol instance for one population size."""
        return PROTOCOLS[self.protocol](n, **self.protocol_params)

    def build_topology(self, n: int):
        """The cell topology for one population size, or ``None``.

        Deterministic in the spec and ``n`` (and cached per process), so
        every seed, worker and resume samples the same graph.
        """
        if self.topology is None:
            return None
        return _build_topology(self.topology, n, self.topology_params)

    def build_schedule(self, n: int):
        """The scenario's event schedule for one population size.

        Empty for workload-only specs (static scenarios normalize to
        those); a pure function of the spec and ``n``, so serial and
        parallel runs — and the backend resolution below — agree on it.
        """
        if self.scenario is None:
            return ()
        return get_scenario(self.scenario).schedule(n, **self.scenario_params)

    def has_events(self, n: int) -> bool:
        """Whether this spec's cells at ``n`` fire mid-run events."""
        return bool(self.build_schedule(n))

    def resolve(self, n: int, batch_seeds: int = 1):
        """The ``(backend, capability)`` pair serving this spec's ``n`` cells.

        A concrete ``engine`` resolves to that backend (raising
        :class:`~repro.core.errors.ExperimentError` when it cannot run the
        cell); ``engine="auto"`` negotiates the fastest capable backend
        through each backend's
        :meth:`~repro.core.backends.Backend.capabilities` probe.  The
        resolution is a pure function of the spec, ``n`` and the
        ``batch_seeds`` group size (how many same-spec seeds would run as
        one lockstep group), so parallel workers resolve identically to a
        serial run.  Extractor-bearing specs read the final agent-level
        configuration, so they are restricted to agent backends.
        """
        return _backends.resolve_backend(
            self.build_protocol(n),
            self.workload,
            n,
            engine=self.engine,
            series=self.samples > 0,
            events=self.has_events(n),
            stop_on_convergence=self.stop_on_convergence,
            batch_seeds=batch_seeds,
            kinds=("agent",) if self.extractors else None,
            exactness=self.exactness,
            topology=self.topology,
        )

    def resolve_backend(self, n: int) -> str:
        """Name of the concrete backend serving this spec's ``n`` cells."""
        return self.resolve(n)[0].name


# ----------------------------------------------------------------------
# Rows and result sets
# ----------------------------------------------------------------------
@dataclass
class RunRow:
    """One completed cell of a study, in the unified result schema."""

    study: str
    variant: str
    protocol: str
    engine: str
    n: int
    seed_index: int
    converged: bool
    interactions: int
    resets: int
    #: Exactness class of the backend that served the cell
    #: (``"trajectory"`` or ``"distribution"``; empty in legacy rows).
    exactness: str = ""
    #: Interaction-topology family the cell ran on (``"complete"`` for
    #: the paper's uniform scheduler; legacy rows load as complete).
    topology: str = "complete"
    extras: Dict[str, float] = field(default_factory=dict)
    #: milestone name → first interaction count at which it held.
    milestones: Dict[str, int] = field(default_factory=dict)
    #: series name → {"interactions": [...], "values": [...]}.
    series: Dict[str, Dict[str, list]] = field(default_factory=dict)

    @property
    def key(self) -> Tuple[str, int, int]:
        """The cell key ``(variant, n, seed_index)``."""
        return (self.variant, self.n, self.seed_index)

    @property
    def normalized_interactions(self) -> float:
        """Interactions divided by ``n²``."""
        return self.interactions / float(self.n * self.n)

    def as_dict(self) -> dict:
        """JSON-ready representation (used for persistence)."""
        return {
            "study": self.study,
            "variant": self.variant,
            "protocol": self.protocol,
            "engine": self.engine,
            "n": self.n,
            "seed_index": self.seed_index,
            "converged": self.converged,
            "interactions": self.interactions,
            "resets": self.resets,
            "exactness": self.exactness,
            "topology": self.topology,
            "extras": dict(self.extras),
            "milestones": dict(self.milestones),
            "series": self.series,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "RunRow":
        """Rebuild a row from :meth:`as_dict` output."""
        return cls(
            study=payload["study"],
            variant=payload["variant"],
            protocol=payload["protocol"],
            engine=payload["engine"],
            n=int(payload["n"]),
            seed_index=int(payload["seed_index"]),
            converged=bool(payload["converged"]),
            interactions=int(payload["interactions"]),
            resets=int(payload["resets"]),
            exactness=str(payload.get("exactness", "")),
            topology=str(payload.get("topology", "complete")),
            extras=dict(payload.get("extras", {})),
            milestones={
                name: int(value)
                for name, value in payload.get("milestones", {}).items()
            },
            series=payload.get("series", {}),
        )

    def flat_dict(self) -> dict:
        """One flat mapping per row for CSV export (series omitted)."""
        row = {
            "study": self.study,
            "variant": self.variant,
            "protocol": self.protocol,
            "engine": self.engine,
            "n": self.n,
            "seed_index": self.seed_index,
            "converged": self.converged,
            "interactions": self.interactions,
            "normalized_interactions": self.normalized_interactions,
            "resets": self.resets,
            "exactness": self.exactness,
            "topology": self.topology,
        }
        row.update(self.extras)
        row.update(self.milestones)
        return row


class ResultSet:
    """All rows of a study plus provenance, behind one query surface."""

    def __init__(self, rows: Sequence[RunRow], specs: Sequence[ExperimentSpec],
                 name: str = "study"):
        self._rows = list(rows)
        self._specs = list(specs)
        self._name = name

    @property
    def name(self) -> str:
        """The study name the rows belong to."""
        return self._name

    @property
    def rows(self) -> List[RunRow]:
        """The unified rows, in deterministic (variant, n, seed) order."""
        return self._rows

    @property
    def specs(self) -> List[ExperimentSpec]:
        """The specs that produced the rows."""
        return self._specs

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self):
        return iter(self._rows)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def filter(self, **equals) -> "ResultSet":
        """Rows whose attributes equal the given values (e.g. ``n=128``)."""
        rows = [
            row
            for row in self._rows
            if all(getattr(row, key) == value for key, value in equals.items())
        ]
        return ResultSet(rows, self._specs, self._name)

    def group(self, *fields: str) -> Dict[tuple, List[RunRow]]:
        """Rows grouped by the given row attributes, insertion-ordered."""
        groups: Dict[tuple, List[RunRow]] = {}
        for row in self._rows:
            key = tuple(getattr(row, name) for name in fields)
            groups.setdefault(key, []).append(row)
        return groups

    def summary(
        self,
        value: Callable[[RunRow], float],
        by: Sequence[str] = ("variant", "n"),
    ) -> Dict[tuple, RunSummary]:
        """Summaries of ``value(row)`` per group (default: variant × n)."""
        return {
            key: summarize([value(row) for row in rows])
            for key, rows in self.group(*by).items()
        }

    def convergence_rate(self) -> float:
        """Fraction of rows that converged."""
        if not self._rows:
            return 0.0
        return sum(row.converged for row in self._rows) / len(self._rows)

    def flat_rows(self) -> List[dict]:
        """All rows as flat dictionaries (for CSV export)."""
        return [row.flat_dict() for row in self._rows]

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_json(self, path) -> None:
        """Write the rows + specs as one JSON document."""
        from .recording import write_json

        write_json(
            path,
            {
                "study": self._name,
                "specs": [spec.as_dict() for spec in self._specs],
                "rows": [row.as_dict() for row in self._rows],
            },
        )

    @classmethod
    def from_json(cls, path) -> "ResultSet":
        """Load a result set written by :meth:`to_json`."""
        payload = json.loads(Path(path).read_text())
        return cls(
            rows=[RunRow.from_dict(row) for row in payload["rows"]],
            specs=[ExperimentSpec.from_dict(spec) for spec in payload["specs"]],
            name=payload.get("study", "study"),
        )

    def to_csv(self, path) -> None:
        """Write the flat rows as CSV (series are JSON-only)."""
        from .recording import write_csv

        write_csv(path, self.flat_rows())


# ----------------------------------------------------------------------
# Cell execution (module-level and spec-dict driven: picklable, so the
# multiprocess fan-out ships (spec, n, seed_index) tuples to workers)
# ----------------------------------------------------------------------

#: Per-process engine caches, keyed by (spec identity, n): repeated cells
#: of one variant in one worker share the transition tabulation.
_ENGINE_CACHES: Dict[tuple, EngineCache] = {}


def _shared_cache(spec, n: int) -> EngineCache:
    """The per-process shared cache for one (variant, n) — persistent when
    a table store is configured (``REPRO_TABLE_CACHE``), plain otherwise.

    The store directory is resolved at cache *creation*: ``Study.run``
    exports the study's table directory around the fan-out, so both pool
    workers (which import this module fresh) and the in-process path pick
    it up here.
    """
    cache_key = (spec.identity_seed(), n)
    cache = _ENGINE_CACHES.get(cache_key)
    if cache is None:
        cache = _ENGINE_CACHES[cache_key] = EngineCache(
            persist_dir=resolve_store_dir()
        )
    return cache


def _cell_rng_sequences(spec: ExperimentSpec, n: int, seed_index: int):
    """Three independent seed sequences (workload, run, events) per cell.

    The derivation lives in :func:`repro.core.rng.cell_seed_sequences` —
    deterministic, process-stable, and a function of the cell's own
    coordinates only, which is what makes ``--jobs N`` and the batched
    engine's seed groups bit-identical to serial per-seed runs.  Spawn
    children are determined by their index, so the workload and run
    streams are unchanged from the pre-scenario layout and legacy cells
    keep their exact trajectories; the third (event) sequence is consumed
    only by event-bearing scenarios.
    """
    return cell_seed_sequences(spec.identity_seed(), n, seed_index, 3)


def execute_cell(spec_payload: Mapping, n: int, seed_index: int) -> dict:
    """Run one (variant, n, seed) cell and return its row dictionary.

    The cell's engine request (concrete name or ``"auto"``) is resolved
    through the backend registry; the returned row records the *resolved*
    backend in its ``engine`` field, so a store always shows which engine
    actually served each cell.
    """
    spec = ExperimentSpec.from_dict(dict(spec_payload))
    workload_seq, run_seq, events_seq = _cell_rng_sequences(spec, n, seed_index)
    protocol = spec.build_protocol(n)
    backend, capability = _backends.resolve_backend(
        protocol,
        spec.workload,
        n,
        engine=spec.engine,
        series=spec.samples > 0,
        events=spec.has_events(n),
        stop_on_convergence=spec.stop_on_convergence,
        kinds=("agent",) if spec.extractors else None,
        exactness=spec.exactness,
        topology=spec.topology,
    )
    if backend.kind == "aggregate":
        return _execute_aggregate(spec, n, seed_index, run_seq, backend,
                                  capability)
    if backend.kind == "count":
        return _execute_group(
            spec, protocol, n, seed_index, workload_seq, run_seq, backend,
            capability,
        )
    return _execute_agent_level(
        spec, protocol, n, seed_index, workload_seq, run_seq, events_seq,
        backend, capability,
    )


def _execute_aggregate(spec, n, seed_index, run_seq, backend,
                       capability) -> dict:
    simulator = AggregateSpaceEfficientRanking(
        n,
        random_state=np.random.default_rng(run_seq),
        **spec.protocol_params,
    )
    milestones = simulator.milestone_predicates(spec.milestone_fractions)
    outcome = simulator.run(max_interactions=10**15, milestones=milestones)
    row = RunRow(
        study="",
        variant=spec.variant,
        protocol="space-efficient-ranking",
        engine=backend.name,
        n=n,
        seed_index=seed_index,
        converged=outcome.converged,
        interactions=outcome.interactions,
        resets=0,
        exactness=capability.exactness,
        milestones={
            name: int(value) for name, value in outcome.milestones.items()
        },
    )
    return row.as_dict()


#: Per-process shared group-transition tabulations, keyed by
#: (spec identity, n): every seed of one variant replays the same
#: reachable state space, so the lazily tabulated productive-transition
#: model is shared exactly like the array engine's ``EngineCache``.
_GROUP_MODELS: Dict[tuple, "object"] = {}

#: Tabulated-state counts already written to the table store per model
#: key, so repeated cells rewrite the group snapshot only when the model
#: actually grew.
_GROUP_PERSISTED: Dict[tuple, int] = {}


def _group_store_entry(protocol):
    """The table-store entry for ``protocol``, or ``None`` when no store
    is configured (or the store is unusable — never fatal)."""
    store_dir = resolve_store_dir()
    if store_dir is None:
        return None
    try:
        from ..core.table_store import TableStore

        return TableStore(store_dir).entry_for(protocol)
    except Exception as exc:
        warnings.warn(
            f"table store unavailable for group models ({exc}); "
            "continuing without persistence",
            RuntimeWarning,
            stacklevel=2,
        )
        return None


def _restore_group_model(protocol, model_key):
    """Rebuild a persisted :class:`GroupTransitionModel`, or ``None``.

    Snapshot replay reconstructs the successor lists in their original
    insertion order, so restored models sample bit-identically to the
    models that wrote them; any failure (corrupt snapshot, states that no
    longer intern to their own codes after a protocol change the identity
    hash missed) falls back to cold derivation with a warning.
    """
    entry = _group_store_entry(protocol)
    if entry is None:
        return None
    snapshot = entry.load_group_model()
    if snapshot is None:
        return None
    from ..core.group_engine import GroupTransitionModel

    try:
        model = GroupTransitionModel.from_snapshot(protocol, *snapshot)
    except Exception as exc:
        warnings.warn(
            f"persisted group model for {protocol.name} did not replay "
            f"({exc}); rebuilding cold",
            RuntimeWarning,
            stacklevel=2,
        )
        return None
    _GROUP_PERSISTED[model_key] = model.tabulated_states
    return model


def _persist_group_model(protocol, model_key, model) -> None:
    """Write the model's snapshot if it grew past what the store holds."""
    tabulated = model.tabulated_states
    if tabulated <= _GROUP_PERSISTED.get(model_key, 0):
        return
    entry = _group_store_entry(protocol)
    if entry is None:
        return
    try:
        entry.write_group_model(*model.snapshot())
    except Exception as exc:
        warnings.warn(
            f"could not persist group model for {protocol.name} ({exc})",
            RuntimeWarning,
            stacklevel=2,
        )
        return
    _GROUP_PERSISTED[model_key] = tabulated


def _execute_group(
    spec, protocol, n, seed_index, workload_seq, run_seq, backend, capability
) -> dict:
    """Run one cell on the group-count engine (exact lumped count process).

    The initial counts come from the protocol's
    :meth:`~repro.core.protocol.PopulationProtocol.count_profile` when the
    workload is the designated fresh start (no ``n`` state objects are
    ever materialized — the point at ``n = 10^6``); any other workload
    builds its agent-level configuration once and collapses it to counts.
    Milestones are ranked-fraction thresholds over the goal's measure,
    recorded at the exact interaction count of the crossing event.
    """
    from ..core.group_engine import GroupCountSimulator

    model_key = (spec.identity_seed(), n)
    model = _GROUP_MODELS.get(model_key)
    if model is None:
        model = _restore_group_model(protocol, model_key)
        if model is not None:
            _GROUP_MODELS[model_key] = model

    state_counts = None
    configuration = None
    if spec.workload == "fresh" and not spec.workload_params:
        state_counts = protocol.count_profile()
    if state_counts is None:
        configuration = WORKLOADS[spec.workload](
            protocol, np.random.default_rng(workload_seq),
            **spec.workload_params,
        )
        if configuration is None:
            configuration = protocol.initial_configuration()

    simulator = GroupCountSimulator(
        protocol,
        configuration=configuration,
        state_counts=state_counts,
        model=model,
        random_state=np.random.default_rng(run_seq),
    )
    if model is None:
        _GROUP_MODELS[model_key] = simulator.model

    budget = int(spec.max_interactions_factor * n * n)
    milestones: Optional[Dict[str, int]] = None
    if spec.milestone_fractions:
        target = simulator.goal.target()
        milestones = {
            f"ranked_{fraction}": int(math.ceil(fraction * target))
            for fraction in spec.milestone_fractions
        }
    outcome = simulator.run(max_interactions=budget, milestones=milestones)
    _persist_group_model(protocol, model_key, simulator.model)
    if spec.milestone_fractions:
        # Match the agent-level milestone contract: the row converges
        # when every requested fraction was reached within budget.
        converged = len(outcome.milestones) == len(spec.milestone_fractions)
    else:
        converged = outcome.converged
    row = RunRow(
        study="",
        variant=spec.variant,
        protocol=protocol.name,
        engine=backend.name,
        n=n,
        seed_index=seed_index,
        converged=converged,
        interactions=outcome.interactions,
        resets=0,
        exactness=capability.exactness,
        extras={
            "events": float(outcome.events),
            "distinct_states": float(outcome.distinct_states),
        },
        milestones={
            name: int(value) for name, value in outcome.milestones.items()
        },
    )
    return row.as_dict()


def execute_batch(
    spec_payload: Mapping, n: int, seed_indices: Sequence[int]
) -> List[dict]:
    """Run a group of same-spec seeds as one lockstep cell group.

    The batched engine advances every seed together over one shared
    tabulation; each returned row is bit-identical to what
    :func:`execute_cell` produces for that seed (the per-lane rng streams
    derive from the cell's own coordinates, never from the group), except
    that the ``engine`` field records the batching backend.  When the
    resolved backend does not batch — a registry difference in a worker
    process, or a spec whose cells need milestone or event machinery —
    the group falls back to per-seed execution, so results can never
    depend on *whether* grouping happened, only the wall-clock can.
    """
    from types import SimpleNamespace

    spec = ExperimentSpec.from_dict(dict(spec_payload))
    seed_indices = [int(index) for index in seed_indices]
    backend, capability = spec.resolve(n, batch_seeds=len(seed_indices))
    if (
        not backend.batches
        or spec.milestone_fractions
        or spec.has_events(n)
    ):
        return [
            execute_cell(spec_payload, n, index) for index in seed_indices
        ]

    budget = int(spec.max_interactions_factor * n * n)
    protocols = []
    configurations: List = []
    rngs = []
    collectors: List[MetricsCollector] = []
    for seed_index in seed_indices:
        workload_seq, run_seq, _ = _cell_rng_sequences(spec, n, seed_index)
        protocol = spec.build_protocol(n)
        configuration = WORKLOADS[spec.workload](
            protocol, np.random.default_rng(workload_seq),
            **spec.workload_params,
        )
        protocols.append(protocol)
        configurations.append(configuration)
        rngs.append(np.random.default_rng(run_seq))
        if spec.samples > 0:
            interval = max(1, budget // spec.samples)
            collectors.append(
                MetricsCollector(standard_ranking_probes(), interval=interval)
            )
    if all(configuration is None for configuration in configurations):
        configurations = None

    cache = None
    if backend.uses_cache:
        cache = _shared_cache(spec, n)
    batch_kwargs = {}
    cell_topology = spec.build_topology(n)
    if cell_topology is not None:
        batch_kwargs["topology"] = cell_topology
    simulator = backend.create_batch(
        protocols,
        configurations=configurations,
        random_states=rngs,
        metrics=collectors if collectors else None,
        cache=cache,
        convergence_interval=n,
        **batch_kwargs,
    )
    results = simulator.run(
        budget, stop_on_convergence=spec.stop_on_convergence
    )
    if cache is not None:
        cache.spill()

    rows = []
    for lane, (seed_index, result) in enumerate(zip(seed_indices, results)):
        extras: Dict[str, float] = {}
        for name in spec.extractors:
            shim = SimpleNamespace(protocol=simulator.lane_protocol(lane))
            extras.update(EXTRACTORS[name](result, shim))
        series: Dict[str, Dict[str, list]] = {}
        if collectors:
            for name, recorded in collectors[lane].series.items():
                series[name] = {
                    "interactions": list(recorded.interactions),
                    "values": list(recorded.values),
                }
        row = RunRow(
            study="",
            variant=spec.variant,
            protocol=protocols[lane].name,
            engine=backend.name,
            n=n,
            seed_index=seed_index,
            converged=result.converged,
            interactions=result.interactions,
            resets=result.resets,
            exactness=capability.exactness,
            topology=spec.topology or "complete",
            extras=extras,
            milestones={},
            series=series,
        )
        rows.append(row.as_dict())
    return rows


def _execute_agent_level(
    spec, protocol, n, seed_index, workload_seq, run_seq, events_seq, backend,
    capability,
) -> dict:
    configuration = WORKLOADS[spec.workload](
        protocol, np.random.default_rng(workload_seq), **spec.workload_params
    )
    budget = int(spec.max_interactions_factor * n * n)
    metrics = None
    if spec.samples > 0:
        interval = max(1, budget // spec.samples)
        metrics = MetricsCollector(standard_ranking_probes(), interval=interval)

    rng = np.random.default_rng(run_seq)
    cache = None
    if backend.uses_cache:
        cache = _shared_cache(spec, n)
    # The convergence cadence is pinned to the reference simulator's
    # default (every ``n`` interactions) for every backend: recorded
    # stopping times are a measured quantity, so they must not depend on
    # which engine a cell resolved to.  Tabulating backends are
    # bit-identical to the reference per interaction, so with the cadence
    # matched their *rows* are identical too.
    create_kwargs = {}
    cell_topology = spec.build_topology(n)
    if cell_topology is not None:
        create_kwargs["topology"] = cell_topology
    simulator = backend.create(
        protocol,
        configuration=configuration,
        random_state=rng,
        metrics=metrics,
        cache=cache,
        convergence_interval=n,
        **create_kwargs,
    )

    milestones: Dict[str, int] = {}
    extras: Dict[str, float] = {}
    schedule = spec.build_schedule(n)
    if schedule:
        bound = bind_schedule(schedule, protocol, events_seq)
        result = simulator.run_segmented(
            bound,
            max_interactions=budget,
            stop_on_convergence=spec.stop_on_convergence,
        )
        row_converged = result.converged
        interactions = result.interactions
        resets = result.resets
        # Per-segment accounting: the initial ramp-up convergence and
        # each event's recovery become milestones; aggregate recovery
        # statistics become extras (floats, so they survive CSV export).
        initial = result.events[0]
        if initial["recovered_at"] is not None:
            milestones["converged_initial"] = int(initial["recovered_at"])
        recoveries = []
        fired = result.events[1:]
        for index, entry in enumerate(fired, start=1):
            if entry["recovered_at"] is not None:
                milestones[f"event{index}_recovered"] = int(
                    entry["recovered_at"]
                )
                recoveries.append(entry["recovered_at"] - entry["at"])
        extras["events_fired"] = float(len(fired))
        extras["events_recovered"] = float(len(recoveries))
        if recoveries:
            extras["mean_recovery_interactions"] = float(np.mean(recoveries))
    elif spec.milestone_fractions:
        converged = True
        result = None
        for fraction in spec.milestone_fractions:
            threshold = fraction * n
            result = simulator.run_until(
                lambda config, threshold=threshold: (
                    config.ranked_count() >= threshold
                ),
                max_interactions=max(0, budget - simulator.interactions),
            )
            if not result.converged:
                converged = False
                break
            milestones[f"ranked_{fraction}"] = simulator.interactions
        row_converged = converged
        interactions = simulator.interactions
        resets = result.resets if result is not None else 0
    else:
        result = simulator.run(
            max_interactions=budget,
            stop_on_convergence=spec.stop_on_convergence,
        )
        row_converged = result.converged
        interactions = result.interactions
        resets = result.resets

    if cache is not None:
        cache.spill()

    for name in spec.extractors:
        extras.update(EXTRACTORS[name](result, simulator))

    series: Dict[str, Dict[str, list]] = {}
    if metrics is not None:
        for name, recorded in metrics.series.items():
            series[name] = {
                "interactions": list(recorded.interactions),
                "values": list(recorded.values),
            }

    row = RunRow(
        study="",
        variant=spec.variant,
        protocol=protocol.name,
        engine=backend.name,
        n=n,
        seed_index=seed_index,
        converged=row_converged,
        interactions=interactions,
        resets=resets,
        exactness=capability.exactness,
        topology=spec.topology or "complete",
        extras=extras,
        milestones=milestones,
        series=series,
    )
    return row.as_dict()


# ----------------------------------------------------------------------
# Work planning
# ----------------------------------------------------------------------
def plan_units(
    specs: Sequence[ExperimentSpec],
    known_keys,
) -> List[tuple]:
    """The pending work units for a spec matrix, minus the known cells.

    This is the single planner behind both execution modes: ``Study.run``
    feeds the units to the in-process fan-out
    (:func:`repro.experiments.parallel.run_units`), the serving layer
    wraps each unit as one queue job
    (:class:`repro.serving.JobQueue`).  Same-spec seed groups become one
    indivisible ``("batch", …)`` unit when a batching backend wins the
    group's capability negotiation — so a work queue ships a lockstep
    seed-group to exactly one worker, the same way one pool worker runs
    it — and everything else ships as single ``("cell", …)`` units.  The
    plan is a pure function of the specs and the known-cell set, so every
    submitter and every resumed run agree on the unit boundaries.
    """
    known = set(known_keys)
    missing: Dict[tuple, list] = {}
    group_specs: Dict[tuple, ExperimentSpec] = {}
    for spec in specs:
        for n in spec.n_values:
            for seed_index in range(spec.seeds):
                if (spec.variant, n, seed_index) in known:
                    continue
                group_key = (spec.variant, n)
                missing.setdefault(group_key, []).append(seed_index)
                group_specs[group_key] = spec
    pending: List[tuple] = []
    for group_key, seed_indices in missing.items():
        spec = group_specs[group_key]
        n = group_key[1]
        batchable = (
            len(seed_indices) >= 2
            and not spec.milestone_fractions
            and not spec.has_events(n)
            and spec.resolve(n, batch_seeds=len(seed_indices))[0].batches
        )
        if batchable:
            pending.append(("batch", spec.as_dict(), n, tuple(seed_indices)))
        else:
            pending.extend(
                ("cell", spec.as_dict(), n, seed_index)
                for seed_index in seed_indices
            )
    return pending


# ----------------------------------------------------------------------
# Study
# ----------------------------------------------------------------------
class Study:
    """A named set of specs, expanded into a resumable run matrix.

    Parameters
    ----------
    specs:
        One spec or a sequence of specs (one per variant).
    name:
        Study name; used for the store directory and row provenance.
    store:
        ``None`` (in-memory only), a path (a
        :class:`~repro.experiments.store.ResultStore` is created under
        it), or a ready store.
    jobs:
        Worker processes for the cell fan-out; ``1`` runs serially in
        this process.  Parallel execution is bit-identical to serial —
        every cell derives its randomness from its own coordinates.
    """

    def __init__(
        self,
        specs: Union[ExperimentSpec, Sequence[ExperimentSpec]],
        name: str = "study",
        store: Union[None, str, "ResultStore"] = None,
        jobs: int = 1,
    ):
        if isinstance(specs, ExperimentSpec):
            specs = [specs]
        if not specs:
            raise ExperimentError("a study needs at least one spec")
        names = [spec.variant for spec in specs]
        if len(set(names)) != len(names):
            raise ExperimentError(f"duplicate variant labels: {names}")
        if jobs < 1:
            raise ExperimentError("jobs must be positive")
        self._specs: List[ExperimentSpec] = list(specs)
        self._name = name
        self._jobs = jobs
        if store is None or isinstance(store, ResultStore):
            self._store = store
        else:
            self._store = ResultStore(store, name, self.content_hash())

    @property
    def specs(self) -> List[ExperimentSpec]:
        """The study's specs, one per variant."""
        return self._specs

    @property
    def name(self) -> str:
        """The study name."""
        return self._name

    @property
    def store(self) -> Optional[ResultStore]:
        """The attached result store (``None`` when in-memory only)."""
        return self._store

    def content_hash(self) -> str:
        """12-hex-digit hash over the specs' identity dictionaries."""
        canonical = json.dumps(
            [spec.identity_dict() for spec in self._specs], sort_keys=True
        )
        return hashlib.sha256(canonical.encode()).hexdigest()[:12]

    def cells(self) -> List[Tuple[ExperimentSpec, int, int]]:
        """The expanded run matrix in deterministic order."""
        matrix = []
        for spec in self._specs:
            for n in spec.n_values:
                for seed_index in range(spec.seeds):
                    matrix.append((spec, n, seed_index))
        return matrix

    def run(
        self,
        progress: Optional[Callable[[dict, int, int], None]] = None,
    ) -> ResultSet:
        """Execute the missing cells and return the full result set.

        Cells already present in the store are loaded, not re-simulated.
        ``progress`` (if given) is called as ``progress(row, done, total)``
        after every cell, loaded or computed.
        """
        from .parallel import run_units

        matrix = self.cells()
        known: Dict[tuple, dict] = {}
        if self._store is not None:
            self._store.write_spec(
                {
                    "study": self._name,
                    "hash": self.content_hash(),
                    "specs": [spec.as_dict() for spec in self._specs],
                }
            )
            known = dict(self._store.load())

        total = len(matrix)
        done = 0
        for spec, n, seed_index in matrix:
            row = known.get((spec.variant, n, seed_index))
            if row is not None:
                done += 1
                if progress is not None:
                    progress(row, done, total)

        # The shared planner groups same-spec seed groups into one
        # lockstep work unit when a batching backend wins the group's
        # capability negotiation; a resumed store groups only the
        # *missing* seeds.  Everything else ships per cell.
        pending = plan_units(self._specs, known.keys())

        def on_row(row: dict) -> None:
            nonlocal done
            done += 1
            if self._store is not None:
                self._store.append(row)
            if progress is not None:
                progress(row, done, total)

        # Fan out with the study's own table directory as the table store
        # (unless the caller already pinned one): spawn workers inherit
        # the environment, so every process — and every later run over the
        # same store — shares one persistent tabulation.
        exported = (
            _TABLE_CACHE_ENV not in os.environ and self._store is not None
        )
        if exported:
            os.environ[_TABLE_CACHE_ENV] = str(
                self._store.directory / "tables"
            )
        try:
            computed = run_units(pending, jobs=self._jobs, callback=on_row)
        finally:
            if exported:
                del os.environ[_TABLE_CACHE_ENV]
        for row in computed:
            known[(row["variant"], int(row["n"]), int(row["seed_index"]))] = row

        rows: List[RunRow] = []
        for spec, n, seed_index in matrix:
            payload = known[(spec.variant, n, seed_index)]
            row = RunRow.from_dict(payload)
            row.study = self._name
            rows.append(row)
        result = ResultSet(rows, self._specs, self._name)
        if self._store is not None:
            result.to_csv(self._store.directory / "rows.csv")
            # Fold any serving-worker shards into the canonical file: a
            # finished study converges back to one rows.jsonl whichever
            # mix of processes produced its cells.
            self._store.compact()
        return result
