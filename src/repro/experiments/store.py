"""Persistent result store for studies.

A :class:`~repro.experiments.study.Study` is a matrix of independent,
deterministically seeded simulation cells, so its natural persistence unit
is the *cell row*: one JSON object per completed ``(variant, n, seed)``
cell, appended to a line-delimited file as soon as the cell finishes.  The
layout under the store root is::

    <root>/
      <study-name>-<hash12>/
        spec.json        # the study's expanded specs + identity hash
        rows.jsonl       # one completed cell per line, append-only
        rows.csv         # flat export, rewritten on study completion

``<hash12>`` is a content hash over the specs' *identity* fields — the
protocol, its parameters, the engine, the workload, milestones, budget and
root seed, but **not** the matrix extent (``n_values``, ``seeds``).
Re-running a study therefore loads every already-computed cell instead of
re-simulating it, and *extending* a study (more seeds, more population
sizes) only computes the new cells.  Changing anything that affects a
cell's trajectory re-keys the directory, so stale rows can never be
mistaken for current ones.

Only the standard library is used; rows are plain dictionaries
(:meth:`~repro.experiments.study.RunRow.as_dict`).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from ..core.errors import ExperimentError

__all__ = ["ResultStore"]

#: Key identifying a cell within a study: (variant, n, seed_index).
CellKey = Tuple[str, int, int]


class ResultStore:
    """Append-only, resumable on-disk store for one study's rows.

    Parameters
    ----------
    root:
        Directory holding one subdirectory per study (created on demand).
    name:
        The study name (first path component of the study directory).
    content_hash:
        The study's identity hash (second component); computed by
        :meth:`~repro.experiments.study.Study.content_hash`.
    """

    def __init__(self, root, name: str, content_hash: str):
        if not name or any(sep in name for sep in "/\\"):
            raise ExperimentError(f"invalid study name {name!r}")
        self._root = Path(root)
        self._directory = self._root / f"{name}-{content_hash}"
        self._rows_path = self._directory / "rows.jsonl"
        self._spec_path = self._directory / "spec.json"

    @property
    def directory(self) -> Path:
        """The study's directory inside the store root."""
        return self._directory

    @property
    def rows_path(self) -> Path:
        """The append-only JSONL file holding completed cell rows."""
        return self._rows_path

    # ------------------------------------------------------------------
    # Spec provenance
    # ------------------------------------------------------------------
    def write_spec(self, payload: dict) -> Path:
        """Record the study's expanded spec (idempotent)."""
        self._directory.mkdir(parents=True, exist_ok=True)
        self._spec_path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        return self._spec_path

    def read_spec(self) -> Optional[dict]:
        """The recorded spec payload, or ``None`` if absent."""
        if not self._spec_path.exists():
            return None
        return json.loads(self._spec_path.read_text())

    # ------------------------------------------------------------------
    # Rows
    # ------------------------------------------------------------------
    def append(self, row: dict) -> None:
        """Persist one completed cell row (flushed immediately)."""
        self._directory.mkdir(parents=True, exist_ok=True)
        with self._rows_path.open("a") as handle:
            handle.write(json.dumps(row, sort_keys=True) + "\n")

    def load(self) -> Dict[CellKey, dict]:
        """All persisted rows keyed by cell; later duplicates win.

        Duplicates arise when a study is interrupted and re-run with an
        overlapping matrix — the cells are deterministic, so any copy is
        as good as any other.  A torn *final* line (a run killed
        mid-append) is skipped, so an interrupted study stays resumable;
        a malformed line anywhere else is real corruption and raises.
        """
        rows: Dict[CellKey, dict] = {}
        if not self._rows_path.exists():
            return rows
        lines = [
            line for line in self._rows_path.read_text().splitlines()
            if line.strip()
        ]
        for index, line in enumerate(lines):
            try:
                row = json.loads(line)
            except json.JSONDecodeError:
                if index == len(lines) - 1:
                    break
                raise ExperimentError(
                    f"corrupt row store {self._rows_path} "
                    f"(malformed line {index + 1} of {len(lines)})"
                )
            rows[(row["variant"], int(row["n"]), int(row["seed_index"]))] = row
        return rows

    def completed(self) -> Iterable[CellKey]:
        """Keys of every persisted cell."""
        return self.load().keys()
