"""Persistent result store for studies.

A :class:`~repro.experiments.study.Study` is a matrix of independent,
deterministically seeded simulation cells, so its natural persistence unit
is the *cell row*: one JSON object per completed ``(variant, n, seed)``
cell, appended to a line-delimited file as soon as the cell finishes.  The
layout under the store root is::

    <root>/
      <study-name>-<hash12>/
        spec.json        # the study's expanded specs + identity hash
        rows.jsonl       # canonical rows, one completed cell per line
        rows.csv         # flat export, rewritten on study completion
        shards/          # per-worker append-only row shards (serving mode)
          <worker>.jsonl
        queue/           # work-queue manifest + leases (serving mode)

``<hash12>`` is a content hash over the specs' *identity* fields — the
protocol, its parameters, the engine, the workload, milestones, budget and
root seed, but **not** the matrix extent (``n_values``, ``seeds``).
Re-running a study therefore loads every already-computed cell instead of
re-simulating it, and *extending* a study (more seeds, more population
sizes) only computes the new cells.  Changing anything that affects a
cell's trajectory re-keys the directory, so stale rows can never be
mistaken for current ones.

Concurrency model
-----------------
The canonical ``rows.jsonl`` has one writer at a time (the study process);
scale-out writers each own a private shard under ``shards/`` (see
:class:`repro.serving.ShardedResultStore`).  Three mechanisms make the
directory safe under concurrent writers and crash-prone readers:

* every append is **one** ``write`` call of the fully encoded line (plus
  an optional ``fsync``), taken under an advisory file lock where the
  platform provides one, so two writers can never interleave bytes;
* a **torn trailing line** — a writer killed mid-append — is repaired on
  the next append to that file (the partial record is truncated away; the
  cell is deterministic, so it simply re-runs) and skipped with a warning
  by readers, so a crash never breaks resume;
* :meth:`ResultStore.load` reads the **union** of the canonical file and
  every shard (later duplicates win — cells are deterministic, so every
  copy holds the same bytes), and :meth:`ResultStore.compact` folds shard
  rows into the canonical file append-only before deleting the shards.

Only the standard library is used; rows are plain dictionaries
(:meth:`~repro.experiments.study.RunRow.as_dict`).
"""

from __future__ import annotations

import json
import os
import warnings
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

try:  # pragma: no cover - exercised implicitly on POSIX
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

from ..core.errors import ExperimentError

__all__ = [
    "ResultStore",
    "append_jsonl_line",
    "read_jsonl",
    "repair_torn_tail",
]

#: Key identifying a cell within a study: (variant, n, seed_index).
CellKey = Tuple[str, int, int]


# ----------------------------------------------------------------------
# Low-level JSONL primitives (shared with the serving queue/shards)
# ----------------------------------------------------------------------
@contextmanager
def _locked(handle):
    """Advisory exclusive lock on an open file (no-op without fcntl)."""
    if fcntl is not None:
        fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
    try:
        yield
    finally:
        if fcntl is not None:
            fcntl.flock(handle.fileno(), fcntl.LOCK_UN)


def repair_torn_tail(path) -> bool:
    """Truncate a torn trailing record (no final newline) off ``path``.

    A writer killed between ``write`` and the write landing leaves a
    partial final line.  The partial record is unrecoverable but also
    worthless — every row is deterministic in its cell coordinates — so
    the repair simply truncates back to the last complete line.  Returns
    whether anything was removed.  The caller is expected to hold the
    append lock (or be the file's only writer).
    """
    path = Path(path)
    try:
        size = path.stat().st_size
    except OSError:
        return False
    if size == 0:
        return False
    with path.open("rb+") as handle:
        handle.seek(-1, os.SEEK_END)
        if handle.read(1) == b"\n":
            return False
        position = size
        chunk = 65536
        while position > 0:
            step = min(chunk, position)
            handle.seek(position - step)
            data = handle.read(step)
            cut = data.rfind(b"\n")
            if cut >= 0:
                handle.truncate(position - step + cut + 1)
                return True
            position -= step
        handle.truncate(0)
    return True


def append_jsonl_line(path, payload: dict, fsync: bool = False) -> None:
    """Atomically append one JSON record to ``path``.

    The record is encoded first and written with a *single* ``write`` call
    under an advisory lock, so concurrent appenders (multiple workers, a
    worker racing compaction) can never interleave bytes.  A torn trailing
    line left by a crashed writer is repaired before appending, keeping
    the file parseable end to end.  With ``fsync=True`` the line is
    durable before the call returns — the serving workers use this so a
    released lease implies persisted rows.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    data = (json.dumps(payload, sort_keys=True) + "\n").encode()
    while True:
        with path.open("ab") as handle:
            with _locked(handle):
                # Compaction may unlink the path between our open and the
                # lock; writing to the unlinked inode would lose the row.
                try:
                    if os.fstat(handle.fileno()).st_ino != os.stat(path).st_ino:
                        continue
                except OSError:
                    continue
                repair_torn_tail(path)
                handle.seek(0, os.SEEK_END)
                handle.write(data)
                handle.flush()
                if fsync:
                    os.fsync(handle.fileno())
            return


def read_jsonl(path, strict: bool = True) -> List[dict]:
    """Parse a JSONL file, tolerating a torn final record.

    A partial *final* line (a writer killed mid-append) is skipped with a
    :class:`UserWarning` so an interrupted study stays resumable; a
    malformed line anywhere else is real corruption and raises
    :class:`~repro.core.errors.ExperimentError` (``strict=False`` demotes
    those to warnings too, for operator tooling that must not die on one
    bad store).
    """
    path = Path(path)
    if not path.exists():
        return []
    lines = [line for line in path.read_text().splitlines() if line.strip()]
    rows: List[dict] = []
    for index, line in enumerate(lines):
        try:
            rows.append(json.loads(line))
        except json.JSONDecodeError:
            if index == len(lines) - 1:
                warnings.warn(
                    f"skipping torn trailing record in {path} (a writer "
                    f"was killed mid-append; the cell will re-run)",
                    stacklevel=2,
                )
                break
            message = (
                f"corrupt row store {path} "
                f"(malformed line {index + 1} of {len(lines)})"
            )
            if strict:
                raise ExperimentError(message)
            warnings.warn(message, stacklevel=2)
    return rows


class ResultStore:
    """Append-only, resumable on-disk store for one study's rows.

    Parameters
    ----------
    root:
        Directory holding one subdirectory per study (created on demand).
    name:
        The study name (first path component of the study directory).
    content_hash:
        The study's identity hash (second component); computed by
        :meth:`~repro.experiments.study.Study.content_hash`.
    fsync:
        When true, every append is fsynced before returning (durability
        over throughput; the serving workers turn this on).
    """

    def __init__(self, root, name: str, content_hash: str,
                 fsync: bool = False):
        if not name or any(sep in name for sep in "/\\"):
            raise ExperimentError(f"invalid study name {name!r}")
        self._root = Path(root)
        self._directory = self._root / f"{name}-{content_hash}"
        self._rows_path = self._directory / "rows.jsonl"
        self._spec_path = self._directory / "spec.json"
        self._fsync = bool(fsync)

    @classmethod
    def open(cls, directory, **kwargs) -> "ResultStore":
        """A store for an *existing* study directory (``<name>-<hash>``).

        This is how serving workers attach to a study they did not
        create: the submitting process names the directory, the worker
        only needs the path.
        """
        directory = Path(directory)
        if "-" not in directory.name:
            raise ExperimentError(
                f"{directory} is not a study directory (expected "
                f"<name>-<hash12>)"
            )
        name, content_hash = directory.name.rsplit("-", 1)
        return cls(directory.parent, name, content_hash, **kwargs)

    @property
    def directory(self) -> Path:
        """The study's directory inside the store root."""
        return self._directory

    @property
    def rows_path(self) -> Path:
        """The canonical JSONL file holding completed cell rows."""
        return self._rows_path

    @property
    def shards_directory(self) -> Path:
        """Directory holding per-worker append-only row shards."""
        return self._directory / "shards"

    def shard_paths(self) -> List[Path]:
        """Every shard file currently present, in stable (sorted) order."""
        if not self.shards_directory.is_dir():
            return []
        return sorted(self.shards_directory.glob("*.jsonl"))

    # ------------------------------------------------------------------
    # Spec provenance
    # ------------------------------------------------------------------
    def write_spec(self, payload: dict) -> Path:
        """Record the study's expanded spec (idempotent)."""
        self._directory.mkdir(parents=True, exist_ok=True)
        self._spec_path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        return self._spec_path

    def read_spec(self) -> Optional[dict]:
        """The recorded spec payload, or ``None`` if absent."""
        if not self._spec_path.exists():
            return None
        return json.loads(self._spec_path.read_text())

    # ------------------------------------------------------------------
    # Rows
    # ------------------------------------------------------------------
    def append(self, row: dict) -> None:
        """Persist one completed cell row (atomic single-write append)."""
        append_jsonl_line(self._rows_path, row, fsync=self._fsync)

    def load(self) -> Dict[CellKey, dict]:
        """All persisted rows keyed by cell; later duplicates win.

        Reads the union of the canonical ``rows.jsonl`` and every shard
        under ``shards/`` (canonical first, shards in sorted order), so
        resume and :class:`~repro.experiments.study.ResultSet` queries see
        one consistent view whether rows were written by a single study
        process or by many serving workers.  Duplicates arise when a study
        is interrupted and re-run with an overlapping matrix, or when a
        reclaimed work-queue job re-runs — the cells are deterministic, so
        any copy is as good as any other.  A torn *final* line in any file
        (a run killed mid-append) is skipped with a warning, so an
        interrupted study stays resumable; a malformed line anywhere else
        is real corruption and raises.
        """
        rows: Dict[CellKey, dict] = {}
        for path in [self._rows_path] + self.shard_paths():
            for row in read_jsonl(path):
                key = (row["variant"], int(row["n"]), int(row["seed_index"]))
                rows[key] = row
        return rows

    def completed(self) -> Iterable[CellKey]:
        """Keys of every persisted cell."""
        return self.load().keys()

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def compact(self) -> int:
        """Fold shard rows into the canonical file and delete the shards.

        The pass is append-only on ``rows.jsonl`` (never rewritten, so
        concurrent readers and the canonical single writer stay safe):
        every shard row whose cell key is not already canonical is
        appended, then the shard file is removed under its append lock —
        a worker racing one last append either lands it before the shard
        is read (merged now) or recreates the shard afterwards (merged by
        the next pass).  Crashing between merge and delete leaves
        duplicates, which readers resolve by key.  Returns the number of
        rows merged.
        """
        shard_paths = self.shard_paths()
        if not shard_paths:
            return 0
        known = {
            (row["variant"], int(row["n"]), int(row["seed_index"]))
            for row in read_jsonl(self._rows_path)
        }
        merged = 0
        for shard in shard_paths:
            try:
                handle = shard.open("rb+")
            except OSError:
                continue  # pragma: no cover - raced by another compactor
            with handle:
                with _locked(handle):
                    for row in read_jsonl(shard):
                        key = (
                            row["variant"], int(row["n"]),
                            int(row["seed_index"]),
                        )
                        if key in known:
                            continue
                        append_jsonl_line(
                            self._rows_path, row, fsync=self._fsync
                        )
                        known.add(key)
                        merged += 1
                    try:
                        shard.unlink()
                    except OSError:  # pragma: no cover - raced delete
                        pass
        try:
            self.shards_directory.rmdir()
        except OSError:
            pass  # non-empty (new shard appeared) or already gone
        return merged
