"""Helpers shared by the deprecated driver shims."""

from __future__ import annotations

import numpy as np

from ..core.rng import RandomState

__all__ = ["coerce_seed"]


def coerce_seed(random_state: RandomState) -> int:
    """Reduce a legacy ``random_state`` argument to a plain integer seed.

    Study specs are JSON data, so their root seed is an ``int``.  The old
    drivers also accepted generators and seed sequences; those are folded
    into a derived integer (consuming entropy from a generator, like
    :func:`~repro.core.rng.spawn_seeds` does), and ``None`` draws a fresh
    OS-entropy seed.
    """
    if random_state is None:
        return int(np.random.SeedSequence().entropy % (2**63 - 1))
    if isinstance(random_state, (int, np.integer)):
        return int(random_state)
    if isinstance(random_state, np.random.SeedSequence):
        return int(np.random.default_rng(random_state).integers(0, 2**63 - 1))
    if isinstance(random_state, np.random.Generator):
        return int(random_state.integers(0, 2**63 - 1))
    raise TypeError(
        f"random_state must be None, int, SeedSequence or Generator, "
        f"got {type(random_state).__name__}"
    )
