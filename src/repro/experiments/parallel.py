"""Multiprocess fan-out for study cells.

A study's cells are independent by construction — every cell derives its
randomness from its own ``(spec identity, n, seed_index)`` coordinates —
so executing them in worker processes is semantically invisible: the rows
coming back are bit-identical to a serial run, whatever the scheduling.
This module keeps the mechanics in one place:

* workers are started with the ``spawn`` method (fresh interpreters that
  re-import :mod:`repro`), so no simulator state leaks between parent and
  children and the behaviour matches across platforms;
* each worker keeps the per-process engine caches of
  :mod:`repro.experiments.study` warm, so repeated cells of one variant
  amortize the transition tabulation exactly like a serial sweep;
* results stream back as they finish (``imap_unordered``) and are handed
  to the caller's callback immediately — the study appends them to its
  store, which is what makes an interrupted parallel run resumable.
"""

from __future__ import annotations

import multiprocessing
from typing import Callable, List, Optional, Sequence, Tuple

from .study import execute_cell

__all__ = ["run_cells"]

#: (spec payload dict, n, seed_index) — the unit of work shipped to workers.
CellArgs = Tuple[dict, int, int]


def _execute(args: CellArgs) -> dict:
    return execute_cell(*args)


def run_cells(
    cells: Sequence[CellArgs],
    jobs: int = 1,
    callback: Optional[Callable[[dict], None]] = None,
) -> List[dict]:
    """Execute study cells, optionally across worker processes.

    Parameters
    ----------
    cells:
        The pending work units, in matrix order.
    jobs:
        ``1`` executes serially in this process (no multiprocessing
        import cost, easiest to debug); ``> 1`` fans out over a spawn
        pool of that many workers.
    callback:
        Called with each finished row as soon as it is available (in
        completion order under parallel execution).

    Returns
    -------
    list of dict
        The finished rows.  Order follows completion, not submission —
        callers that need a canonical order sort by the rows' cell keys
        (the :class:`~repro.experiments.study.Study` does).
    """
    cells = list(cells)
    if not cells:
        return []
    if jobs == 1 or len(cells) == 1:
        rows = []
        for args in cells:
            row = execute_cell(*args)
            rows.append(row)
            if callback is not None:
                callback(row)
        return rows

    context = multiprocessing.get_context("spawn")
    rows = []
    with context.Pool(processes=min(jobs, len(cells))) as pool:
        for row in pool.imap_unordered(_execute, cells, chunksize=1):
            rows.append(row)
            if callback is not None:
                callback(row)
    return rows
