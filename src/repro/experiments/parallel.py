"""Multiprocess fan-out for study cells.

A study's cells are independent by construction — every cell derives its
randomness from its own ``(spec identity, n, seed_index)`` coordinates —
so executing them in worker processes is semantically invisible: the rows
coming back are bit-identical to a serial run, whatever the scheduling.
This module keeps the mechanics in one place:

* workers are started with the ``spawn`` method (fresh interpreters that
  re-import :mod:`repro`), so no simulator state leaks between parent and
  children and the behaviour matches across platforms;
* each worker keeps the per-process engine caches of
  :mod:`repro.experiments.study` warm, so repeated cells of one variant
  amortize the transition tabulation exactly like a serial sweep;
* results stream back as they finish (``imap_unordered``) and are handed
  to the caller's callback immediately — the study appends them to its
  store, which is what makes an interrupted parallel run resumable.
"""

from __future__ import annotations

import multiprocessing
from typing import Callable, List, Optional, Sequence, Tuple

from .study import execute_batch, execute_cell

__all__ = ["execute_unit", "run_cells", "run_units", "unit_cell_keys"]

#: (spec payload dict, n, seed_index) — one cell shipped to a worker.
CellArgs = Tuple[dict, int, int]

#: Tagged work unit: ``("cell", payload, n, seed_index)`` runs one cell,
#: ``("batch", payload, n, seed_indices)`` runs a whole same-spec seed
#: group in lockstep on a batching backend.  A batch unit is indivisible —
#: it ships to one worker, which is what lets the lanes share a process-
#: local engine cache — but different units still fan out.  Units are
#: produced by :func:`repro.experiments.study.plan_units` and consumed
#: both here (pool fan-out) and by the serving work queue, whose jobs
#: wrap one unit each (:mod:`repro.serving.queue`).
UnitArgs = tuple


def execute_unit(unit: UnitArgs) -> List[dict]:
    """Run one tagged work unit; returns its finished row dictionaries.

    This is the single execution entry point shared by every scheduling
    mode — serial loops, pool workers and queue-draining ``repro worker``
    processes all call it — which is what keeps the produced rows
    independent of *where* a unit ran.
    """
    kind = unit[0]
    if kind == "batch":
        _, payload, n, seed_indices = unit
        return execute_batch(payload, n, list(seed_indices))
    _, payload, n, seed_index = unit
    return [execute_cell(payload, n, seed_index)]


def unit_cell_keys(unit: UnitArgs) -> List[Tuple[str, int, int]]:
    """The store cell keys a unit produces when it completes."""
    kind, payload, n = unit[0], unit[1], int(unit[2])
    variant = payload["variant"]
    if kind == "batch":
        return [(variant, n, int(seed)) for seed in unit[3]]
    return [(variant, n, int(unit[3]))]


def run_units(
    units: Sequence[UnitArgs],
    jobs: int = 1,
    callback: Optional[Callable[[dict], None]] = None,
) -> List[dict]:
    """Execute tagged work units, optionally across worker processes.

    Parameters
    ----------
    units:
        The pending work units, in matrix order.
    jobs:
        ``1`` executes serially in this process (no multiprocessing
        import cost, easiest to debug); ``> 1`` fans out over a spawn
        pool of that many workers.
    callback:
        Called with each finished row as soon as it is available (in
        completion order under parallel execution; rows of one batch
        unit arrive together, in the unit's seed order).

    Returns
    -------
    list of dict
        The finished rows.  Order follows completion, not submission —
        callers that need a canonical order sort by the rows' cell keys
        (the :class:`~repro.experiments.study.Study` does).
    """
    units = list(units)
    if not units:
        return []
    if jobs == 1 or len(units) == 1:
        rows = []
        for unit in units:
            for row in execute_unit(unit):
                rows.append(row)
                if callback is not None:
                    callback(row)
        return rows

    context = multiprocessing.get_context("spawn")
    rows = []
    with context.Pool(processes=min(jobs, len(units))) as pool:
        for unit_rows in pool.imap_unordered(execute_unit, units, chunksize=1):
            for row in unit_rows:
                rows.append(row)
                if callback is not None:
                    callback(row)
    return rows


def run_cells(
    cells: Sequence[CellArgs],
    jobs: int = 1,
    callback: Optional[Callable[[dict], None]] = None,
) -> List[dict]:
    """Execute bare (payload, n, seed) cells — see :func:`run_units`."""
    return run_units(
        [("cell",) + tuple(args) for args in cells], jobs=jobs,
        callback=callback,
    )
