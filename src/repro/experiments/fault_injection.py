"""Experiment E6 — recovery from injected transient faults.

Theorem 2 promises stabilization from *any* configuration.  This experiment
makes that concrete for three fault models applied to an otherwise healthy
system running ``StableRanking``:

* ``duplicate_rank`` — some agents' ranks are overwritten with other agents'
  ranks (the canonical transient memory fault);
* ``missing_rank`` — one agent loses its rank entirely and rejoins as a
  phase agent (a crash-recover fault; with the missing rank being 1 this is
  exactly the Figure 2 workload);
* ``adversarial`` — every agent's state is replaced by a uniformly random
  state from the protocol's state space.

For each fault the experiment measures the number of interactions until the
population is back in a clean legal configuration.

The experiment is a preset over the declarative study API — one spec per
fault model (:func:`fault_injection_specs`, ``python -m repro run
fault_injection``); :func:`run_fault_injection` remains as a deprecated
shim.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..analysis.statistics import summarize
from ..core.errors import ExperimentError
from ..core.rng import RandomState
from .ascii_plot import format_table
from .study import ExperimentSpec, ResultSet, Study
from ._shims import coerce_seed

__all__ = [
    "FaultInjectionResult",
    "fault_injection_specs",
    "fault_injection_result_from_rows",
    "run_fault_injection",
    "format_fault_injection",
]

FAULT_MODELS = ("duplicate_rank", "missing_rank", "adversarial")


@dataclass
class FaultInjectionResult:
    """Recovery times per fault model and population size."""

    n_values: Sequence[int]
    repetitions: int
    # recovery[(fault, n)] = list of interaction counts until recovery.
    recovery: Dict[tuple, List[int]] = field(default_factory=dict)
    convergence: Dict[tuple, float] = field(default_factory=dict)

    def rows(self) -> List[dict]:
        rows = []
        for (fault, n), samples in sorted(
            self.recovery.items(), key=lambda kv: (kv[0][1], kv[0][0])
        ):
            # A cell can legitimately be empty (a filtered result set, a
            # store loaded mid-matrix): report it as 0 runs / 0.0
            # recovered instead of failing on the empty summary.
            if samples:
                summary = summarize(samples)
                mean = summary.mean
                runs = summary.count
            else:
                mean = 0.0
                runs = 0
            rows.append(
                {
                    "fault": fault,
                    "n": n,
                    "mean_recovery_interactions": mean,
                    "mean_over_n2": mean / (n * n),
                    "recovered_fraction": self.convergence.get((fault, n), 0.0),
                    "runs": runs,
                }
            )
        return rows


def fault_injection_specs(
    n_values: Sequence[int] = (32, 64),
    repetitions: int = 5,
    faults: Sequence[str] = FAULT_MODELS,
    max_interactions_factor: int = 400,
    l_max: int | None = None,
    engine: str = "auto",
    random_state: int = 0,
) -> Tuple[ExperimentSpec, ...]:
    """The fault-injection study as one spec per fault model.

    Every fault model is a workload over the same protocol family, so the
    study is simply three variants of ``StableRanking`` with different
    initial-configuration builders.
    """
    for fault in faults:
        if fault not in FAULT_MODELS:
            raise ExperimentError(f"unknown fault model {fault!r}")
    params = {} if l_max is None else {"l_max": l_max}
    return tuple(
        ExperimentSpec(
            variant=fault,
            protocol="stable-ranking",
            n_values=tuple(n_values),
            seeds=repetitions,
            engine=engine,
            workload=fault,
            protocol_params=params,
            max_interactions_factor=float(max_interactions_factor),
            random_state=random_state,
        )
        for fault in faults
    )


def fault_injection_result_from_rows(result: ResultSet) -> FaultInjectionResult:
    """Convert a study result set into the legacy :class:`FaultInjectionResult`.

    Cells without rows (an empty or partially filtered result set, a
    store loaded mid-matrix) are kept with an explicit empty sample and a
    ``recovered_fraction`` of 0.0 rather than raising.
    """
    if not result.specs:
        return FaultInjectionResult(n_values=(), repetitions=0)
    first = result.specs[0]
    out = FaultInjectionResult(
        n_values=tuple(first.n_values), repetitions=first.seeds
    )
    for spec in result.specs:
        for n in spec.n_values:
            rows = result.filter(variant=spec.variant, n=n).rows
            key = (spec.variant, n)
            out.recovery[key] = [row.interactions for row in rows]
            out.convergence[key] = (
                sum(row.converged for row in rows) / len(rows) if rows else 0.0
            )
    return out


def run_fault_injection(
    n_values: Sequence[int] = (32, 64),
    repetitions: int = 5,
    faults: Sequence[str] = FAULT_MODELS,
    max_interactions_factor: int = 400,
    random_state: RandomState = 0,
    l_max: int | None = None,
) -> FaultInjectionResult:
    """Measure recovery times of ``StableRanking`` under injected faults.

    .. deprecated::
        Thin shim over :class:`~repro.experiments.study.Study`; build the
        specs with :func:`fault_injection_specs` (or use ``python -m repro
        run fault_injection``) to get parallel seed fan-out and the result
        store.
    """
    warnings.warn(
        "run_fault_injection is deprecated; use "
        "Study(fault_injection_specs(...)) or "
        "`python -m repro run fault_injection`",
        DeprecationWarning,
        stacklevel=2,
    )
    if repetitions < 1:
        raise ExperimentError("repetitions must be positive")
    specs = fault_injection_specs(
        n_values=n_values,
        repetitions=repetitions,
        faults=faults,
        max_interactions_factor=max_interactions_factor,
        l_max=l_max,
        # Pinned so the deprecated entry point keeps its v1.1 seeded
        # results (the engine is part of the spec identity).
        engine="reference",
        random_state=coerce_seed(random_state),
    )
    return fault_injection_result_from_rows(
        Study(specs, name="fault-injection").run()
    )


def format_fault_injection(result: FaultInjectionResult) -> str:
    """Render the fault-injection study as a text table."""
    header = (
        f"Fault-injection recovery — StableRanking ({result.repetitions} runs per cell).  "
        f"Every fault model should recover within O(n² log n) interactions."
    )
    return header + "\n" + format_table(result.rows())
