"""Experiment E6 — recovery from injected transient faults.

Theorem 2 promises stabilization from *any* configuration.  This experiment
makes that concrete for three fault models applied to an otherwise healthy
system running ``StableRanking``:

* ``duplicate_rank`` — some agents' ranks are overwritten with other agents'
  ranks (the canonical transient memory fault);
* ``missing_rank`` — one agent loses its rank entirely and rejoins as a
  phase agent (a crash-recover fault; with the missing rank being 1 this is
  exactly the Figure 2 workload);
* ``adversarial`` — every agent's state is replaced by a uniformly random
  state from the protocol's state space.

For each fault the experiment measures the number of interactions until the
population is back in a clean legal configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from ..analysis.statistics import summarize
from ..core.errors import ExperimentError
from ..core.rng import RandomState, spawn_seeds
from ..core.simulation import Simulator
from ..protocols.ranking.stable_ranking import StableRanking
from .ascii_plot import format_table
from .workloads import (
    adversarial_configuration,
    duplicate_rank_configuration,
    missing_rank_configuration,
)

__all__ = ["FaultInjectionResult", "run_fault_injection", "format_fault_injection"]

FAULT_MODELS = ("duplicate_rank", "missing_rank", "adversarial")


@dataclass
class FaultInjectionResult:
    """Recovery times per fault model and population size."""

    n_values: Sequence[int]
    repetitions: int
    # recovery[(fault, n)] = list of interaction counts until recovery.
    recovery: Dict[tuple, List[int]] = field(default_factory=dict)
    convergence: Dict[tuple, float] = field(default_factory=dict)

    def rows(self) -> List[dict]:
        rows = []
        for (fault, n), samples in sorted(
            self.recovery.items(), key=lambda kv: (kv[0][1], kv[0][0])
        ):
            summary = summarize(samples)
            rows.append(
                {
                    "fault": fault,
                    "n": n,
                    "mean_recovery_interactions": summary.mean,
                    "mean_over_n2": summary.mean / (n * n),
                    "recovered_fraction": self.convergence[(fault, n)],
                    "runs": summary.count,
                }
            )
        return rows


def run_fault_injection(
    n_values: Sequence[int] = (32, 64),
    repetitions: int = 5,
    faults: Sequence[str] = FAULT_MODELS,
    max_interactions_factor: int = 400,
    random_state: RandomState = 0,
    l_max: int | None = None,
) -> FaultInjectionResult:
    """Measure recovery times of ``StableRanking`` under injected faults."""
    for fault in faults:
        if fault not in FAULT_MODELS:
            raise ExperimentError(f"unknown fault model {fault!r}")
    if repetitions < 1:
        raise ExperimentError("repetitions must be positive")

    result = FaultInjectionResult(n_values=tuple(n_values), repetitions=repetitions)
    for n in n_values:
        for fault in faults:
            seeds = spawn_seeds((hash((fault, n, str(random_state))) & 0x7FFFFFFF), repetitions)
            times: List[int] = []
            recovered = 0
            for seed in seeds:
                rng = np.random.default_rng(seed)
                protocol = StableRanking(n, l_max=l_max)
                configuration = _faulty_configuration(fault, protocol, rng)
                simulator = Simulator(
                    protocol, configuration=configuration, random_state=rng
                )
                outcome = simulator.run(
                    max_interactions=max_interactions_factor * n * n
                )
                times.append(outcome.interactions)
                recovered += int(outcome.converged)
            result.recovery[(fault, n)] = times
            result.convergence[(fault, n)] = recovered / repetitions
    return result


def _faulty_configuration(fault: str, protocol: StableRanking, rng: np.random.Generator):
    if fault == "duplicate_rank":
        return duplicate_rank_configuration(protocol.n, duplicates=1, random_state=rng)
    if fault == "missing_rank":
        missing = int(rng.integers(1, protocol.n + 1))
        return missing_rank_configuration(protocol, missing_rank=missing)
    return adversarial_configuration(protocol, random_state=rng)


def format_fault_injection(result: FaultInjectionResult) -> str:
    """Render the fault-injection study as a text table."""
    header = (
        f"Fault-injection recovery — StableRanking ({result.repetitions} runs per cell).  "
        f"Every fault model should recover within O(n² log n) interactions."
    )
    return header + "\n" + format_table(result.rows())
