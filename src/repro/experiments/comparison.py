"""Experiment E5 — comparing ``StableRanking`` against the baselines.

The paper positions its protocol in a state/time trade-off against two
existing self-stabilizing approaches:

* Cai et al. [21]: exactly ``n`` states, but ``O(n³)`` interactions;
* Burman et al. [20] (silent variant): ``O(n² log n)`` interactions, but
  ``n + Θ(n)`` states.

This experiment measures stabilization times of the corresponding
implementations (plus ``StableRanking`` itself) from the same initial
conditions — either the designated fresh start or an adversarially corrupted
ranking — and pairs them with each protocol's overhead-state count, giving
the full comparison in one table.

The experiment is a preset over the declarative study API — one spec per
protocol family (:func:`comparison_specs`, ``python -m repro run
comparison``); :func:`run_comparison` remains as a deprecated shim.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..analysis.statistics import summarize
from ..baselines.burman_ranking import BurmanStyleRanking
from ..baselines.cai_ranking import CaiRanking
from ..core.errors import ExperimentError
from ..core.rng import RandomState
from ..protocols.ranking.stable_ranking import StableRanking
from .ascii_plot import format_table
from .study import ExperimentSpec, ResultSet, Study
from ._shims import coerce_seed

__all__ = [
    "ComparisonResult",
    "comparison_specs",
    "comparison_result_from_rows",
    "run_comparison",
    "format_comparison",
]

#: Protocol factories by name; every factory takes the population size.
PROTOCOL_FAMILIES: Dict[str, Callable[[int], object]] = {
    "stable-ranking": StableRanking,
    "burman-style-ranking": BurmanStyleRanking,
    "cai-ranking": CaiRanking,
}


@dataclass
class ComparisonResult:
    """Stabilization times and state counts per protocol and population size."""

    n_values: Sequence[int]
    repetitions: int
    workload: str
    # times[(protocol, n)] = list of interaction counts.
    times: Dict[tuple, List[int]] = field(default_factory=dict)
    # overhead[(protocol, n)] = overhead-state count per the protocol's accounting.
    overhead: Dict[tuple, int] = field(default_factory=dict)
    convergence: Dict[tuple, float] = field(default_factory=dict)

    def rows(self) -> List[dict]:
        rows = []
        for (protocol, n), samples in sorted(self.times.items(), key=lambda kv: (kv[0][1], kv[0][0])):
            summary = summarize(samples)
            rows.append(
                {
                    "protocol": protocol,
                    "n": n,
                    "mean_interactions": summary.mean,
                    "mean_over_n2": summary.mean / (n * n),
                    "overhead_states": self.overhead[(protocol, n)],
                    "converged_fraction": self.convergence[(protocol, n)],
                    "runs": summary.count,
                }
            )
        return rows


def comparison_specs(
    n_values: Sequence[int] = (16, 32, 64),
    repetitions: int = 5,
    workload: str = "fresh",
    protocols: Optional[Sequence[str]] = None,
    max_interactions_factor: int = 400,
    engine: str = "auto",
    random_state: int = 0,
) -> Tuple[ExperimentSpec, ...]:
    """The baseline comparison as one spec per protocol family.

    ``workload="fresh"`` starts every protocol from its designated initial
    configuration; ``"corrupted"`` starts from a valid ranking with one
    duplicated rank (a transient fault), which is meaningful only for the
    self-stabilizing protocols and exercises their recovery path.
    ``max_interactions_factor`` is the per-run budget in units of ``n²``
    — the Cai baseline needs ``Θ(n³)`` interactions, so the factor must
    comfortably exceed the largest population size used.
    """
    if workload not in ("fresh", "corrupted"):
        raise ExperimentError(f"unknown workload {workload!r}")
    names = list(protocols) if protocols is not None else list(PROTOCOL_FAMILIES)
    for name in names:
        if name not in PROTOCOL_FAMILIES:
            raise ExperimentError(f"unknown protocol {name!r}")
    spec_workload = "fresh" if workload == "fresh" else "duplicate_rank"
    return tuple(
        ExperimentSpec(
            variant=name,
            protocol=name,
            n_values=tuple(n_values),
            seeds=repetitions,
            engine=engine,
            workload=spec_workload,
            max_interactions_factor=float(max_interactions_factor),
            random_state=random_state,
        )
        for name in names
    )


def comparison_result_from_rows(
    result: ResultSet, workload: str = "fresh"
) -> ComparisonResult:
    """Convert a study result set into the legacy :class:`ComparisonResult`."""
    first = result.specs[0]
    out = ComparisonResult(
        n_values=tuple(first.n_values),
        repetitions=first.seeds,
        workload=workload,
    )
    for spec in result.specs:
        factory = PROTOCOL_FAMILIES[spec.protocol]
        for n in spec.n_values:
            rows = result.filter(variant=spec.variant, n=n).rows
            key = (spec.variant, n)
            out.times[key] = [row.interactions for row in rows]
            out.convergence[key] = (
                sum(row.converged for row in rows) / len(rows) if rows else 0.0
            )
            protocol = factory(n)
            out.overhead[key] = (
                protocol.overhead_states()
                if hasattr(protocol, "overhead_states")
                else -1
            )
    return out


def run_comparison(
    n_values: Sequence[int] = (16, 32, 64),
    repetitions: int = 5,
    workload: str = "fresh",
    protocols: Optional[Sequence[str]] = None,
    max_interactions_factor: int = 400,
    random_state: RandomState = 0,
) -> ComparisonResult:
    """Run the baseline comparison.

    .. deprecated::
        Thin shim over :class:`~repro.experiments.study.Study`; build the
        specs with :func:`comparison_specs` (or use ``python -m repro run
        comparison``) to get parallel seed fan-out and the result store.
    """
    warnings.warn(
        "run_comparison is deprecated; use Study(comparison_specs(...)) or "
        "`python -m repro run comparison`",
        DeprecationWarning,
        stacklevel=2,
    )
    if repetitions < 1:
        raise ExperimentError("repetitions must be positive")
    specs = comparison_specs(
        n_values=n_values,
        repetitions=repetitions,
        workload=workload,
        protocols=protocols,
        max_interactions_factor=max_interactions_factor,
        # Pinned so the deprecated entry point keeps its v1.1 seeded
        # results (the engine is part of the spec identity).
        engine="reference",
        random_state=coerce_seed(random_state),
    )
    result = Study(specs, name="comparison").run()
    return comparison_result_from_rows(result, workload=workload)


def format_comparison(result: ComparisonResult) -> str:
    """Render the comparison as a text table."""
    header = (
        f"Baseline comparison ({result.workload} start, {result.repetitions} runs per cell).  "
        f"StableRanking should match the Burman-style baseline's time with "
        f"exponentially fewer overhead states, and beat the Cai baseline's time "
        f"by a growing factor."
    )
    return header + "\n" + format_table(result.rows())
