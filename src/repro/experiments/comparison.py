"""Experiment E5 — comparing ``StableRanking`` against the baselines.

The paper positions its protocol in a state/time trade-off against two
existing self-stabilizing approaches:

* Cai et al. [21]: exactly ``n`` states, but ``O(n³)`` interactions;
* Burman et al. [20] (silent variant): ``O(n² log n)`` interactions, but
  ``n + Θ(n)`` states.

This experiment measures stabilization times of the corresponding
implementations (plus ``StableRanking`` itself) from the same initial
conditions — either the designated fresh start or an adversarially corrupted
ranking — and pairs them with each protocol's overhead-state count, giving
the full comparison in one table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..analysis.statistics import summarize
from ..baselines.burman_ranking import BurmanStyleRanking
from ..baselines.cai_ranking import CaiRanking
from ..core.errors import ExperimentError
from ..core.rng import RandomState
from ..protocols.ranking.stable_ranking import StableRanking
from .ascii_plot import format_table
from .harness import ExperimentRunner
from .workloads import duplicate_rank_configuration

__all__ = ["ComparisonResult", "run_comparison", "format_comparison"]

#: Protocol factories by name; every factory takes the population size.
PROTOCOL_FAMILIES: Dict[str, Callable[[int], object]] = {
    "stable-ranking": StableRanking,
    "burman-style-ranking": BurmanStyleRanking,
    "cai-ranking": CaiRanking,
}


@dataclass
class ComparisonResult:
    """Stabilization times and state counts per protocol and population size."""

    n_values: Sequence[int]
    repetitions: int
    workload: str
    # times[(protocol, n)] = list of interaction counts.
    times: Dict[tuple, List[int]] = field(default_factory=dict)
    # overhead[(protocol, n)] = overhead-state count per the protocol's accounting.
    overhead: Dict[tuple, int] = field(default_factory=dict)
    convergence: Dict[tuple, float] = field(default_factory=dict)

    def rows(self) -> List[dict]:
        rows = []
        for (protocol, n), samples in sorted(self.times.items(), key=lambda kv: (kv[0][1], kv[0][0])):
            summary = summarize(samples)
            rows.append(
                {
                    "protocol": protocol,
                    "n": n,
                    "mean_interactions": summary.mean,
                    "mean_over_n2": summary.mean / (n * n),
                    "overhead_states": self.overhead[(protocol, n)],
                    "converged_fraction": self.convergence[(protocol, n)],
                    "runs": summary.count,
                }
            )
        return rows


def run_comparison(
    n_values: Sequence[int] = (16, 32, 64),
    repetitions: int = 5,
    workload: str = "fresh",
    protocols: Optional[Sequence[str]] = None,
    max_interactions_factor: int = 400,
    random_state: RandomState = 0,
) -> ComparisonResult:
    """Run the baseline comparison.

    Parameters
    ----------
    workload:
        ``"fresh"`` starts every protocol from its designated initial
        configuration; ``"corrupted"`` starts from a valid ranking with one
        duplicated rank (a transient fault), which is meaningful only for the
        self-stabilizing protocols and exercises their recovery path.
    max_interactions_factor:
        Interaction budget per run, in units of ``n²`` — the Cai baseline
        needs ``Θ(n³)`` interactions, so the factor must comfortably exceed
        the largest population size used.
    """
    if workload not in ("fresh", "corrupted"):
        raise ExperimentError(f"unknown workload {workload!r}")
    names = list(protocols) if protocols is not None else list(PROTOCOL_FAMILIES)
    for name in names:
        if name not in PROTOCOL_FAMILIES:
            raise ExperimentError(f"unknown protocol {name!r}")

    result = ComparisonResult(
        n_values=tuple(n_values), repetitions=repetitions, workload=workload
    )
    for n in n_values:
        for name in names:
            factory = PROTOCOL_FAMILIES[name]
            if workload == "fresh":
                configuration_factory = None
            else:
                configuration_factory = (
                    lambda protocol, n=n: duplicate_rank_configuration(
                        n, random_state=hash((n, protocol.name)) & 0x7FFFFFFF
                    )
                )
            runner = ExperimentRunner(
                protocol_factory=lambda factory=factory, n=n: factory(n),
                configuration_factory=configuration_factory,
                max_interactions=max_interactions_factor * n * n,
                random_state=(hash((name, n, str(random_state))) & 0x7FFFFFFF),
            )
            sweep = runner.run(repetitions=repetitions)
            key = (name, n)
            result.times[key] = [record.interactions for record in sweep.records]
            result.convergence[key] = sweep.convergence_rate()
            protocol = factory(n)
            result.overhead[key] = (
                protocol.overhead_states() if hasattr(protocol, "overhead_states") else -1
            )
    return result


def format_comparison(result: ComparisonResult) -> str:
    """Render the comparison as a text table."""
    header = (
        f"Baseline comparison ({result.workload} start, {result.repetitions} runs per cell).  "
        f"StableRanking should match the Burman-style baseline's time with "
        f"exponentially fewer overhead states, and beat the Cai baseline's time "
        f"by a growing factor."
    )
    return header + "\n" + format_table(result.rows())
