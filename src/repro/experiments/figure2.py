"""Experiment E1 — reproduce the paper's Figure 2.

Figure 2 shows, for ``StableRanking`` with ``n = 256``, ``c_wait = 2`` and
``c_live = 4``, the number of ranked agents and the average phase counter of
the unranked agents as a function of the number of interactions (normalized
by ``n²``), starting from the worst-case initialization in which agents hold
the ranks ``2 … n`` and a single phase agent with maximum liveness counter
has to discover that rank 1 is missing.

Expected shape (the constants depend on the counter sizes): a long flat
prefix while the liveness counter drains, a reset that drops the ranked
count to zero, a quick recovery of most ranks, and a long tail for the final
few agents while the average phase climbs towards ``⌈log₂ n⌉``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from ..core.metrics import MetricsCollector, standard_ranking_probes
from ..core.rng import RandomState
from ..core.simulation import Simulator
from ..protocols.ranking.stable_ranking import StableRanking
from .ascii_plot import ascii_plot, format_table
from .workloads import figure2_initial_configuration

__all__ = ["Figure2Result", "run_figure2", "format_figure2"]

#: Scale of the maximum liveness counter (``L_max = scale · log₂ n``) used by
#: the Figure 2 workload.  The initial drain of the counter takes about
#: ``L_max / 2`` interactions per ordered pair, i.e. ``≈ scale/2 · log₂(n)``
#: times ``n²`` interactions; with scale 6 and ``n = 256`` the reset lands
#: around ``24 n²``, matching the paper's figure, while keeping the
#: probability of spurious liveness resets during the subsequent re-ranking
#: negligible (it decays geometrically in ``L_max``).
PAPER_COUNTER_SCALE = 6.0


@dataclass
class Figure2Result:
    """The two series of Figure 2 for one run."""

    n: int
    interactions: List[int]
    ranked_agents: List[float]
    average_phase: List[float]
    total_interactions: int
    resets: int
    converged: bool

    @property
    def normalized_interactions(self) -> List[float]:
        """x-axis of the figure: interactions divided by ``n²``."""
        scale = float(self.n * self.n)
        return [value / scale for value in self.interactions]

    def rows(self) -> List[dict]:
        """Flat rows (one per sample) for CSV export."""
        return [
            {
                "interactions": interactions,
                "interactions_over_n2": interactions / float(self.n * self.n),
                "ranked_agents": ranked,
                "average_phase": phase,
            }
            for interactions, ranked, phase in zip(
                self.interactions, self.ranked_agents, self.average_phase
            )
        ]


def run_figure2(
    n: int = 256,
    c_wait: float = 2.0,
    c_live: float = 4.0,
    random_state: RandomState = 0,
    max_normalized_interactions: float = 200.0,
    samples: int = 240,
    l_max: Optional[int] = None,
) -> Figure2Result:
    """Run the Figure 2 scenario once and return the recorded series.

    Parameters
    ----------
    n, c_wait, c_live:
        The paper's parameters (256, 2, 4).
    max_normalized_interactions:
        Interaction budget in units of ``n²`` (the run also stops at
        convergence, whichever comes first... the budget exists so a
        pathological seed cannot hang a benchmark).
    samples:
        Number of metric snapshots across the budget.
    l_max:
        Maximum counter value; defaults to ``⌈PAPER_COUNTER_SCALE · log₂ n⌉``
        to match the paper's parameterization.
    """
    if l_max is None:
        l_max = max(8, int(math.ceil(PAPER_COUNTER_SCALE * math.log2(n))))
    protocol = StableRanking(n, c_wait=c_wait, c_live=c_live, l_max=l_max)
    configuration = figure2_initial_configuration(protocol)
    budget = int(max_normalized_interactions * n * n)
    interval = max(1, budget // max(samples, 1))
    metrics = MetricsCollector(standard_ranking_probes(), interval=interval)
    simulator = Simulator(
        protocol,
        configuration=configuration,
        random_state=random_state,
        metrics=metrics,
    )
    result = simulator.run(max_interactions=budget, stop_on_convergence=True)

    ranked_series = metrics.get("ranked_agents")
    phase_series = metrics.get("average_phase")
    return Figure2Result(
        n=n,
        interactions=list(ranked_series.interactions),
        ranked_agents=list(ranked_series.values),
        average_phase=list(phase_series.values),
        total_interactions=result.interactions,
        resets=result.resets,
        converged=result.converged,
    )


def format_figure2(result: Figure2Result, plot: bool = True) -> str:
    """Render the Figure 2 series as text (table of key points plus plot)."""
    lines = [
        f"Figure 2 reproduction — StableRanking, n = {result.n}",
        f"converged: {result.converged}, total interactions: "
        f"{result.total_interactions} ({result.total_interactions / result.n**2:.1f} n²), "
        f"resets observed: {result.resets}",
    ]
    if plot:
        lines.append(
            ascii_plot(
                result.normalized_interactions,
                result.ranked_agents,
                title="ranked agents vs interactions / n²",
            )
        )
        lines.append(
            ascii_plot(
                result.normalized_interactions,
                result.average_phase,
                title="average phase of unranked agents vs interactions / n²",
            )
        )
    # A condensed table of ~12 evenly spaced sample points.
    rows = result.rows()
    stride = max(1, len(rows) // 12)
    lines.append(
        format_table(
            rows[::stride],
            columns=["interactions_over_n2", "ranked_agents", "average_phase"],
        )
    )
    return "\n".join(lines)
