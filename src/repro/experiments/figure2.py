"""Experiment E1 — reproduce the paper's Figure 2.

Figure 2 shows, for ``StableRanking`` with ``n = 256``, ``c_wait = 2`` and
``c_live = 4``, the number of ranked agents and the average phase counter of
the unranked agents as a function of the number of interactions (normalized
by ``n²``), starting from the worst-case initialization in which agents hold
the ranks ``2 … n`` and a single phase agent with maximum liveness counter
has to discover that rank 1 is missing.

Expected shape (the constants depend on the counter sizes): a long flat
prefix while the liveness counter drains, a reset that drops the ranked
count to zero, a quick recovery of most ranks, and a long tail for the final
few agents while the average phase climbs towards ``⌈log₂ n⌉``.

The experiment is a preset over the declarative study API: see
:func:`figure2_specs` for the spec and
``python -m repro run figure2`` for the command-line entry point.
:func:`run_figure2` remains as a deprecated shim with its original
signature.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.errors import ExperimentError
from ..core.rng import RandomState
from .ascii_plot import ascii_plot, format_table
from .study import PAPER_COUNTER_SCALE, ExperimentSpec, ResultSet, RunRow, Study
from ._shims import coerce_seed

__all__ = [
    "Figure2Result",
    "figure2_specs",
    "figure2_result_from_rows",
    "run_figure2",
    "format_figure2",
]


@dataclass
class Figure2Result:
    """The two series of Figure 2 for one run."""

    n: int
    interactions: List[int]
    ranked_agents: List[float]
    average_phase: List[float]
    total_interactions: int
    resets: int
    converged: bool

    @property
    def normalized_interactions(self) -> List[float]:
        """x-axis of the figure: interactions divided by ``n²``."""
        scale = float(self.n * self.n)
        return [value / scale for value in self.interactions]

    def rows(self) -> List[dict]:
        """Flat rows (one per sample) for CSV export."""
        return [
            {
                "interactions": interactions,
                "interactions_over_n2": interactions / float(self.n * self.n),
                "ranked_agents": ranked,
                "average_phase": phase,
            }
            for interactions, ranked, phase in zip(
                self.interactions, self.ranked_agents, self.average_phase
            )
        ]


def figure2_specs(
    n_values: Sequence[int] = (256,),
    seeds: int = 1,
    c_wait: float = 2.0,
    c_live: float = 4.0,
    max_normalized_interactions: float = 200.0,
    samples: int = 240,
    l_max: Optional[int] = None,
    engine: str = "auto",
    random_state: int = 0,
) -> Tuple[ExperimentSpec, ...]:
    """The Figure 2 scenario as a declarative spec.

    The protocol factory ``stable-ranking-figure2`` applies the paper's
    liveness-counter parameterization ``L_max = ⌈6 · log₂ n⌉`` per
    population size unless ``l_max`` overrides it.
    """
    params = {"c_wait": c_wait, "c_live": c_live}
    if l_max is not None:
        params["l_max"] = l_max
    return (
        ExperimentSpec(
            variant="figure2",
            protocol="stable-ranking-figure2",
            n_values=tuple(n_values),
            seeds=seeds,
            engine=engine,
            workload="figure2",
            protocol_params=params,
            max_interactions_factor=max_normalized_interactions,
            samples=samples,
            random_state=random_state,
        ),
    )


def figure2_result_from_rows(result: ResultSet, n: Optional[int] = None,
                             seed_index: int = 0) -> Figure2Result:
    """Extract one run's :class:`Figure2Result` from a study result set."""
    rows = result.rows if n is None else result.filter(n=n).rows
    row: Optional[RunRow] = next(
        (r for r in rows if r.seed_index == seed_index), None
    )
    if row is None:
        raise ExperimentError(
            f"result set has no Figure 2 cell for n={n}, seed {seed_index}"
        )
    ranked = row.series["ranked_agents"]
    phase = row.series["average_phase"]
    return Figure2Result(
        n=row.n,
        interactions=list(ranked["interactions"]),
        ranked_agents=list(ranked["values"]),
        average_phase=list(phase["values"]),
        total_interactions=row.interactions,
        resets=row.resets,
        converged=row.converged,
    )


def run_figure2(
    n: int = 256,
    c_wait: float = 2.0,
    c_live: float = 4.0,
    random_state: RandomState = 0,
    max_normalized_interactions: float = 200.0,
    samples: int = 240,
    l_max: Optional[int] = None,
) -> Figure2Result:
    """Run the Figure 2 scenario once and return the recorded series.

    .. deprecated::
        Thin shim over :class:`~repro.experiments.study.Study`; build the
        specs with :func:`figure2_specs` (or use ``python -m repro run
        figure2``) to get seed fan-out, parallelism and the result store.
    """
    warnings.warn(
        "run_figure2 is deprecated; use Study(figure2_specs(...)) or "
        "`python -m repro run figure2`",
        DeprecationWarning,
        stacklevel=2,
    )
    specs = figure2_specs(
        n_values=(n,),
        c_wait=c_wait,
        c_live=c_live,
        max_normalized_interactions=max_normalized_interactions,
        samples=samples,
        l_max=l_max,
        # The legacy entry point pins its historical engine: its seeded
        # results (the engine is part of the spec identity) must not
        # change under it, deprecation shim or not.
        engine="reference",
        random_state=coerce_seed(random_state),
    )
    result = Study(specs, name="figure2").run()
    return figure2_result_from_rows(result)


def format_figure2(result: Figure2Result, plot: bool = True) -> str:
    """Render the Figure 2 series as text (table of key points plus plot)."""
    lines = [
        f"Figure 2 reproduction — StableRanking, n = {result.n}",
        f"converged: {result.converged}, total interactions: "
        f"{result.total_interactions} ({result.total_interactions / result.n**2:.1f} n²), "
        f"resets observed: {result.resets}",
    ]
    if plot:
        lines.append(
            ascii_plot(
                result.normalized_interactions,
                result.ranked_agents,
                title="ranked agents vs interactions / n²",
            )
        )
        lines.append(
            ascii_plot(
                result.normalized_interactions,
                result.average_phase,
                title="average phase of unranked agents vs interactions / n²",
            )
        )
    # A condensed table of ~12 evenly spaced sample points.
    rows = result.rows()
    stride = max(1, len(rows) // 12)
    lines.append(
        format_table(
            rows[::stride],
            columns=["interactions_over_n2", "ranked_agents", "average_phase"],
        )
    )
    return "\n".join(lines)
