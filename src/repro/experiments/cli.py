"""``python -m repro`` — every paper figure and benchmark from one command.

The CLI is a thin veneer over the declarative study API: each experiment
name maps to a preset that builds :class:`~repro.experiments.study
.ExperimentSpec` objects from the command-line arguments, runs them
through a :class:`~repro.experiments.study.Study` (with multiprocess seed
fan-out via ``--jobs`` and a persistent, resumable result store under
``--out``), and renders the familiar text table for the figure.

Examples::

    python -m repro list
    python -m repro run figure2 --n 256 --out results/
    python -m repro run figure3 --n 128,256 --seeds 50 --jobs 8
    python -m repro run scaling --n 8 --seeds 2
    python -m repro run comparison --n 16,32 --seeds 5 --workload corrupted
    python -m repro run fault_injection --n 32 --seeds 10 --jobs 4
    python -m repro run fault_storm --n 32,64 --seeds 5 --jobs 4
    python -m repro list --scenarios
    python -m repro serve --port 8765 --out results/
    python -m repro worker --study results/figure2-<hash12>
    python -m repro list --studies results/

Re-invoking a finished study is free: every completed ``(variant, n,
seed)`` cell is loaded from the store (see
:mod:`repro.experiments.store`) instead of being re-simulated.  The
``serve``/``worker`` pair is the scale-out mode (see
:mod:`repro.serving` and ``docs/serving.md``): ``serve`` accepts spec
submissions over HTTP and enqueues their cells, any number of ``worker``
processes drain one study's queue, and ``list --studies`` is the
operator's view of queue depth, shards and completion.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from ..core.errors import ExperimentError
from ..scenarios import get_scenario, scenario_names
from ..topologies import describe_topology, topology_names
from . import comparison as _comparison
from . import epidemic as _epidemic
from . import fault_injection as _fault
from . import fault_storm as _storm
from . import figure2 as _figure2
from . import figure3 as _figure3
from . import scaling as _scaling
from . import topology_sweep as _topo
from .study import ResultSet, Study

__all__ = ["main", "build_study", "preset_specs"]


def _parse_ints(values: Optional[List[str]], default: Sequence[int]) -> tuple:
    if not values:
        return tuple(default)
    parsed = []
    for chunk in values:
        for piece in str(chunk).split(","):
            piece = piece.strip()
            if piece:
                parsed.append(int(piece))
    return tuple(parsed)


def _parse_strs(value: Optional[str], default: Sequence[str]) -> tuple:
    if value is None:
        return tuple(default)
    return tuple(piece.strip() for piece in value.split(",") if piece.strip())


def _parse_floats(value: Optional[str], default: Sequence[float]) -> tuple:
    if value is None:
        return tuple(default)
    return tuple(float(piece) for piece in value.split(",") if piece.strip())


# ----------------------------------------------------------------------
# Presets
# ----------------------------------------------------------------------
def _figure2_specs(args):
    return _figure2.figure2_specs(
        n_values=_parse_ints(args.n, (256,)),
        seeds=args.seeds if args.seeds is not None else 1,
        samples=args.samples,
        max_normalized_interactions=args.max_factor or 200.0,
        engine=args.engine or "auto",
        random_state=args.seed,
    )


def _figure2_render(result: ResultSet, args) -> str:
    blocks = []
    for n in result.specs[0].n_values:
        legacy = _figure2.figure2_result_from_rows(result, n=n)
        blocks.append(_figure2.format_figure2(legacy, plot=not args.no_plot))
    return "\n\n".join(blocks)


def _figure3_specs(args):
    return _figure3.figure3_specs(
        n_values=_parse_ints(args.n, _figure3.PAPER_POPULATION_SIZES),
        fractions=_parse_floats(args.fractions, _figure3.PAPER_FRACTIONS),
        repetitions=args.seeds if args.seeds is not None else 100,
        engine=args.engine or "auto",
        max_interactions_factor=args.max_factor or 500.0,
        random_state=args.seed,
    )


def _figure3_render(result: ResultSet, args) -> str:
    return _figure3.format_figure3(_figure3.figure3_result_from_rows(result))


def _epidemic_specs(args):
    return _epidemic.epidemic_specs(
        n_values=_parse_ints(args.n, _epidemic.EPIDEMIC_POPULATION_SIZES),
        fractions=_parse_floats(args.fractions, _epidemic.EPIDEMIC_FRACTIONS),
        repetitions=args.seeds if args.seeds is not None else 25,
        engine=args.engine or "auto",
        max_interactions_factor=args.max_factor or 100.0,
        random_state=args.seed,
    )


def _epidemic_render(result: ResultSet, args) -> str:
    return _epidemic.format_epidemic(
        _epidemic.epidemic_result_from_rows(result)
    )


def _scaling_specs(args):
    return _scaling.scaling_specs(
        n_values=_parse_ints(args.n, (64, 128, 256, 512, 1024)),
        repetitions=args.seeds if args.seeds is not None else 20,
        engine=args.engine or "auto",
        max_interactions_factor=args.max_factor or 2000.0,
        random_state=args.seed,
    )


def _scaling_render(result: ResultSet, args) -> str:
    return _scaling.format_scaling(_scaling.scaling_result_from_rows(result))


def _comparison_specs(args):
    return _comparison.comparison_specs(
        n_values=_parse_ints(args.n, (16, 32, 64)),
        repetitions=args.seeds if args.seeds is not None else 5,
        workload=args.workload,
        protocols=(
            _parse_strs(args.protocols, _comparison.PROTOCOL_FAMILIES)
            if args.protocols
            else None
        ),
        max_interactions_factor=int(args.max_factor or 400),
        engine=args.engine or "auto",
        random_state=args.seed,
    )


def _comparison_render(result: ResultSet, args) -> str:
    legacy = _comparison.comparison_result_from_rows(result, workload=args.workload)
    return _comparison.format_comparison(legacy)


def _fault_specs(args):
    return _fault.fault_injection_specs(
        n_values=_parse_ints(args.n, (32, 64)),
        repetitions=args.seeds if args.seeds is not None else 5,
        faults=_parse_strs(args.faults, _fault.FAULT_MODELS),
        max_interactions_factor=int(args.max_factor or 400),
        engine=args.engine or "auto",
        random_state=args.seed,
    )


def _fault_render(result: ResultSet, args) -> str:
    return _fault.format_fault_injection(
        _fault.fault_injection_result_from_rows(result)
    )


def _fault_storm_specs(args):
    return _storm.fault_storm_specs(
        n_values=_parse_ints(args.n, (32, 64)),
        repetitions=args.seeds if args.seeds is not None else 3,
        scenario=args.scenario or "fault_storm",
        faults=_parse_strs(args.faults, _storm.STORM_FAULTS),
        events=args.events if args.events is not None else 3,
        period_factor=(
            args.period_factor if args.period_factor is not None else 80.0
        ),
        max_interactions_factor=args.max_factor,
        engine=args.engine or "auto",
        random_state=args.seed,
    )


def _fault_storm_render(result: ResultSet, args) -> str:
    return _storm.format_fault_storm(
        _storm.fault_storm_result_from_rows(result)
    )


def _topology_sweep_specs(args):
    return _topo.topology_sweep_specs(
        topologies=_parse_strs(
            getattr(args, "topology", None), _topo.SWEEP_TOPOLOGIES
        ),
        n_values=_parse_ints(args.n, _topo.SWEEP_POPULATION_SIZES),
        repetitions=args.seeds if args.seeds is not None else 10,
        engine=args.engine or "auto",
        max_interactions_factor=args.max_factor or 50.0,
        random_state=args.seed,
    )


def _topology_sweep_render(result: ResultSet, args) -> str:
    return _topo.format_topology_sweep(
        _topo.topology_sweep_result_from_rows(result)
    )


EXPERIMENTS = {
    "figure2": {
        "help": "Figure 2: ranked agents + average phase vs time (worst case start)",
        "specs": _figure2_specs,
        "render": _figure2_render,
    },
    "figure3": {
        "help": "Figure 3: normalized times to rank fractions of the agents",
        "specs": _figure3_specs,
        "render": _figure3_render,
    },
    "epidemic": {
        "help": "One-way epidemic scaling to n=10^6 vs the Lemma 14 bound",
        "specs": _epidemic_specs,
        "render": _epidemic_render,
    },
    "scaling": {
        "help": "Stabilization-time scaling (Theorem 1 shape check)",
        "specs": _scaling_specs,
        "render": _scaling_render,
    },
    "comparison": {
        "help": "StableRanking vs the Cai and Burman-style baselines",
        "specs": _comparison_specs,
        "render": _comparison_render,
    },
    "fault_injection": {
        "help": "Recovery times under injected transient faults (Theorem 2)",
        "specs": _fault_specs,
        "render": _fault_render,
    },
    "fault_storm": {
        "help": "Recovery under periodic mid-run fault injection (scenario API)",
        "specs": _fault_storm_specs,
        "render": _fault_storm_render,
    },
    "topology_sweep": {
        "help": "Epidemic completion on ring/grid/power-law vs complete, "
                "with the Herman ring band overlay",
        "specs": _topology_sweep_specs,
        "render": _topology_sweep_render,
    },
}


def _scenario_matrix_lines() -> List[str]:
    """One line per registered scenario: initial condition + schedule shape."""
    lines = ["", "scenarios (initial condition + event schedule):"]
    width = max(len(name) for name in scenario_names())
    for name in scenario_names():
        scenario = get_scenario(name)
        if scenario.is_static:
            shape = "static (no events)"
        else:
            # A custom scenario whose schedule has no runnable defaults
            # must not break the whole listing.
            try:
                schedule = scenario.schedule(64)
            except (ExperimentError, TypeError) as error:
                lines.append(f"  {name:<{width}}  unavailable ({error})")
                continue
            kinds = sorted({event.kind for event in schedule})
            shape = (
                f"{len(schedule)} x {'/'.join(kinds)} "
                f"(default schedule at n=64)"
            )
        lines.append(
            f"  {name:<{width}}  workload={scenario.workload:<14} {shape}"
        )
        if scenario.description:
            lines.append(f"  {'':<{width}}  {scenario.description}")
    return lines


def _topology_matrix_lines(n: int = 64) -> List[str]:
    """One line per registered topology family: kind + degree profile.

    Built at a fixed default size so the random families show concrete
    edge counts; a family whose defaults cannot build at that size must
    not break the whole listing.
    """
    lines = ["", f"topologies (interaction graphs, shown at n={n}):"]
    width = max(len(name) for name in topology_names())
    for name in topology_names():
        try:
            info = describe_topology(name, n)
        except ExperimentError as error:
            lines.append(f"  {name:<{width}}  unavailable ({error})")
            continue
        lines.append(
            f"  {name:<{width}}  kind={info['kind']:<9} "
            f"pairs={info['pairs']:<6} "
            f"degree min/mean/max = {info['deg_min']}/"
            f"{info['deg_mean']:.1f}/{info['deg_max']}"
        )
        lines.append(f"  {'':<{width}}  {info['description']}")
    return lines


def _capability_matrix_lines(parser: argparse.ArgumentParser) -> List[str]:
    """One line per (preset, variant): the backend each protocol resolves to.

    Uses every preset's *default* arguments, so the matrix shows what
    ``python -m repro run <experiment>`` would actually do — including the
    ``auto`` negotiation through the backend registry.
    """
    lines = ["", "resolved backends (engine -> backend per protocol):"]
    for name in sorted(EXPERIMENTS):
        args = parser.parse_args(["run", name])
        try:
            specs = EXPERIMENTS[name]["specs"](args)
        except ExperimentError as error:  # pragma: no cover - defensive
            lines.append(f"  {name}: unavailable ({error})")
            continue
        for spec in specs:
            resolved = sorted({spec.resolve_backend(n) for n in spec.n_values})
            lines.append(
                f"  {name}/{spec.variant}: {spec.protocol} "
                f"[{spec.engine}] -> {', '.join(resolved)}"
            )
    return lines


def build_study(experiment: str, args) -> Study:
    """Build the :class:`Study` for a named experiment preset."""
    if experiment not in EXPERIMENTS:
        raise ExperimentError(
            f"unknown experiment {experiment!r}; see `python -m repro list`"
        )
    specs = EXPERIMENTS[experiment]["specs"](args)
    store = None if args.no_store else args.out
    return Study(specs, name=experiment, store=store, jobs=args.jobs)


def preset_specs(experiment: str, overrides: Optional[dict] = None) -> tuple:
    """Build a preset's specs programmatically (the HTTP submission path).

    ``overrides`` maps CLI option names — with dashes or underscores
    (``{"n": "64", "seeds": 2, "max_factor": 30}``) — onto the preset's
    ``run`` arguments; anything the parser would reject raises
    :class:`ExperimentError` instead of exiting the process.  Used by
    ``repro serve`` to accept ``{"preset": "figure2", ...overrides}``
    submissions with exactly the CLI's defaulting rules.
    """
    if experiment not in EXPERIMENTS:
        raise ExperimentError(
            f"unknown experiment {experiment!r}; known: "
            f"{', '.join(sorted(EXPERIMENTS))}"
        )
    parser = _build_parser()
    args = parser.parse_args(["run", experiment])
    for key, value in dict(overrides or {}).items():
        name = str(key).replace("-", "_")
        if name in ("experiment", "out", "no_store", "jobs"):
            raise ExperimentError(
                f"preset override {key!r} is not a spec option"
            )
        if not hasattr(args, name):
            raise ExperimentError(
                f"unknown preset override {key!r} for {experiment!r}"
            )
        default = getattr(args, name)
        if name == "n":
            # argparse collects --n with action="append"; accept ints,
            # strings ("64,128") or lists of either.
            items = value if isinstance(value, (list, tuple)) else [value]
            value = [str(item) for item in items]
        elif isinstance(default, bool):
            value = bool(value)
        elif isinstance(default, int) and not isinstance(value, bool):
            value = int(value)
        elif isinstance(default, float):
            value = float(value)
        elif default is not None or value is not None:
            if name in ("seeds", "events"):
                value = int(value)
            elif name in ("max_factor", "period_factor"):
                value = float(value)
            elif value is not None:
                value = str(value)
        setattr(args, name, value)
    try:
        return tuple(EXPERIMENTS[experiment]["specs"](args))
    except (TypeError, ValueError) as error:
        raise ExperimentError(
            f"invalid overrides for preset {experiment!r}: {error}"
        ) from None


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the paper's figures and benchmarks.",
    )
    commands = parser.add_subparsers(dest="command")

    list_parser = commands.add_parser(
        "list", help="list the available experiments"
    )
    list_parser.add_argument(
        "--scenarios", action="store_true",
        help="also print the scenario matrix (workload + event schedule)",
    )
    list_parser.add_argument(
        "--topologies", action="store_true",
        help="also print the topology matrix (interaction-graph families "
             "and their degree profiles)",
    )
    list_parser.add_argument(
        "--studies", metavar="DIR", default=None,
        help="list the studies under a store root instead: per-study "
             "queue depth, shard count and completed/total cells",
    )

    run = commands.add_parser("run", help="run one experiment preset")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS))
    run.add_argument(
        "--n", action="append", metavar="N[,N...]",
        help="population size(s); repeatable or comma-separated",
    )
    run.add_argument("--seeds", type=int, default=None,
                     help="independent seeded runs per (variant, n) cell")
    run.add_argument("--engine", default=None,
                     help="simulation engine (auto | reference | array | "
                          "aggregate | group); auto (the default) resolves "
                          "each cell to the fastest capable backend")
    run.add_argument("--jobs", type=int, default=1,
                     help="worker processes for the cell fan-out (default 1)")
    run.add_argument("--out", default="results",
                     help="result-store root directory (default: results/)")
    run.add_argument("--no-store", action="store_true",
                     help="do not persist results (also disables resume)")
    run.add_argument("--seed", type=int, default=0, help="root random seed")
    run.add_argument("--max-factor", type=float, default=None,
                     help="interaction budget per run, in units of n²")
    run.add_argument("--samples", type=int, default=240,
                     help="figure2: metric snapshots across the budget")
    run.add_argument("--fractions", default=None,
                     help="figure3/epidemic: comma-separated milestone "
                          "fractions")
    run.add_argument("--workload", default="fresh",
                     choices=("fresh", "corrupted"),
                     help="comparison: starting configuration family")
    run.add_argument("--protocols", default=None,
                     help="comparison: comma-separated protocol names")
    run.add_argument("--faults", default=None,
                     help="fault_injection/fault_storm: comma-separated "
                          "fault models / event kinds")
    run.add_argument("--scenario", default=None,
                     help="fault_storm: event-bearing scenario to run "
                          "(see `python -m repro list --scenarios`)")
    run.add_argument("--topology", default=None,
                     help="topology_sweep: comma-separated topology "
                          "families to sweep next to the complete "
                          "baseline (see `python -m repro list "
                          "--topologies`)")
    run.add_argument("--events", type=int, default=None,
                     help="fault_storm: number of scheduled events")
    run.add_argument("--period-factor", type=float, default=None,
                     help="fault_storm: event spacing in units of n²")
    run.add_argument("--no-plot", action="store_true",
                     help="figure2: omit the ASCII plots")
    run.add_argument("--quiet", action="store_true",
                     help="suppress per-cell progress lines")

    worker = commands.add_parser(
        "worker",
        help="drain one study's job queue (scale-out execution mode)",
    )
    worker.add_argument("--study", required=True, metavar="DIR",
                        help="the study directory (<name>-<hash12>)")
    worker.add_argument("--lease-timeout", type=float, default=60.0,
                        help="seconds without a heartbeat before another "
                             "worker may reclaim a job (default 60)")
    worker.add_argument("--poll", type=float, default=0.5,
                        help="seconds between queue scans while waiting "
                             "(default 0.5)")
    worker.add_argument("--max-jobs", type=int, default=None,
                        help="exit after this many completed jobs")
    worker.add_argument("--follow", action="store_true",
                        help="keep polling for new submissions once the "
                             "queue is drained instead of exiting")
    worker.add_argument("--no-fsync", action="store_true",
                        help="skip fsync on shard appends (throughput "
                             "over durability)")
    worker.add_argument("--quiet", action="store_true",
                        help="suppress per-job progress lines")

    serve = commands.add_parser(
        "serve",
        help="HTTP front end: submit specs, stream progress, fetch rows",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8765,
                       help="port to bind (0 picks an ephemeral port)")
    serve.add_argument("--out", default="results",
                       help="result-store root directory (default: "
                            "results/)")
    serve.add_argument("--workers", type=int, default=0,
                       help="worker subprocesses to spawn per submitted "
                            "study (default 0: drain with `repro worker`)")
    serve.add_argument("--lease-timeout", type=float, default=60.0,
                       help="lease timeout passed to spawned workers")
    serve.add_argument("--quiet", action="store_true",
                       help="suppress per-request log lines")

    cache = commands.add_parser(
        "cache",
        help="inspect, pre-warm or clear the persistent table store",
    )
    cache_actions = cache.add_subparsers(dest="cache_command")
    cache_list = cache_actions.add_parser(
        "list", help="one line per persisted protocol entry"
    )
    cache_list.add_argument("--dir", default=None, metavar="DIR",
                            help="table-store directory (default: "
                                 "$REPRO_TABLE_CACHE)")
    cache_warm = cache_actions.add_parser(
        "warm",
        help="populate the store by running seeds of one protocol",
    )
    cache_warm.add_argument("--protocol", required=True,
                            help="protocol registry name (e.g. "
                                 "stable-ranking, one-way-epidemic)")
    cache_warm.add_argument("--n", type=int, required=True, action="append",
                            help="population size; repeatable")
    cache_warm.add_argument("--dir", default=None, metavar="DIR",
                            help="table-store directory (default: "
                                 "$REPRO_TABLE_CACHE)")
    cache_warm.add_argument("--seeds", type=int, default=4,
                            help="warming trajectories per n (default 4)")
    cache_warm.add_argument("--jobs", type=int, default=1,
                            help="worker processes for the warming fan-out")
    cache_warm.add_argument("--engine", default="auto",
                            help="engine to warm through (default auto)")
    cache_warm.add_argument("--max-factor", type=float, default=None,
                            help="interaction budget per trajectory, in "
                                 "units of n²")
    cache_clear = cache_actions.add_parser(
        "clear", help="delete every entry of the table store"
    )
    cache_clear.add_argument("--dir", default=None, metavar="DIR",
                             help="table-store directory (default: "
                                  "$REPRO_TABLE_CACHE)")
    return parser


def _print_table_store_stats() -> None:
    """One line of table-store traffic for the finished command, if any.

    Printed unconditionally (not gated by ``--quiet``): the line is the
    observable proof that a run was served from — or contributed to — a
    persistent store, which scripts (and CI) grep for.  Loads counted in
    worker processes stay in those processes; this reports the calling
    process's traffic, which is exactly the serial/in-process path.
    """
    from ..core.table_store import consume_session_stats

    stats = consume_session_stats()
    parts = []
    if stats["pairs_loaded"] or stats["spills_loaded"]:
        parts.append(
            f"loaded {stats['pairs_loaded']} pairs "
            f"from {stats['spills_loaded']} spill(s)"
        )
    if stats["dense_loaded"]:
        parts.append(f"loaded {stats['dense_loaded']} dense table(s)")
    if stats["group_loaded"]:
        parts.append(f"loaded {stats['group_loaded']} group model(s)")
    if stats["pairs_spilled"]:
        parts.append(
            f"spilled {stats['pairs_spilled']} pairs "
            f"to {stats['spills_written']} file(s)"
        )
    if stats["artifacts_discarded"]:
        parts.append(
            f"discarded {stats['artifacts_discarded']} corrupt artifact(s)"
        )
    if parts:
        print("table store: " + "; ".join(parts))


def _cache_command(args) -> int:
    """``repro cache list|warm|clear`` — operate on a table store."""
    import os
    from pathlib import Path

    from ..core.table_store import ENV_VAR, TableStore, resolve_store_dir

    if args.cache_command is None:
        print(
            "usage: python -m repro cache {list,warm,clear} [options]",
            file=sys.stderr,
        )
        return 2
    directory = Path(args.dir) if args.dir else resolve_store_dir()
    if directory is None:
        print(
            f"error: no table store; pass --dir or set {ENV_VAR}",
            file=sys.stderr,
        )
        return 1

    if args.cache_command == "list":
        entries = TableStore(directory).entries()
        if not entries:
            print(f"no table-store entries under {directory}")
            return 0
        print(f"table store at {directory}:")
        for entry in entries:
            info = entry.describe()
            print(
                f"  {info['name']}  "
                f"pairs {info['pairs']} ({info['spills']} spills)  "
                f"dense {info['dense_states'] or 0}  "
                f"group {info['group_states'] or 0}  "
                f"mode {info['mode'] or '-'}  "
                f"{info['bytes']} bytes"
            )
        return 0

    if args.cache_command == "clear":
        TableStore(directory).clear()
        print(f"cleared table store at {directory}")
        return 0

    # warm: run seed trajectories of the named protocol with the store
    # attached; every engine cache spills its tabulation on finalize, so
    # the trajectories themselves are the warming mechanism (exactly what
    # a later study replays, so warmth is guaranteed to transfer).
    from .parallel import run_units
    from .study import PROTOCOLS, ExperimentSpec, plan_units

    if args.protocol not in PROTOCOLS:
        print(
            f"error: unknown protocol {args.protocol!r}; known: "
            f"{', '.join(sorted(PROTOCOLS))}",
            file=sys.stderr,
        )
        return 1
    spec_kwargs = dict(
        variant="warm",
        protocol=args.protocol,
        n_values=tuple(args.n),
        seeds=args.seeds,
        engine=args.engine,
    )
    if args.max_factor is not None:
        spec_kwargs["max_interactions_factor"] = args.max_factor
    try:
        spec = ExperimentSpec(**spec_kwargs)
    except ExperimentError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    previous = os.environ.get(ENV_VAR)
    os.environ[ENV_VAR] = str(directory)
    try:
        units = plan_units([spec], ())
        rows = run_units(units, jobs=args.jobs, callback=None)
    finally:
        if previous is None:
            del os.environ[ENV_VAR]
        else:
            os.environ[ENV_VAR] = previous
    print(
        f"warmed {args.protocol} at n={','.join(str(n) for n in args.n)}: "
        f"{len(rows)} trajectories into {directory}"
    )
    _print_table_store_stats()
    return 0


def _list_studies(root: str) -> int:
    """``repro list --studies DIR`` — the operator's view of the stores."""
    from ..serving.server import StudyService

    summaries = StudyService(root).studies()
    if not summaries:
        print(f"no studies under {root}")
        return 0
    width = max(len(summary["study"]) for summary in summaries)
    print(f"studies under {root}:")
    for summary in summaries:
        queue = summary["queue"]
        state = "complete" if summary["complete"] else (
            f"queue {queue['pending']} pending"
            f" ({queue['active']} active, {queue['stale']} stale)"
        )
        engines = ", ".join(
            f"{engine}:{count}"
            for engine, count in summary["by_engine"].items()
        )
        print(
            f"  {summary['study']:<{width}}  "
            f"cells {summary['done']}/{summary['total']}  "
            f"shards {summary['shards']}  {state}"
            + (f"  [{engines}]" if engines else "")
        )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Command-line entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.command == "list" and args.studies is not None:
        try:
            return _list_studies(args.studies)
        except ExperimentError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1

    if args.command == "worker":
        from ..serving.worker import run_worker

        try:
            jobs = run_worker(
                args.study,
                lease_timeout=args.lease_timeout,
                poll=args.poll,
                max_jobs=args.max_jobs,
                follow=args.follow,
                fsync=not args.no_fsync,
                progress=None if args.quiet else (
                    lambda line: print(line, flush=True)
                ),
            )
        except ExperimentError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        if not args.quiet:
            print(f"worker drained {jobs} job(s) from {args.study}")
        _print_table_store_stats()
        return 0

    if args.command == "cache":
        try:
            return _cache_command(args)
        except ExperimentError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1

    if args.command == "serve":
        from ..serving.server import serve

        return serve(
            args.out,
            host=args.host,
            port=args.port,
            lease_timeout=args.lease_timeout,
            workers=args.workers,
            quiet=args.quiet,
        )

    if args.command == "list" or args.command is None:
        width = max(len(name) for name in EXPERIMENTS)
        for name in sorted(EXPERIMENTS):
            print(f"  {name:<{width}}  {EXPERIMENTS[name]['help']}")
        if args.command == "list":
            if getattr(args, "scenarios", False):
                for line in _scenario_matrix_lines():
                    print(line)
            if getattr(args, "topologies", False):
                for line in _topology_matrix_lines():
                    print(line)
            for line in _capability_matrix_lines(parser):
                print(line)
        if args.command is None:
            print("\nusage: python -m repro run <experiment> [options]")
        return 0

    try:
        study = build_study(args.experiment, args)
    except ExperimentError as error:
        parser.error(str(error))
        return 2  # pragma: no cover - parser.error raises SystemExit

    def progress(row, done, total):
        if not args.quiet:
            print(
                f"[{done}/{total}] {row['variant']} n={row['n']} "
                f"seed={row['seed_index']} interactions={row['interactions']} "
                f"converged={row['converged']}",
                flush=True,
            )

    try:
        result = study.run(progress=progress)
    except ExperimentError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    exit_code = 0
    try:
        print(EXPERIMENTS[args.experiment]["render"](result, args))
    except ExperimentError as error:
        # Rendering can legitimately fail (e.g. a seed missed a milestone
        # within budget); the computed rows are still valid and persisted,
        # so report the problem but keep the store pointers visible.
        print(f"error: {error}", file=sys.stderr)
        exit_code = 1
    _print_table_store_stats()
    if study.store is not None:
        result.to_json(study.store.directory / "result.json")
        print(f"\nresult store: {study.store.directory}")
        print(f"  rows:   {study.store.rows_path}")
        print(f"  csv:    {study.store.directory / 'rows.csv'}")
        print(f"  json:   {study.store.directory / 'result.json'}")
    return exit_code
