"""Initial-configuration generators (workloads).

The paper's experiments and the self-stabilization tests need several kinds
of starting configurations:

* the designated **fresh** start (every agent in the protocol's initial
  state);
* the **Figure 2** worst-case configuration: agents ranked ``2 … n`` and a
  single phase agent in the final phase with the maximum liveness counter —
  the protocol has to discover that rank 1 is missing, which takes
  ``Θ(n² log n)`` interactions, and then reset and re-rank everybody;
* the **Figure 3** configuration: one unaware leader already holding rank 1
  and every other agent still in a leader-election state;
* **adversarial** configurations drawn uniformly-ish over the protocol's
  state space, used to exercise self-stabilization;
* targeted **fault injections** (duplicate ranks, missing leader) applied to
  a valid ranking.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.configuration import Configuration
from ..core.errors import ConfigurationError
from ..core.rng import RandomState, make_rng
from ..core.state import AgentState
from ..protocols.ranking.space_efficient import SpaceEfficientRanking
from ..protocols.ranking.stable_ranking import StableRanking

__all__ = [
    "fresh_configuration",
    "figure2_initial_configuration",
    "figure3_initial_configuration",
    "valid_ranking_configuration",
    "duplicate_rank_configuration",
    "missing_rank_configuration",
    "adversarial_configuration",
    "adversarial_state",
]


def fresh_configuration(protocol) -> Configuration:
    """The protocol's designated initial configuration."""
    return protocol.initial_configuration()


def figure2_initial_configuration(protocol: StableRanking) -> Configuration[AgentState]:
    """The worst-case initialization of the paper's Figure 2.

    ``n - 1`` agents hold the ranks ``2 … n`` and one agent is a phase agent
    with the maximum liveness counter.  The phase counter is set to the final
    phase ``⌈log₂ n⌉`` so that no ranked agent passes the unaware-leader test
    against it (rank 1 is missing), which is what makes the configuration
    worst-case: the only way out is draining the liveness counter through
    meetings with the agents ranked ``n-1`` and ``n``.
    """
    n = protocol.n
    states = [
        AgentState(
            phase=protocol.schedule.phase_count,
            coin=0,
            alive_count=protocol.l_max,
        )
    ]
    states.extend(AgentState(rank=rank) for rank in range(2, n + 1))
    return Configuration(states)


def figure3_initial_configuration(
    protocol: SpaceEfficientRanking,
) -> Configuration[AgentState]:
    """The initialization of the paper's Figure 3.

    One agent is the unaware leader with rank 1; all other agents are still
    in the leader-election protocol's initial state.
    """
    states = [protocol.initial_state() for _ in range(protocol.n)]
    states[0] = AgentState(rank=1)
    return Configuration(states)


def valid_ranking_configuration(n: int) -> Configuration[AgentState]:
    """A clean legal configuration: agent ``i`` holds rank ``i + 1``."""
    if n < 1:
        raise ConfigurationError(f"population size must be positive, got {n}")
    return Configuration([AgentState(rank=rank) for rank in range(1, n + 1)])


def duplicate_rank_configuration(
    n: int, duplicates: int = 1, random_state: RandomState = None
) -> Configuration[AgentState]:
    """A ranking with exactly ``duplicates`` collisions injected.

    ``duplicates`` agents (the victims) have their rank overwritten with
    another agent's rank.  Victims and donors are disjoint prefixes of one
    permutation and donor ranks are read from the *original* (pre-fault)
    ranking, so no donor can itself be an overwritten victim: the injected
    fault count is exact and order-independent — the configuration has
    exactly ``duplicates`` duplicated ranks and the same number of missing
    ranks.  Exactness requires ``2 · duplicates ≤ n`` (each duplicated
    rank needs a distinct, untouched donor).
    """
    if duplicates < 1 or 2 * duplicates > n:
        raise ConfigurationError(
            f"duplicates must be in [1, n // 2], got {duplicates} for n={n}"
        )
    rng = make_rng(random_state)
    configuration = valid_ranking_configuration(n)
    selection = rng.permutation(n)
    victims = selection[:duplicates]
    donors = selection[duplicates:2 * duplicates]
    for victim, donor in zip(victims, donors):
        # Agent i holds rank i + 1 in the pre-fault ranking.
        configuration[int(victim)].rank = int(donor) + 1
    return configuration


def missing_rank_configuration(
    protocol: StableRanking, missing_rank: int = 1
) -> Configuration[AgentState]:
    """A ranking in which one rank is missing and one agent is unranked.

    The unranked agent is a phase agent in phase 1 with a full liveness
    counter; the configuration generalizes the Figure 2 workload to an
    arbitrary missing rank.
    """
    n = protocol.n
    if not 1 <= missing_rank <= n:
        raise ConfigurationError(f"missing_rank must be in [1, {n}]")
    states = [
        AgentState(phase=1, coin=0, alive_count=protocol.l_max)
    ]
    states.extend(
        AgentState(rank=rank) for rank in range(1, n + 1) if rank != missing_rank
    )
    return Configuration(states)


def adversarial_state(
    protocol: StableRanking, rng: np.random.Generator
) -> AgentState:
    """One uniformly-ish random state over ``StableRanking``'s state space.

    The per-agent building block of :func:`adversarial_configuration`,
    also used by the ``scramble`` perturbation event
    (:mod:`repro.scenarios.events`) to randomize agents mid-run.  The
    agent becomes a ranked agent (random rank, collisions allowed), a
    phase agent, a waiting agent, a leader-electing agent, a propagating
    agent or a dormant agent, with random counter values within the
    protocol's bounds.
    """
    n = protocol.n
    kind = rng.choice(
        ["ranked", "phase", "waiting", "leader_electing", "propagating", "dormant"]
    )
    coin = int(rng.integers(0, 2))
    if kind == "ranked":
        return AgentState(rank=int(rng.integers(1, n + 1)))
    if kind == "phase":
        return AgentState(
            phase=int(rng.integers(1, protocol.schedule.phase_count + 1)),
            coin=coin,
            alive_count=int(rng.integers(1, protocol.l_max + 1)),
        )
    if kind == "waiting":
        return AgentState(
            wait_count=int(rng.integers(1, protocol.wait_init + 1)),
            coin=coin,
            alive_count=int(rng.integers(1, protocol.l_max + 1)),
        )
    if kind == "leader_electing":
        agent = AgentState(coin=coin)
        protocol.leader_election.init_state(agent)
        agent.le_count = int(rng.integers(1, protocol.leader_election.l_max + 1))
        agent.coin_count = int(
            rng.integers(0, protocol.leader_election.coin_count_init + 1)
        )
        agent.leader_done = int(rng.integers(0, 2))
        agent.is_leader = int(rng.integers(0, 2))
        return agent
    if kind == "propagating":
        return AgentState(
            coin=coin,
            reset_count=int(rng.integers(1, protocol.reset.r_max + 1)),
            delay_count=int(rng.integers(1, protocol.reset.d_max + 1)),
        )
    # dormant
    return AgentState(
        coin=coin,
        reset_count=0,
        delay_count=int(rng.integers(1, protocol.reset.d_max + 1)),
    )


def adversarial_configuration(
    protocol: StableRanking, random_state: RandomState = None
) -> Configuration[AgentState]:
    """A random configuration over ``StableRanking``'s state space.

    Every agent is drawn independently by :func:`adversarial_state`.  This
    is the kind of arbitrary configuration the self-stabilization
    guarantee (Theorem 2) quantifies over.
    """
    rng = make_rng(random_state)
    return Configuration(
        [adversarial_state(protocol, rng) for _ in range(protocol.n)]
    )
