"""Experiment E3 — stabilization-time scaling of ``SpaceEfficientRanking``.

Theorem 1 states that the non-self-stabilizing protocol reaches a valid
ranking in ``O(n² log n)`` interactions w.h.p.  This experiment measures the
full stabilization time for a range of population sizes and reports it
normalized by ``n² log₂ n``: if the theorem's shape holds, the normalized
values are roughly constant across ``n``.

The aggregate engine starts from the Figure 3 configuration (leader already
elected); the reference and array engines run the complete protocol
including leader election.  Both are exposed because the leader-election
prefix is ``o(n²)`` and does not affect the asymptotics.

The experiment is a preset over the declarative study API
(:func:`scaling_specs`, ``python -m repro run scaling``);
:func:`run_scaling` remains as a deprecated shim.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..analysis.statistics import summarize
from ..analysis.theory import normalized_stabilization_time
from ..core.errors import ExperimentError
from ..core.rng import RandomState
from .ascii_plot import format_table
from .study import ExperimentSpec, ResultSet, Study
from ._shims import coerce_seed

__all__ = [
    "ScalingResult",
    "scaling_specs",
    "scaling_result_from_rows",
    "run_scaling",
    "format_scaling",
]


@dataclass
class ScalingResult:
    """Stabilization times per population size."""

    n_values: Sequence[int]
    repetitions: int
    engine: str
    # interactions[n] = list of total interactions to stabilize.
    interactions: Dict[int, List[int]] = field(default_factory=dict)

    def normalized(self, n: int) -> List[float]:
        """Interactions divided by ``n² log₂ n`` for population size ``n``."""
        return [
            normalized_stabilization_time(value, n) for value in self.interactions[n]
        ]

    def rows(self) -> List[dict]:
        rows = []
        for n in self.n_values:
            raw = summarize(self.interactions[n])
            norm = summarize(self.normalized(n))
            rows.append(
                {
                    "n": n,
                    "mean_interactions": raw.mean,
                    "mean_over_n2": raw.mean / (n * n),
                    "mean_over_n2_logn": norm.mean,
                    "std_over_n2_logn": norm.std,
                    "runs": raw.count,
                }
            )
        return rows


def scaling_specs(
    n_values: Sequence[int] = (64, 128, 256, 512, 1024),
    repetitions: int = 20,
    engine: str = "auto",
    c_wait: float = 2.0,
    max_interactions_factor: float = 2000.0,
    random_state: int = 0,
) -> Tuple[ExperimentSpec, ...]:
    """The stabilization-time scaling sweep as a declarative spec.

    ``engine`` selects how each run is simulated: ``"auto"`` (the
    default) starts from the Figure 3 workload so the backend registry
    resolves to the exact event-driven aggregate engine — the paper-scale
    choice; ``"aggregate"`` requests it explicitly.  ``"reference"`` and
    ``"array"`` run the complete protocol including leader election
    (``SpaceEfficientRanking``'s GS leader-election substrate consumes
    randomness, so the array engine takes its object fallback path —
    exposed for cross-engine validation rather than speed).
    """
    workload = "figure3" if engine in ("aggregate", "auto") else "fresh"
    return (
        ExperimentSpec(
            variant="scaling",
            protocol="space-efficient-ranking",
            n_values=tuple(n_values),
            seeds=repetitions,
            engine=engine,
            workload=workload,
            protocol_params={"c_wait": c_wait},
            max_interactions_factor=float(max_interactions_factor),
            random_state=random_state,
        ),
    )


def scaling_result_from_rows(result: ResultSet) -> ScalingResult:
    """Convert a study result set into the legacy :class:`ScalingResult`."""
    spec = result.specs[0]
    # Report the backend(s) that actually served the rows — under
    # engine="auto" the spec only records the request.
    engines = sorted({row.engine for row in result.rows}) or [spec.engine]
    out = ScalingResult(
        n_values=tuple(spec.n_values),
        repetitions=spec.seeds,
        engine="/".join(engines),
    )
    for n in spec.n_values:
        times: List[int] = []
        for row in result.filter(n=n).rows:
            if not row.converged:
                raise ExperimentError(f"scaling run for n={n} did not stabilize")
            times.append(row.interactions)
        out.interactions[n] = times
    return out


def run_scaling(
    n_values: Sequence[int] = (64, 128, 256, 512, 1024),
    repetitions: int = 20,
    engine: str = "aggregate",
    c_wait: float = 2.0,
    random_state: RandomState = 0,
) -> ScalingResult:
    """Measure full stabilization times across population sizes.

    .. deprecated::
        Thin shim over :class:`~repro.experiments.study.Study`; build the
        specs with :func:`scaling_specs` (or use ``python -m repro run
        scaling``) to get parallel seed fan-out and the result store.
    """
    warnings.warn(
        "run_scaling is deprecated; use Study(scaling_specs(...)) or "
        "`python -m repro run scaling`",
        DeprecationWarning,
        stacklevel=2,
    )
    if repetitions < 1:
        raise ExperimentError("repetitions must be positive")
    specs = scaling_specs(
        n_values=n_values,
        repetitions=repetitions,
        engine=engine,
        c_wait=c_wait,
        random_state=coerce_seed(random_state),
    )
    return scaling_result_from_rows(Study(specs, name="scaling").run())


def format_scaling(result: ScalingResult) -> str:
    """Render the scaling study as a text table."""
    header = (
        f"Stabilization-time scaling — SpaceEfficientRanking ({result.engine} engine, "
        f"{result.repetitions} runs per n).  Theorem 1 predicts the "
        f"'mean_over_n2_logn' column to be roughly constant."
    )
    return header + "\n" + format_table(result.rows())
