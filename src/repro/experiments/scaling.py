"""Experiment E3 — stabilization-time scaling of ``SpaceEfficientRanking``.

Theorem 1 states that the non-self-stabilizing protocol reaches a valid
ranking in ``O(n² log n)`` interactions w.h.p.  This experiment measures the
full stabilization time (from the designated initial configuration, i.e.
including leader election) for a range of population sizes and reports it
normalized by ``n² log₂ n``: if the theorem's shape holds, the normalized
values are roughly constant across ``n``.

The aggregate engine starts from the Figure 3 configuration (leader already
elected); the reference engine runs the complete protocol including leader
election.  Both are exposed because the leader-election prefix is ``o(n²)``
and does not affect the asymptotics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from ..analysis.statistics import summarize
from ..analysis.theory import normalized_stabilization_time
from ..core.array_engine import ArraySimulator, EngineCache
from ..core.errors import ExperimentError
from ..core.rng import RandomState, spawn_seeds
from ..core.simulation import Simulator
from ..protocols.ranking.aggregate_space_efficient import AggregateSpaceEfficientRanking
from ..protocols.ranking.space_efficient import SpaceEfficientRanking
from .ascii_plot import format_table

__all__ = ["ScalingResult", "run_scaling", "format_scaling"]


@dataclass
class ScalingResult:
    """Stabilization times per population size."""

    n_values: Sequence[int]
    repetitions: int
    engine: str
    # interactions[n] = list of total interactions to stabilize.
    interactions: Dict[int, List[int]] = field(default_factory=dict)

    def normalized(self, n: int) -> List[float]:
        """Interactions divided by ``n² log₂ n`` for population size ``n``."""
        return [
            normalized_stabilization_time(value, n) for value in self.interactions[n]
        ]

    def rows(self) -> List[dict]:
        rows = []
        for n in self.n_values:
            raw = summarize(self.interactions[n])
            norm = summarize(self.normalized(n))
            rows.append(
                {
                    "n": n,
                    "mean_interactions": raw.mean,
                    "mean_over_n2": raw.mean / (n * n),
                    "mean_over_n2_logn": norm.mean,
                    "std_over_n2_logn": norm.std,
                    "runs": raw.count,
                }
            )
        return rows


def run_scaling(
    n_values: Sequence[int] = (64, 128, 256, 512, 1024),
    repetitions: int = 20,
    engine: str = "aggregate",
    c_wait: float = 2.0,
    random_state: RandomState = 0,
) -> ScalingResult:
    """Measure full stabilization times across population sizes.

    ``engine`` selects how each run is simulated: ``"aggregate"`` (the exact
    event-driven engine, fastest and the paper-scale default),
    ``"reference"`` (the agent-level simulator) or ``"array"`` (the
    vectorized :class:`~repro.core.array_engine.ArraySimulator`; for
    ``SpaceEfficientRanking`` its GS leader-election substrate consumes
    randomness, so the array engine runs on its object fallback path — it
    is exposed here for cross-engine validation rather than speed).
    """
    if engine not in ("aggregate", "reference", "array"):
        raise ExperimentError(f"unknown engine {engine!r}")
    if repetitions < 1:
        raise ExperimentError("repetitions must be positive")
    result = ScalingResult(
        n_values=tuple(n_values), repetitions=repetitions, engine=engine
    )
    for n in n_values:
        seeds = spawn_seeds((hash((int(n), str(random_state), "scaling")) & 0x7FFFFFFF), repetitions)
        times: List[int] = []
        engine_cache = EngineCache() if engine == "array" else None
        for seed in seeds:
            rng = np.random.default_rng(seed)
            if engine == "aggregate":
                simulator = AggregateSpaceEfficientRanking(
                    n, c_wait=c_wait, random_state=rng
                )
                outcome = simulator.run(max_interactions=10**15)
            else:
                protocol = SpaceEfficientRanking(n, c_wait=c_wait)
                if engine == "array":
                    simulator = ArraySimulator(
                        protocol, random_state=rng, cache=engine_cache
                    )
                else:
                    simulator = Simulator(protocol, random_state=rng)
                outcome = simulator.run(max_interactions=2000 * n * n)
            if not outcome.converged:
                raise ExperimentError(f"scaling run for n={n} did not stabilize")
            times.append(outcome.interactions)
        result.interactions[n] = times
    return result


def format_scaling(result: ScalingResult) -> str:
    """Render the scaling study as a text table."""
    header = (
        f"Stabilization-time scaling — SpaceEfficientRanking ({result.engine} engine, "
        f"{result.repetitions} runs per n).  Theorem 1 predicts the "
        f"'mean_over_n2_logn' column to be roughly constant."
    )
    return header + "\n" + format_table(result.rows())
