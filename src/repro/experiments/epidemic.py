"""One-way epidemic scaling sweep against the Lemma 14 bound.

The paper's analysis leans on one-way epidemics three times (starting the
ranking, propagating phase increments, spreading resets) and bounds their
completion time with Lemma 14: with probability at least ``1 - 2·n^-γ``
an epidemic among ``m`` agents completes within ``3·n²/m · (log m +
2γ·log n)`` interactions.  This preset measures the actual distribution —
the interaction counts at which fractions of the population are informed,
normalized by ``n·ln n`` (the epidemic's natural scale; completion is
``Θ(n log n)`` interactions) — across population sizes up to
``n = 10^6``, and renders it next to the analytic bound.

The sweep is only tractable at those sizes because the spec pins
``exactness="distribution"``: the epidemic has four states regardless of
``n``, so the backend registry routes every cell to the group-count
engine, which simulates the exact lumped count process in ``n - 1``
productive events instead of ``Θ(n² log n)`` agent-level interactions.
(The pin is also load-bearing for correctness of the milestone
measurement: the agent-level milestone path counts *ranked* agents, and
the epidemic never assigns ranks.)
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..analysis.statistics import summarize
from ..core.errors import ExperimentError
from ..protocols.primitives.one_way_epidemic import epidemic_upper_bound
from .ascii_plot import format_table
from .study import ExperimentSpec, ResultSet

__all__ = [
    "EpidemicResult",
    "epidemic_specs",
    "epidemic_result_from_rows",
    "format_epidemic",
    "EPIDEMIC_FRACTIONS",
    "EPIDEMIC_POPULATION_SIZES",
]

#: Informed fractions whose first-hit times the sweep records; 1.0 is the
#: completed epidemic that Lemma 14 bounds.
EPIDEMIC_FRACTIONS = (0.5, 0.75, 0.875, 1.0)

#: Default population sizes — the top size is the ISSUE's ``n = 10^6``.
EPIDEMIC_POPULATION_SIZES = (8192, 100_000, 1_000_000)


@dataclass
class EpidemicResult:
    """Normalized times to inform each fraction, per population size."""

    fractions: Sequence[float]
    n_values: Sequence[int]
    repetitions: int
    engine: str
    #: samples[n][fraction] = interactions / (n·ln n) values, one per run.
    samples: Dict[int, Dict[float, List[float]]] = field(default_factory=dict)

    def mean(self, n: int, fraction: float) -> float:
        """Mean normalized time to inform ``fraction`` of the agents."""
        return summarize(self.samples[n][fraction]).mean

    def bound(self, n: int, gamma: float = 1.0) -> float:
        """The Lemma 14 completion bound, normalized by ``n·ln n``."""
        return epidemic_upper_bound(n, n, gamma) / (n * math.log(n))


def epidemic_specs(
    n_values: Sequence[int] = EPIDEMIC_POPULATION_SIZES,
    fractions: Sequence[float] = EPIDEMIC_FRACTIONS,
    repetitions: int = 25,
    engine: str = "auto",
    max_interactions_factor: float = 100.0,
    random_state: int = 0,
) -> Tuple[ExperimentSpec, ...]:
    """The epidemic sweep as a declarative spec.

    The spec pins ``exactness="distribution"``, so ``engine="auto"``
    resolves every cell to the group-count engine; requesting a
    trajectory-exact engine raises at spec construction (the agent-level
    milestone path cannot observe informed fractions).
    """
    return (
        ExperimentSpec(
            variant="epidemic",
            protocol="one-way-epidemic",
            n_values=tuple(n_values),
            seeds=repetitions,
            engine=engine,
            exactness="distribution",
            workload="fresh",
            max_interactions_factor=float(max_interactions_factor),
            milestone_fractions=tuple(fractions),
            random_state=random_state,
        ),
    )


def epidemic_result_from_rows(result: ResultSet) -> EpidemicResult:
    """Collect the milestone rows into an :class:`EpidemicResult`."""
    spec = result.specs[0]
    fractions = tuple(spec.milestone_fractions)
    engines = sorted({row.engine for row in result.rows}) or [spec.engine]
    out = EpidemicResult(
        fractions=fractions,
        n_values=tuple(spec.n_values),
        repetitions=spec.seeds,
        engine="/".join(engines),
    )
    for n in spec.n_values:
        per_fraction: Dict[float, List[float]] = {f: [] for f in fractions}
        for row in result.filter(n=n).rows:
            if not row.converged:
                raise ExperimentError(
                    f"epidemic run for n={n} (seed {row.seed_index}) did "
                    f"not inform every fraction within budget"
                )
            for fraction in fractions:
                per_fraction[fraction].append(
                    row.milestones[f"ranked_{fraction}"] / (n * math.log(n))
                )
        out.samples[n] = per_fraction
    return out


def format_epidemic(result: EpidemicResult) -> str:
    """Text table: mean normalized times per fraction vs the Lemma 14 bound."""
    rows = []
    for n in result.n_values:
        row = {"n": n}
        for fraction in result.fractions:
            row[f"frac {fraction}"] = result.mean(n, fraction)
        row["lemma14 bound"] = result.bound(n)
        rows.append(row)
    header = (
        f"One-way epidemic — interactions / (n·ln n) to inform fractions "
        f"of the agents ({result.engine} engine, {result.repetitions} runs "
        f"per n); 'lemma14 bound' is the Lemma 14 completion bound at γ=1 "
        f"on the same scale, which the 'frac 1.0' column must stay below"
    )
    return header + "\n" + format_table(rows)
