"""Recording experiment results to disk.

Benchmarks and examples write their raw measurements as CSV files so the
numbers reported in EXPERIMENTS.md can be regenerated and re-inspected
without re-running anything.  Only the standard library is used.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, List, Mapping, Optional, Sequence

from ..core.errors import ExperimentError

__all__ = ["write_csv", "read_csv", "write_json", "default_results_dir"]


def default_results_dir(base: Optional[str] = None) -> Path:
    """The directory experiment artifacts are written to (created on demand)."""
    directory = Path(base) if base is not None else Path("results")
    directory.mkdir(parents=True, exist_ok=True)
    return directory


def write_csv(path, rows: Sequence[Mapping], fieldnames: Optional[Sequence[str]] = None) -> Path:
    """Write ``rows`` (mappings) to ``path`` as CSV; returns the path.

    The field names default to the union of keys across all rows, in first
    appearance order, so heterogeneous rows are handled gracefully.
    """
    rows = list(rows)
    if not rows:
        raise ExperimentError("refusing to write an empty CSV file")
    if fieldnames is None:
        fieldnames = []
        for row in rows:
            for key in row:
                if key not in fieldnames:
                    fieldnames.append(key)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(fieldnames))
        writer.writeheader()
        for row in rows:
            writer.writerow({key: row.get(key, "") for key in fieldnames})
    return path


def read_csv(path) -> List[dict]:
    """Read a CSV file written by :func:`write_csv` back into dictionaries.

    Numeric-looking values are converted to ``int`` or ``float``.
    """
    path = Path(path)
    rows: List[dict] = []
    with path.open() as handle:
        for row in csv.DictReader(handle):
            rows.append({key: _parse_value(value) for key, value in row.items()})
    return rows


def write_json(path, payload) -> Path:
    """Write ``payload`` to ``path`` as indented JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True, default=str))
    return path


def _parse_value(value: str):
    if value is None or value == "":
        return None
    if value in ("True", "False"):
        return value == "True"
    try:
        return int(value)
    except ValueError:
        pass
    try:
        return float(value)
    except ValueError:
        return value
