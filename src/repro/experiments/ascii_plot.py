"""Minimal ASCII rendering of experiment output.

The benchmark harness runs under ``pytest`` in a terminal; instead of
depending on a plotting stack, the experiment drivers render their series as
plain-text tables and simple scatter plots so the "shape" of the paper's
figures is visible directly in the benchmark log (and in EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["format_table", "ascii_plot"]


def format_table(rows: Sequence[Mapping], columns: Sequence[str] | None = None) -> str:
    """Render ``rows`` (mappings) as a fixed-width text table."""
    rows = list(rows)
    if not rows:
        return "(no data)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered_rows = [
        [_format_cell(row.get(column)) for column in columns] for row in rows
    ]
    widths = [
        max(len(str(column)), *(len(row[i]) for row in rendered_rows))
        for i, column in enumerate(columns)
    ]
    header = "  ".join(str(column).ljust(width) for column, width in zip(columns, widths))
    separator = "  ".join("-" * width for width in widths)
    body = "\n".join(
        "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        for row in rendered_rows
    )
    return "\n".join([header, separator, body])


def ascii_plot(
    xs: Sequence[float],
    ys: Sequence[float],
    width: int = 70,
    height: int = 16,
    title: str = "",
) -> str:
    """Render a simple scatter/line plot of ``ys`` against ``xs``."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have the same length")
    if not xs:
        return "(no data)"
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        column = int((x - x_min) / x_span * (width - 1))
        row = int((y - y_min) / y_span * (height - 1))
        grid[height - 1 - row][column] = "*"

    lines = []
    if title:
        lines.append(title)
    top_label = f"{y_max:.3g}"
    bottom_label = f"{y_min:.3g}"
    label_width = max(len(top_label), len(bottom_label))
    for index, row in enumerate(grid):
        if index == 0:
            label = top_label.rjust(label_width)
        elif index == height - 1:
            label = bottom_label.rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |{''.join(row)}")
    lines.append(" " * label_width + " +" + "-" * width)
    lines.append(
        " " * label_width + f"  {x_min:.3g}" + " " * (width - 12) + f"{x_max:.3g}"
    )
    return "\n".join(lines)


def _format_cell(value) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
