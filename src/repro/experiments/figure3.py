"""Experiment E2 — reproduce the paper's Figure 3.

Figure 3 shows, for ``SpaceEfficientRanking`` and populations
``n ∈ {128, 256, …, 8192}`` (100 runs per size in the paper), the number of
interactions — normalized by ``n²`` — needed to rank the fractions 1/2,
3/4, 7/8 and 15/16 of the agents, starting from a configuration with one
unaware leader holding rank 1 and every other agent still in a leader
election state.

Expected shape: the normalized time per fraction is essentially flat in
``n`` (ranking a constant fraction takes ``Θ(n²)`` interactions), and each
successive fraction adds a roughly constant increment (the coupon-collector
style doubling the paper discusses).

Two engines are available:

* ``"aggregate"`` (default) — the exact event-driven simulator
  (:class:`~repro.protocols.ranking.aggregate_space_efficient.AggregateSpaceEfficientRanking`),
  which handles the paper's full range of population sizes in seconds;
* ``"reference"`` — the agent-level simulator, practical up to ``n ≈ 512``
  and used to validate the aggregate engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from ..analysis.statistics import summarize
from ..core.errors import ExperimentError
from ..core.rng import RandomState, spawn_seeds
from ..core.simulation import Simulator
from ..protocols.ranking.aggregate_space_efficient import AggregateSpaceEfficientRanking
from ..protocols.ranking.space_efficient import SpaceEfficientRanking
from .ascii_plot import format_table
from .workloads import figure3_initial_configuration

__all__ = ["Figure3Result", "run_figure3", "format_figure3", "PAPER_FRACTIONS"]

#: The ranked fractions reported in the paper's Figure 3.
PAPER_FRACTIONS = (0.5, 0.75, 0.875, 0.9375)

#: The population sizes of the paper's Figure 3.
PAPER_POPULATION_SIZES = (128, 256, 512, 1024, 2048, 4096, 8192)


@dataclass
class Figure3Result:
    """Normalized times to rank each fraction, per population size."""

    fractions: Sequence[float]
    n_values: Sequence[int]
    repetitions: int
    engine: str
    # samples[n][fraction] = list of interactions / n² values, one per run.
    samples: Dict[int, Dict[float, List[float]]] = field(default_factory=dict)

    def mean(self, n: int, fraction: float) -> float:
        """Mean normalized time to rank ``fraction`` of the agents at size ``n``."""
        return summarize(self.samples[n][fraction]).mean

    def rows(self) -> List[dict]:
        """One row per (n, fraction) with summary statistics."""
        rows = []
        for n in self.n_values:
            for fraction in self.fractions:
                summary = summarize(self.samples[n][fraction])
                rows.append(
                    {
                        "n": n,
                        "fraction": fraction,
                        "mean_interactions_over_n2": summary.mean,
                        "median_interactions_over_n2": summary.median,
                        "std": summary.std,
                        "runs": summary.count,
                    }
                )
        return rows

    def series_by_fraction(self) -> Dict[float, List[float]]:
        """For each fraction, the mean normalized time per population size."""
        return {
            fraction: [self.mean(n, fraction) for n in self.n_values]
            for fraction in self.fractions
        }


def run_figure3(
    n_values: Sequence[int] = PAPER_POPULATION_SIZES,
    fractions: Sequence[float] = PAPER_FRACTIONS,
    repetitions: int = 100,
    engine: str = "aggregate",
    c_wait: float = 2.0,
    random_state: RandomState = 0,
) -> Figure3Result:
    """Run the Figure 3 sweep and collect normalized milestone times."""
    if engine not in ("aggregate", "reference"):
        raise ExperimentError(f"unknown engine {engine!r}")
    if repetitions < 1:
        raise ExperimentError("repetitions must be positive")
    fractions = tuple(sorted(fractions))
    result = Figure3Result(
        fractions=fractions,
        n_values=tuple(n_values),
        repetitions=repetitions,
        engine=engine,
    )
    for n in n_values:
        seeds = spawn_seeds((hash((int(n), str(random_state))) & 0x7FFFFFFF), repetitions)
        per_fraction: Dict[float, List[float]] = {fraction: [] for fraction in fractions}
        for seed in seeds:
            rng = np.random.default_rng(seed)
            if engine == "aggregate":
                milestones = _run_aggregate(n, fractions, c_wait, rng)
            else:
                milestones = _run_reference(n, fractions, c_wait, rng)
            for fraction, interactions in milestones.items():
                per_fraction[fraction].append(interactions / float(n * n))
        result.samples[n] = per_fraction
    return result


def _run_aggregate(
    n: int, fractions: Sequence[float], c_wait: float, rng: np.random.Generator
) -> Dict[float, int]:
    simulator = AggregateSpaceEfficientRanking(n, c_wait=c_wait, random_state=rng)
    milestones = simulator.milestone_predicates(fractions)
    outcome = simulator.run(max_interactions=10**15, milestones=milestones)
    if not outcome.converged:
        raise ExperimentError(f"aggregate Figure 3 run for n={n} did not finish")
    return {
        fraction: outcome.milestones[f"ranked_{fraction}"] for fraction in fractions
    }


def _run_reference(
    n: int, fractions: Sequence[float], c_wait: float, rng: np.random.Generator
) -> Dict[float, int]:
    protocol = SpaceEfficientRanking(n, c_wait=c_wait)
    configuration = figure3_initial_configuration(protocol)
    simulator = Simulator(protocol, configuration=configuration, random_state=rng)
    budget = 500 * n * n
    milestones: Dict[float, int] = {}
    for fraction in sorted(fractions):
        threshold = fraction * n
        outcome = simulator.run_until(
            lambda config, threshold=threshold: config.ranked_count() >= threshold,
            max_interactions=budget - simulator.interactions,
        )
        if not outcome.converged:
            raise ExperimentError(
                f"reference Figure 3 run for n={n} missed fraction {fraction}"
            )
        milestones[fraction] = simulator.interactions
    return milestones


def format_figure3(result: Figure3Result) -> str:
    """Render the Figure 3 sweep as a text table (one row per n, one column per fraction)."""
    rows = []
    for n in result.n_values:
        row = {"n": n}
        for fraction in result.fractions:
            row[f"frac {fraction}"] = result.mean(n, fraction)
        rows.append(row)
    header = (
        f"Figure 3 reproduction — SpaceEfficientRanking ({result.engine} engine, "
        f"{result.repetitions} runs per n); entries are mean interactions / n² "
        f"to rank the given fraction of agents"
    )
    return header + "\n" + format_table(rows)
