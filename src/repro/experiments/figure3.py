"""Experiment E2 — reproduce the paper's Figure 3.

Figure 3 shows, for ``SpaceEfficientRanking`` and populations
``n ∈ {128, 256, …, 8192}`` (100 runs per size in the paper), the number of
interactions — normalized by ``n²`` — needed to rank the fractions 1/2,
3/4, 7/8 and 15/16 of the agents, starting from a configuration with one
unaware leader holding rank 1 and every other agent still in a leader
election state.

Expected shape: the normalized time per fraction is essentially flat in
``n`` (ranking a constant fraction takes ``Θ(n²)`` interactions), and each
successive fraction adds a roughly constant increment (the coupon-collector
style doubling the paper discusses).

Two engines are available:

* ``"aggregate"`` (default) — the exact event-driven simulator
  (:class:`~repro.protocols.ranking.aggregate_space_efficient.AggregateSpaceEfficientRanking`),
  which handles the paper's full range of population sizes in seconds;
* ``"reference"`` — the agent-level simulator, practical up to ``n ≈ 512``
  and used to validate the aggregate engine.

The experiment is a preset over the declarative study API
(:func:`figure3_specs`, ``python -m repro run figure3``);
:func:`run_figure3` remains as a deprecated shim.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..analysis.statistics import summarize
from ..core.errors import ExperimentError
from ..core.rng import RandomState
from .ascii_plot import format_table
from .study import ExperimentSpec, ResultSet, Study
from ._shims import coerce_seed

__all__ = [
    "Figure3Result",
    "figure3_specs",
    "figure3_result_from_rows",
    "run_figure3",
    "format_figure3",
    "PAPER_FRACTIONS",
]

#: The ranked fractions reported in the paper's Figure 3.
PAPER_FRACTIONS = (0.5, 0.75, 0.875, 0.9375)

#: The population sizes of the paper's Figure 3.
PAPER_POPULATION_SIZES = (128, 256, 512, 1024, 2048, 4096, 8192)


@dataclass
class Figure3Result:
    """Normalized times to rank each fraction, per population size."""

    fractions: Sequence[float]
    n_values: Sequence[int]
    repetitions: int
    engine: str
    # samples[n][fraction] = list of interactions / n² values, one per run.
    samples: Dict[int, Dict[float, List[float]]] = field(default_factory=dict)

    def mean(self, n: int, fraction: float) -> float:
        """Mean normalized time to rank ``fraction`` of the agents at size ``n``."""
        return summarize(self.samples[n][fraction]).mean

    def rows(self) -> List[dict]:
        """One row per (n, fraction) with summary statistics."""
        rows = []
        for n in self.n_values:
            for fraction in self.fractions:
                summary = summarize(self.samples[n][fraction])
                rows.append(
                    {
                        "n": n,
                        "fraction": fraction,
                        "mean_interactions_over_n2": summary.mean,
                        "median_interactions_over_n2": summary.median,
                        "std": summary.std,
                        "runs": summary.count,
                    }
                )
        return rows

    def series_by_fraction(self) -> Dict[float, List[float]]:
        """For each fraction, the mean normalized time per population size."""
        return {
            fraction: [self.mean(n, fraction) for n in self.n_values]
            for fraction in self.fractions
        }


def figure3_specs(
    n_values: Sequence[int] = PAPER_POPULATION_SIZES,
    fractions: Sequence[float] = PAPER_FRACTIONS,
    repetitions: int = 100,
    engine: str = "auto",
    c_wait: float = 2.0,
    max_interactions_factor: float = 500.0,
    random_state: int = 0,
) -> Tuple[ExperimentSpec, ...]:
    """The Figure 3 sweep as a declarative spec.

    The default ``engine="auto"`` resolves to the aggregate engine (the
    paper-scale choice for this workload) through the backend registry;
    pass ``"reference"`` or ``"array"`` for agent-level validation runs.
    """
    return (
        ExperimentSpec(
            variant="figure3",
            protocol="space-efficient-ranking",
            n_values=tuple(n_values),
            seeds=repetitions,
            engine=engine,
            workload="figure3",
            protocol_params={"c_wait": c_wait},
            max_interactions_factor=float(max_interactions_factor),
            milestone_fractions=tuple(fractions),
            random_state=random_state,
        ),
    )


def figure3_result_from_rows(result: ResultSet) -> Figure3Result:
    """Convert a study result set into the legacy :class:`Figure3Result`."""
    spec = result.specs[0]
    fractions = tuple(spec.milestone_fractions)
    # Report the backend(s) that actually served the rows — under
    # engine="auto" the spec only records the request.
    engines = sorted({row.engine for row in result.rows}) or [spec.engine]
    out = Figure3Result(
        fractions=fractions,
        n_values=tuple(spec.n_values),
        repetitions=spec.seeds,
        engine="/".join(engines),
    )
    for n in spec.n_values:
        per_fraction: Dict[float, List[float]] = {f: [] for f in fractions}
        for row in result.filter(n=n).rows:
            if not row.converged:
                raise ExperimentError(
                    f"Figure 3 run for n={n} (seed {row.seed_index}) did not "
                    f"reach every fraction within budget"
                )
            for fraction in fractions:
                per_fraction[fraction].append(
                    row.milestones[f"ranked_{fraction}"] / float(n * n)
                )
        out.samples[n] = per_fraction
    return out


def run_figure3(
    n_values: Sequence[int] = PAPER_POPULATION_SIZES,
    fractions: Sequence[float] = PAPER_FRACTIONS,
    repetitions: int = 100,
    engine: str = "aggregate",
    c_wait: float = 2.0,
    random_state: RandomState = 0,
) -> Figure3Result:
    """Run the Figure 3 sweep and collect normalized milestone times.

    .. deprecated::
        Thin shim over :class:`~repro.experiments.study.Study`; build the
        specs with :func:`figure3_specs` (or use ``python -m repro run
        figure3``) to get parallel seed fan-out and the result store.
    """
    warnings.warn(
        "run_figure3 is deprecated; use Study(figure3_specs(...)) or "
        "`python -m repro run figure3`",
        DeprecationWarning,
        stacklevel=2,
    )
    if engine not in ("aggregate", "reference"):
        raise ExperimentError(f"unknown engine {engine!r}")
    if repetitions < 1:
        raise ExperimentError("repetitions must be positive")
    specs = figure3_specs(
        n_values=n_values,
        fractions=fractions,
        repetitions=repetitions,
        engine=engine,
        c_wait=c_wait,
        random_state=coerce_seed(random_state),
    )
    return figure3_result_from_rows(Study(specs, name="figure3").run())


def format_figure3(result: Figure3Result) -> str:
    """Render the Figure 3 sweep as a text table (one row per n, one column per fraction)."""
    rows = []
    for n in result.n_values:
        row = {"n": n}
        for fraction in result.fractions:
            row[f"frac {fraction}"] = result.mean(n, fraction)
        rows.append(row)
    header = (
        f"Figure 3 reproduction — SpaceEfficientRanking ({result.engine} engine, "
        f"{result.repetitions} runs per n); entries are mean interactions / n² "
        f"to rank the given fraction of agents"
    )
    return header + "\n" + format_table(rows)
