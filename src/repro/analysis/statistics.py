"""Summary statistics for repeated simulation runs.

Every experiment in this repository is a Monte-Carlo experiment; these
helpers compute the summaries reported in EXPERIMENTS.md (means, medians,
quantiles, bootstrap confidence intervals) without pulling in anything
heavier than numpy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.errors import AnalysisError
from ..core.rng import RandomState, make_rng

__all__ = ["RunSummary", "summarize", "bootstrap_confidence_interval"]


@dataclass(frozen=True)
class RunSummary:
    """Summary of one sample of scalar measurements."""

    count: int
    mean: float
    std: float
    minimum: float
    median: float
    maximum: float
    quantile_25: float
    quantile_75: float

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "median": self.median,
            "max": self.maximum,
            "q25": self.quantile_25,
            "q75": self.quantile_75,
        }


def summarize(values: Sequence[float]) -> RunSummary:
    """Compute a :class:`RunSummary` for ``values`` (must be non-empty)."""
    if len(values) == 0:
        raise AnalysisError("cannot summarize an empty sample")
    array = np.asarray(values, dtype=float)
    return RunSummary(
        count=int(array.size),
        mean=float(array.mean()),
        std=float(array.std(ddof=1)) if array.size > 1 else 0.0,
        minimum=float(array.min()),
        median=float(np.median(array)),
        maximum=float(array.max()),
        quantile_25=float(np.quantile(array, 0.25)),
        quantile_75=float(np.quantile(array, 0.75)),
    )


def bootstrap_confidence_interval(
    values: Sequence[float],
    confidence: float = 0.95,
    resamples: int = 2000,
    random_state: RandomState = None,
) -> tuple[float, float]:
    """Percentile bootstrap confidence interval for the mean of ``values``."""
    if len(values) == 0:
        raise AnalysisError("cannot bootstrap an empty sample")
    if not 0.0 < confidence < 1.0:
        raise AnalysisError(f"confidence must be in (0, 1), got {confidence}")
    if resamples < 1:
        raise AnalysisError(f"resamples must be positive, got {resamples}")
    rng = make_rng(random_state)
    array = np.asarray(values, dtype=float)
    indices = rng.integers(0, array.size, size=(resamples, array.size))
    means = array[indices].mean(axis=1)
    lower = (1.0 - confidence) / 2.0
    upper = 1.0 - lower
    return float(np.quantile(means, lower)), float(np.quantile(means, upper))
