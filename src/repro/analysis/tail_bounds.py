"""Tail bounds used in the paper's analysis (Appendix A).

The proofs of Lemmas 3–11 repeatedly bound three waiting-time distributions:

* the **negative binomial** distribution (time until the leader's wait
  counter expires, Lemma 12),
* the **coupon collector** distribution (Lemma 13), and
* the completion time of a **one-way epidemic** among a subpopulation
  (Lemma 14).

The functions below compute exactly the bounds stated in the paper; the test
suite verifies them empirically against Monte-Carlo samples, which doubles as
a sanity check of the simulation engine's waiting-time machinery.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.errors import AnalysisError

__all__ = [
    "negative_binomial_upper_bound",
    "negative_binomial_lower_bound",
    "coupon_collector_bound",
    "one_way_epidemic_bound",
    "sample_negative_binomial",
    "sample_coupon_collector",
]


def negative_binomial_upper_bound(r: int, p: float, n: int, gamma: float) -> float:
    """Lemma 12(1): ``Pr[X > (2/p)·(r + γ·log n)] ≤ n^-γ`` for ``X ~ NegBin(r, p)``."""
    _check_negbin_args(r, p)
    if n < 1 or gamma <= 0:
        raise AnalysisError("n must be >= 1 and gamma > 0")
    return 2.0 / p * (r + gamma * math.log(n))


def negative_binomial_lower_bound(r: int, p: float) -> float:
    """Lemma 12(2): ``Pr[X ≤ r / (2p)] ≤ exp(-r/6)`` for ``X ~ NegBin(r, p)``."""
    _check_negbin_args(r, p)
    return 0.5 * r / p


def coupon_collector_bound(k: int, n: int, gamma: float) -> float:
    """Lemma 13: ``Pr[X > k·(log k + γ·log n)] ≤ n^-γ`` for ``k`` coupons."""
    if not 1 <= k <= n:
        raise AnalysisError(f"need 1 <= k <= n, got k={k}, n={n}")
    if gamma <= 0:
        raise AnalysisError(f"gamma must be positive, got {gamma}")
    return k * (math.log(max(k, 1)) + gamma * math.log(n))


def one_way_epidemic_bound(n: int, m: int, gamma: float) -> float:
    """Lemma 14: whp bound on a one-way epidemic among ``m`` of ``n`` agents.

    ``Pr[X > 3·(n²/m)·(log m + 2γ·log n)] ≤ 2·n^-γ``.
    """
    if not 2 <= m <= n:
        raise AnalysisError(f"need 2 <= m <= n, got m={m}, n={n}")
    if gamma <= 0:
        raise AnalysisError(f"gamma must be positive, got {gamma}")
    return 3.0 * n * n / m * (math.log(m) + 2.0 * gamma * math.log(n))


def sample_negative_binomial(
    rng: np.random.Generator, r: int, p: float, size: int = 1
) -> np.ndarray:
    """Sample ``NegBin(r, p)`` in the paper's convention.

    The paper counts the total number of Bernoulli trials needed for ``r``
    successes (so the support starts at ``r``), whereas numpy's
    ``negative_binomial`` counts only the failures; we add ``r`` to convert.
    """
    _check_negbin_args(r, p)
    if size < 1:
        raise AnalysisError(f"size must be positive, got {size}")
    return rng.negative_binomial(r, p, size=size) + r


def sample_coupon_collector(
    rng: np.random.Generator, k: int, size: int = 1
) -> np.ndarray:
    """Sample the number of uniform draws needed to collect all ``k`` coupons."""
    if k < 1:
        raise AnalysisError(f"k must be positive, got {k}")
    if size < 1:
        raise AnalysisError(f"size must be positive, got {size}")
    # Sum of independent geometrics with success probabilities (k-i)/k.
    samples = np.zeros(size, dtype=np.int64)
    for remaining in range(k, 0, -1):
        samples += rng.geometric(remaining / k, size=size)
    return samples


def _check_negbin_args(r: int, p: float) -> None:
    if r < 1:
        raise AnalysisError(f"r must be at least 1, got {r}")
    if not 0.0 < p <= 1.0:
        raise AnalysisError(f"p must be in (0, 1], got {p}")
