"""Empirical state-space accounting (experiment E4).

The paper's headline is a *state-count* improvement, so the reproduction
needs a way to measure how many distinct states a protocol actually uses in
an execution, not just what the formulas promise.  :class:`StateUsageTracker`
hooks into the reference simulator and records every distinct agent state
that ever occurs; :func:`measure_state_usage` wraps the whole measurement for
one protocol instance, and :func:`overhead_state_table` produces the
paper-vs-built comparison across population sizes.

Observed counts are split into *rank states* (states consisting of nothing
but a rank — at most ``n`` of them) and *overhead states* (everything else),
matching the paper's terminology.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from ..core.configuration import Configuration
from ..core.protocol import PopulationProtocol
from ..core.rng import RandomState
from ..core.simulation import Simulator
from ..core.state import AgentState
from .theory import (
    burman_state_count,
    cai_state_count,
    theorem1_state_count,
    theorem2_state_count,
)

__all__ = [
    "StateUsageTracker",
    "StateUsageReport",
    "measure_state_usage",
    "overhead_state_table",
]


def _state_key(state, ignore_fields: frozenset = frozenset()) -> tuple:
    """A hashable key identifying a state (optionally projecting fields out).

    ``ignore_fields`` supports counting states *modulo* the internals of a
    substituted substrate: e.g. the GS-style leader-election module stores a
    large random tag in ``le_level``, which the paper treats as a black box
    of ``O(log log n)`` states; ignoring ``le_level``/``le_count`` recovers
    the paper-level accounting for the ranking layer.
    """
    fields = getattr(state, "__dataclass_fields__", None)
    if fields is not None:
        return tuple(
            getattr(state, name) for name in fields if name not in ignore_fields
        )
    return (repr(state),)


def _is_pure_rank(state) -> bool:
    """Whether the state consists of nothing but a rank."""
    if getattr(state, "rank", None) is None:
        return False
    other_fields = [
        name for name in getattr(state, "__dataclass_fields__", ()) if name != "rank"
    ]
    return all(getattr(state, name) is None for name in other_fields)


@dataclass
class StateUsageReport:
    """Distinct states observed during one execution."""

    protocol: str
    n: int
    total_states: int
    rank_states: int
    overhead_states: int
    interactions: int
    converged: bool

    def as_dict(self) -> dict:
        return {
            "protocol": self.protocol,
            "n": self.n,
            "total_states": self.total_states,
            "rank_states": self.rank_states,
            "overhead_states": self.overhead_states,
            "interactions": self.interactions,
            "converged": self.converged,
        }


class StateUsageTracker:
    """Records every distinct agent state that occurs during a simulation.

    The tracker seeds itself with the initial configuration and then relies
    on the simulator's ``on_event`` callback: a state can only change during
    an interaction that the transition function reports as changing, so
    recording both participants after every changing interaction captures
    every state ever held by any agent.

    Parameters
    ----------
    configuration:
        The (live) configuration the simulator mutates.
    ignore_fields:
        State fields projected out before counting (see :func:`_state_key`).
    """

    def __init__(self, configuration: Configuration, ignore_fields: Iterable[str] = ()):
        self._configuration = configuration
        self._ignore_fields = frozenset(ignore_fields)
        self._seen: set[tuple] = set()
        self._rank_states: set[tuple] = set()
        self.record_configuration(configuration)

    @property
    def seen(self) -> set:
        """The set of distinct state keys observed so far."""
        return self._seen

    def record_configuration(self, configuration: Configuration) -> None:
        """Record every state present in ``configuration``."""
        for state in configuration.states:
            self._record(state)

    def on_event(self, interaction: int, initiator: int, responder: int, result) -> None:
        """Simulator callback: record the two participants' new states."""
        self._record(self._configuration[initiator])
        self._record(self._configuration[responder])

    def _record(self, state) -> None:
        key = _state_key(state, self._ignore_fields)
        if key in self._seen:
            return
        self._seen.add(key)
        if _is_pure_rank(state):
            self._rank_states.add(key)

    @property
    def total_states(self) -> int:
        """Number of distinct states observed."""
        return len(self._seen)

    @property
    def rank_state_count(self) -> int:
        """Number of distinct pure-rank states observed."""
        return len(self._rank_states)

    @property
    def overhead_state_count(self) -> int:
        """Number of distinct non-rank states observed."""
        return len(self._seen) - len(self._rank_states)


def measure_state_usage(
    protocol: PopulationProtocol,
    max_interactions: int,
    configuration: Optional[Configuration] = None,
    random_state: RandomState = None,
    ignore_fields: Iterable[str] = (),
) -> StateUsageReport:
    """Run ``protocol`` once and report the distinct states it used.

    Pass ``ignore_fields=("le_level", "le_count")`` when measuring
    ``SpaceEfficientRanking`` to count the ranking layer's states with the
    leader-election substrate treated as a black box (the paper's
    accounting); without it the as-built substitute substrate is counted.
    """
    config = configuration if configuration is not None else protocol.initial_configuration()
    tracker = StateUsageTracker(config, ignore_fields=ignore_fields)
    simulator = Simulator(
        protocol,
        configuration=config,
        random_state=random_state,
        on_event=tracker.on_event,
    )
    result = simulator.run(max_interactions=max_interactions)
    return StateUsageReport(
        protocol=protocol.name,
        n=protocol.n,
        total_states=tracker.total_states,
        rank_states=tracker.rank_state_count,
        overhead_states=tracker.overhead_state_count,
        interactions=result.interactions,
        converged=result.converged,
    )


def overhead_state_table(n_values: Sequence[int], c_wait: float = 2.0) -> List[Dict[str, int]]:
    """Predicted overhead-state counts per protocol family (experiment E4).

    One row per population size with the paper-level accounting for the two
    contributed protocols and the two self-stabilizing baselines.
    """
    rows: List[Dict[str, int]] = []
    for n in n_values:
        rows.append(
            {
                "n": n,
                "space_efficient_ranking": theorem1_state_count(n, c_wait) - n,
                "stable_ranking": theorem2_state_count(n) - n,
                "cai_ranking": cai_state_count(n) - n,
                "burman_style_ranking": burman_state_count(n) - n,
            }
        )
    return rows
