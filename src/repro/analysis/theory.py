"""Theoretical predictions from the paper, as executable formulas.

These functions turn the paper's asymptotic statements into concrete numbers
(with explicit, documented constants where the paper leaves them implicit)
so the experiments can plot "measured vs. predicted shape" and the tests can
check that measured quantities scale the way the theorems say they should.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from ..core.errors import AnalysisError

__all__ = [
    "theorem1_interaction_bound",
    "theorem2_interaction_bound",
    "silent_leader_election_lower_bound",
    "range_ranking_lower_bound",
    "theorem1_state_count",
    "theorem2_state_count",
    "cai_state_count",
    "burman_state_count",
    "normalized_stabilization_time",
    "herman_ring_conjectured_bound",
    "herman_ring_upper_bound",
    "ring_epidemic_expected_interactions",
    "complete_epidemic_expected_interactions",
    "StateComplexitySummary",
    "state_complexity_summary",
]


def _check_n(n: int) -> None:
    if n < 2:
        raise AnalysisError(f"population size must be at least 2, got {n}")


# ----------------------------------------------------------------------
# Interaction-count predictions
# ----------------------------------------------------------------------
def theorem1_interaction_bound(n: int, constant: float = 1.0) -> float:
    """Theorem 1: ``SpaceEfficientRanking`` stabilizes in ``O(n² log n)`` interactions."""
    _check_n(n)
    return constant * n * n * math.log2(n)


def theorem2_interaction_bound(n: int, constant: float = 1.0) -> float:
    """Theorem 2: ``StableRanking`` stabilizes in ``O(n² log n)`` interactions."""
    _check_n(n)
    return constant * n * n * math.log2(n)


def silent_leader_election_lower_bound(n: int) -> float:
    """Burman et al. [20]: every silent leader-election protocol needs
    ``Ω(n²)`` interactions in expectation (``Ω(n² log n)`` w.h.p.).

    Returned here as the expectation-level bound ``n·(n-1)/2``: the two last
    unranked/undecided agents must meet at least once.
    """
    _check_n(n)
    return n * (n - 1) / 2.0


def range_ranking_lower_bound(n: int, extra_range: int) -> float:
    """Gasieniec et al. [28]: ranks from ``[1, n + r]`` need at least
    ``n·(n-1) / (2·(r+1))`` interactions in expectation."""
    _check_n(n)
    if extra_range < 0:
        raise AnalysisError(f"extra_range must be non-negative, got {extra_range}")
    return n * (n - 1) / (2.0 * (extra_range + 1))


# ----------------------------------------------------------------------
# State-count predictions
# ----------------------------------------------------------------------
def theorem1_state_count(n: int, c_wait: float = 2.0) -> int:
    """Theorem 1 accounting: ``n + ⌈c_wait log n⌉ + ⌈log n⌉ + 2|Q_LE|`` states.

    ``|Q_LE|`` is the ``O(log log n)`` state count of the black-box leader
    election of [30] (rounded up to at least 2).
    """
    _check_n(n)
    log_n = math.log2(n)
    q_le = max(2, int(math.ceil(math.log2(max(log_n, 2.0)))))
    return n + int(math.ceil(c_wait * log_n)) + int(math.ceil(log_n)) + 2 * q_le


def theorem2_state_count(n: int, constant: float = 1.0) -> int:
    """Theorem 2: ``n + O(log² n)`` states."""
    _check_n(n)
    return n + int(math.ceil(constant * math.log2(n) ** 2))


def cai_state_count(n: int) -> int:
    """Cai et al. [21]: exactly ``n`` states (and ``n`` states are necessary)."""
    _check_n(n)
    return n


def burman_state_count(n: int, constant: float = 2.0) -> int:
    """Burman et al. [20] (silent variant): ``n + Θ(n)`` states."""
    _check_n(n)
    return n + int(math.ceil(constant * n))


# ----------------------------------------------------------------------
# Derived quantities
# ----------------------------------------------------------------------
def normalized_stabilization_time(interactions: int, n: int) -> float:
    """``interactions / (n² log₂ n)`` — constant iff the time is ``Θ(n² log n)``."""
    _check_n(n)
    return interactions / (n * n * math.log2(n))


# ----------------------------------------------------------------------
# Ring-topology overlays (Herman-style bounds and epidemic expectations)
# ----------------------------------------------------------------------
def herman_ring_conjectured_bound(n: int) -> float:
    """Herman's self-stabilization on a ring: the ``4n²/27`` conjecture.

    Herman's randomized token-ring protocol stabilizes in expected
    ``O(n²)`` steps; the worst-case expectation was conjectured (and later
    proved for three tokens) to be exactly ``4n²/27`` — the sharp ``Θ(n²)``
    constant for ring self-stabilization.  The ``topology_sweep`` preset
    overlays this on measured ring stabilization times: any ring-local
    protocol whose measured interactions grow like ``c·n²`` sits a
    constant factor from this line.
    """
    _check_n(n)
    return 4.0 * n * n / 27.0


def herman_ring_upper_bound(n: int, constant: float = 0.64) -> float:
    """McIver–Morgan style proved upper bound ``≈ 0.64·n²`` for Herman's ring.

    The proved worst-case expected stabilization time of Herman's ring is
    at most ``constant · n²`` (0.64 from the literature's best general
    bound; the conjectured sharp constant is ``4/27 ≈ 0.148``).  Together
    the two lines bracket the ``Θ(n²)`` band measured ring runs should
    land in when normalized by ``n²``.
    """
    _check_n(n)
    return constant * n * n


def ring_epidemic_expected_interactions(n: int) -> float:
    """Exact expected one-way-epidemic spread time on the ring: ``n(n-1)``.

    With one informed arc, exactly 2 of the ``2n`` directed edge slots
    grow it (the two boundary slots with an informed initiator), so each
    of the ``n-1`` growth events waits ``Geometric(1/n)`` interactions:
    the expected total is ``n·(n-1)`` — the ``Θ(n²)`` ring behaviour the
    Herman bounds bracket, versus ``Θ(n log n)`` on the complete graph.
    """
    _check_n(n)
    return float(n) * (n - 1)


def complete_epidemic_expected_interactions(n: int) -> float:
    """Exact expected one-way-epidemic spread time on the complete graph.

    With ``k`` informed agents a uniform ordered pair is productive with
    probability ``k(n-k)/(n(n-1))``; summing the geometric waits gives
    ``2(n-1)·H(n-1)`` — the ``Θ(n log n)`` baseline the restricted
    topologies are compared against.
    """
    _check_n(n)
    harmonic = sum(1.0 / k for k in range(1, n))
    return 2.0 * (n - 1) * harmonic


@dataclass(frozen=True)
class StateComplexitySummary:
    """Overhead-state comparison for one population size (experiment E4)."""

    n: int
    space_efficient_overhead: int
    stable_overhead: int
    cai_overhead: int
    burman_overhead: int

    def as_dict(self) -> Dict[str, int]:
        return {
            "n": self.n,
            "space_efficient": self.space_efficient_overhead,
            "stable": self.stable_overhead,
            "cai": self.cai_overhead,
            "burman": self.burman_overhead,
        }


def state_complexity_summary(n: int, c_wait: float = 2.0) -> StateComplexitySummary:
    """Overhead states (total minus ``n``) predicted for each protocol family."""
    return StateComplexitySummary(
        n=n,
        space_efficient_overhead=theorem1_state_count(n, c_wait) - n,
        stable_overhead=theorem2_state_count(n) - n,
        cai_overhead=0,
        burman_overhead=burman_state_count(n) - n,
    )
