"""Analysis utilities: tail bounds, theoretical predictions, state accounting."""

from .state_space import (
    StateUsageReport,
    StateUsageTracker,
    measure_state_usage,
    overhead_state_table,
)
from .statistics import RunSummary, bootstrap_confidence_interval, summarize
from .tail_bounds import (
    coupon_collector_bound,
    negative_binomial_lower_bound,
    negative_binomial_upper_bound,
    one_way_epidemic_bound,
    sample_coupon_collector,
    sample_negative_binomial,
)
from .theory import (
    StateComplexitySummary,
    burman_state_count,
    cai_state_count,
    normalized_stabilization_time,
    range_ranking_lower_bound,
    silent_leader_election_lower_bound,
    state_complexity_summary,
    theorem1_interaction_bound,
    theorem1_state_count,
    theorem2_interaction_bound,
    theorem2_state_count,
)

__all__ = [
    "RunSummary",
    "StateComplexitySummary",
    "StateUsageReport",
    "StateUsageTracker",
    "bootstrap_confidence_interval",
    "burman_state_count",
    "cai_state_count",
    "coupon_collector_bound",
    "measure_state_usage",
    "negative_binomial_lower_bound",
    "negative_binomial_upper_bound",
    "normalized_stabilization_time",
    "one_way_epidemic_bound",
    "overhead_state_table",
    "range_ranking_lower_bound",
    "sample_coupon_collector",
    "sample_negative_binomial",
    "silent_leader_election_lower_bound",
    "state_complexity_summary",
    "summarize",
    "theorem1_interaction_bound",
    "theorem1_state_count",
    "theorem2_interaction_bound",
    "theorem2_state_count",
]
