"""Scenarios: initial condition + deterministic event schedule, as a registry.

A **scenario** is the composable unit of a workload: an *initial
condition* (a workload family from
:mod:`repro.experiments.workloads`, referenced by name) plus an
*event schedule* — a deterministic sequence of
:class:`~repro.scenarios.events.ScheduledEvent` perturbations fired at
specified interaction counts.  The experiment layer's legacy ``workload=``
strings are back-compat aliases for *static* scenarios (empty schedule);
event-bearing scenarios are what make mid-run self-stabilization
(Theorem 2 under repeated perturbation) measurable at all.

The registry mirrors :mod:`repro.core.backends`: scenarios are looked up
by name (:func:`get_scenario`), user code extends the set with
:func:`register_scenario`, and — like the backend and workload
registries — registration must happen at import time of a module that
worker processes also import, or parallel studies will not see it.

Schedule determinism
--------------------
:meth:`Scenario.schedule` is a pure function of ``(n, params)``: event
*times* are data, never drawn from a generator.  Randomness enters only
inside the event appliers, each seeded from its own
:class:`numpy.random.SeedSequence` child (see
:func:`~repro.scenarios.events.bind_schedule`), which is what makes a
scenario cell reproducible across engines, processes and resumes.
"""

from __future__ import annotations

import abc
import inspect
from typing import Dict, Tuple

from ..core.errors import ExperimentError
from .events import EVENTS, ScheduledEvent

__all__ = [
    "Scenario",
    "StaticScenario",
    "FaultStormScenario",
    "ChurnScenario",
    "register_scenario",
    "get_scenario",
    "scenario_names",
]


def _validate_event_params(kind: str, params: Dict) -> None:
    """Reject applier keyword arguments at schedule-build (= spec) time.

    Spec validation builds every schedule precisely to fail fast; a
    typo'd applier kwarg or an out-of-range fraction must not survive
    until the first event fires mid-run (possibly inside a worker
    process, after ``period_factor · n²`` simulated interactions).
    """
    applier = EVENTS[kind]
    signature = inspect.signature(applier)
    accepts_kwargs = any(
        parameter.kind is inspect.Parameter.VAR_KEYWORD
        for parameter in signature.parameters.values()
    )
    if not accepts_kwargs:
        known = set(signature.parameters) - {
            "protocol", "configuration", "rng"
        }
        unknown = set(params) - known
        if unknown:
            raise ExperimentError(
                f"event kind {kind!r} does not accept parameters "
                f"{sorted(unknown)}; expected a subset of {sorted(known)}"
            )
    fraction = params.get("fraction")
    if fraction is not None and not 0.0 < float(fraction) <= 1.0:
        raise ExperimentError(
            f"event fraction must be in (0, 1], got {fraction}"
        )
    count = params.get("count")
    if count is not None and int(count) < 1:
        raise ExperimentError(f"event count must be positive, got {count}")


def _periodic_schedule(
    n: int,
    kind: str,
    events: int,
    period_factor: float,
    params: Dict,
) -> Tuple[ScheduledEvent, ...]:
    """``events`` firings of one validated event kind, every
    ``period_factor · n²`` interactions (the shared builder behind the
    periodic scenarios)."""
    _validate_event_params(kind, params)
    events = int(events)
    if events < 1:
        raise ExperimentError(f"events must be positive, got {events}")
    if period_factor <= 0:
        raise ExperimentError(
            f"period_factor must be positive, got {period_factor}"
        )
    period = max(1, int(round(float(period_factor) * n * n)))
    return tuple(
        ScheduledEvent(at=index * period, kind=kind, params=dict(params))
        for index in range(1, events + 1)
    )


class Scenario(abc.ABC):
    """One named workload family: initial condition + event schedule."""

    #: Registry name (the ``scenario=`` string).
    name: str = "scenario"
    #: Default initial-condition family (a workload name understood by the
    #: experiment layer); specs may override it for composition.
    workload: str = "fresh"
    #: One-line description for ``repro list --scenarios``.
    description: str = ""
    #: Whether the schedule is empty for every ``(n, params)``.  Static
    #: scenarios are interchangeable with their ``workload=`` alias — the
    #: experiment layer normalizes them so spec identities (and therefore
    #: result stores) are shared between the two spellings.
    is_static: bool = False

    @abc.abstractmethod
    def schedule(self, n: int, **params) -> Tuple[ScheduledEvent, ...]:
        """The event schedule for one population size (sorted by time).

        Must be a pure function of ``(n, params)`` and raise
        :class:`~repro.core.errors.ExperimentError` on invalid parameters
        — spec validation calls this for every ``n`` in the matrix.
        """


class StaticScenario(Scenario):
    """A scenario that only names an initial condition (no events)."""

    is_static = True

    def __init__(self, name: str, workload: str, description: str = ""):
        self.name = name
        self.workload = workload
        self.description = description

    def schedule(self, n: int, **params) -> Tuple[ScheduledEvent, ...]:
        if params:
            raise ExperimentError(
                f"static scenario {self.name!r} accepts no schedule "
                f"parameters, got {sorted(params)}"
            )
        return ()


class FaultStormScenario(Scenario):
    """Periodic fault injection: one event kind fired every ``period``.

    Parameters (via ``scenario_params``)
    ------------------------------------
    fault:
        Event kind from :data:`~repro.scenarios.events.EVENTS`
        (default ``"duplicate_rank"``).
    events:
        Number of injections (default 3).
    period_factor:
        Spacing between injections in units of ``n²`` (default 80.0) —
        the first event fires at ``period_factor · n²``, comfortably past
        the ``Θ(n² log n)/n²``-normalized stabilization times the paper
        reports, so each injection hits a (typically) recovered system.
    Remaining keyword arguments are forwarded to the event applier
    (e.g. ``count=2``).
    """

    name = "fault_storm"
    workload = "fresh"
    description = (
        "periodic mid-run fault injection; measures per-event recovery"
    )

    def schedule(self, n: int, *, fault: str = "duplicate_rank",
                 events: int = 3, period_factor: float = 80.0,
                 **fault_params) -> Tuple[ScheduledEvent, ...]:
        if fault not in EVENTS:
            raise ExperimentError(
                f"unknown event kind {fault!r}; expected one of "
                f"{tuple(EVENTS)}"
            )
        return _periodic_schedule(n, fault, events, period_factor,
                                  fault_params)


class ChurnScenario(Scenario):
    """Periodic population churn: a fraction of agents leaves and rejoins."""

    name = "churn"
    workload = "fresh"
    description = "periodic replacement of a population fraction by fresh agents"

    def schedule(self, n: int, *, fraction: float = 0.25, events: int = 4,
                 period_factor: float = 25.0) -> Tuple[ScheduledEvent, ...]:
        return _periodic_schedule(n, "churn", events, period_factor,
                                  {"fraction": float(fraction)})


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, Scenario] = {}


def register_scenario(scenario: Scenario, replace: bool = False) -> Scenario:
    """Add a scenario to the registry (same caveats as backend registration)."""
    if not replace and scenario.name in _REGISTRY:
        raise ExperimentError(
            f"scenario {scenario.name!r} is already registered"
        )
    _REGISTRY[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    """The registered scenario called ``name``."""
    scenario = _REGISTRY.get(name)
    if scenario is None:
        raise ExperimentError(
            f"unknown scenario {name!r}; expected one of {scenario_names()}"
        )
    return scenario


def scenario_names() -> Tuple[str, ...]:
    """All registered scenario names, in registration order."""
    return tuple(_REGISTRY)


# Static mirrors of the experiment layer's workload families: one scenario
# per workload name, so ``scenario="figure2"`` and the back-compat alias
# ``workload="figure2"`` are the same spec (the experiment layer
# normalizes the former onto the latter, preserving identity hashes).
for _name, _description in (
    ("fresh", "the protocol's designated initial configuration"),
    ("figure2", "worst-case start: ranks 2…n plus one maxed-out phase agent"),
    ("figure3", "one unaware leader with rank 1, everyone else electing"),
    ("duplicate_rank", "valid ranking with injected duplicate-rank faults"),
    ("missing_rank", "valid ranking with one rank missing"),
    ("adversarial", "uniformly-ish random states over the state space"),
):
    register_scenario(StaticScenario(_name, _name, _description))

register_scenario(FaultStormScenario())
register_scenario(ChurnScenario())
