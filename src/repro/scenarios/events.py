"""Perturbation events: deterministic mid-run configuration surgery.

The paper's Theorem 2 promises stabilization from *any* configuration,
which the workload layer (:mod:`repro.experiments.workloads`) can only
exercise at interaction 0.  Events extend the same fault models to the
middle of a run: each event *kind* is a pure function that, given the
protocol, the live configuration and a dedicated generator, rewrites some
agents' states — rank corruption, duplicate/missing-rank injection,
crash-and-reset, adversarial re-scramble, population churn.

Determinism contract
--------------------
Every event draws exclusively from the generator it is handed (one
:class:`numpy.random.SeedSequence` child per event, see
:func:`bind_schedule`) and **never** from the simulation's own stream, so
firing an event does not shift the scheduler's pair sequence.  Given the
same configuration and the same seed an event produces the same new
configuration on every engine — which is what keeps reference↔array runs
bit-identical through event boundaries.

Replacement, not mutation
-------------------------
Event appliers must *replace* agent states (``configuration[i] = state``)
rather than mutate them in place: on the array engine the decoded
configuration may alias codec prototypes, and in-place writes would
corrupt every agent sharing the state.  All built-in kinds follow this
rule; custom kinds registered via :func:`register_event` must too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Tuple

import numpy as np

from ..core.configuration import Configuration
from ..core.errors import ExperimentError
from ..core.state import AgentState

__all__ = [
    "EVENTS",
    "BoundEvent",
    "ScheduledEvent",
    "bind_schedule",
    "register_event",
]


def _chosen_agents(rng: np.random.Generator, n: int, count: int) -> np.ndarray:
    """``count`` distinct agent indices, clipped to the population."""
    count = max(0, min(int(count), n))
    if count == 0:
        return np.empty(0, dtype=np.int64)
    return rng.choice(n, size=count, replace=False)


def _require_agent_states(configuration: Configuration, kind: str) -> None:
    """Ranking-family events write :class:`AgentState` values.

    A clear error beats the ``AttributeError`` the protocol's next
    transition would raise after an incompatible state was injected into
    (say) a baseline protocol's population.
    """
    if not isinstance(configuration[0], AgentState):
        raise ExperimentError(
            f"event kind {kind!r} writes AgentState values, but this "
            f"population holds {type(configuration[0]).__name__} states; "
            "use a protocol-agnostic kind (crash_reset, churn) instead"
        )


def rank_corruption(protocol, configuration: Configuration,
                    rng: np.random.Generator, count: int = 1) -> dict:
    """Overwrite ``count`` agents' states with uniformly random ranks.

    The canonical transient memory fault: the corrupted agents believe
    they hold a rank drawn uniformly from ``{1, …, n}``, collisions with
    live ranks included.
    """
    _require_agent_states(configuration, "rank_corruption")
    n = configuration.population_size
    agents = _chosen_agents(rng, n, count)
    for agent in agents:
        configuration[int(agent)] = AgentState(
            rank=int(rng.integers(1, n + 1))
        )
    return {"kind": "rank_corruption", "agents": int(len(agents))}


def duplicate_rank(protocol, configuration: Configuration,
                   rng: np.random.Generator, count: int = 1) -> dict:
    """Copy ``count`` distinct live ranks over other ranked agents.

    Victims and donors are drawn disjointly from the *currently ranked*
    agents, and donor ranks are read before any overwrite, so exactly
    ``min(count, ranked // 2)`` ranks end up duplicated (and as many go
    missing) regardless of draw order.
    """
    _require_agent_states(configuration, "duplicate_rank")
    ranks = configuration.ranks()
    ranked = np.asarray(
        [index for index, rank in enumerate(ranks) if rank is not None],
        dtype=np.int64,
    )
    count = max(0, min(int(count), len(ranked) // 2))
    if count == 0:
        return {"kind": "duplicate_rank", "agents": 0}
    selection = rng.permutation(ranked)
    victims = selection[:count]
    donors = selection[count:2 * count]
    for victim, donor in zip(victims, donors):
        configuration[int(victim)] = AgentState(rank=int(ranks[int(donor)]))
    return {"kind": "duplicate_rank", "agents": int(count)}


def missing_rank(protocol, configuration: Configuration,
                 rng: np.random.Generator, count: int = 1) -> dict:
    """Make ``count`` ranked agents forget their rank entirely.

    The dropped agents re-enter as phase agents with a full liveness
    counter (the mid-run generalization of the ``missing_rank`` workload)
    when the protocol exposes ``l_max``, and as fresh agents otherwise.
    """
    _require_agent_states(configuration, "missing_rank")
    ranks = configuration.ranks()
    ranked = np.asarray(
        [index for index, rank in enumerate(ranks) if rank is not None],
        dtype=np.int64,
    )
    agents = _chosen_agents(rng, len(ranked), count)
    l_max = getattr(protocol, "l_max", None)
    for position in agents:
        agent = int(ranked[int(position)])
        if l_max is not None:
            configuration[agent] = AgentState(
                phase=1, coin=0, alive_count=l_max
            )
        else:
            configuration[agent] = protocol.initial_state()
    return {"kind": "missing_rank", "agents": int(len(agents))}


def crash_reset(protocol, configuration: Configuration,
                rng: np.random.Generator, count: int = 1) -> dict:
    """Crash ``count`` agents: their state reverts to the initial state."""
    agents = _chosen_agents(rng, configuration.population_size, count)
    for agent in agents:
        configuration[int(agent)] = protocol.initial_state()
    return {"kind": "crash_reset", "agents": int(len(agents))}


def churn(protocol, configuration: Configuration,
          rng: np.random.Generator, fraction: float = 0.25) -> dict:
    """Replace a fraction of the population with freshly joined agents.

    Population protocols have a fixed ``n``, so churn is modelled as
    simultaneous departure and arrival: each churned slot is taken over
    by an agent in the protocol's designated initial state.
    """
    n = configuration.population_size
    if not 0.0 < fraction <= 1.0:
        raise ExperimentError(
            f"churn fraction must be in (0, 1], got {fraction}"
        )
    count = max(1, int(round(fraction * n)))
    agents = _chosen_agents(rng, n, count)
    for agent in agents:
        configuration[int(agent)] = protocol.initial_state()
    return {"kind": "churn", "agents": int(len(agents))}


def scramble(protocol, configuration: Configuration,
             rng: np.random.Generator, fraction: float = 1.0) -> dict:
    """Adversarially re-scramble a fraction of the population.

    Each affected agent's state is replaced by a uniformly-ish random
    state over the protocol's state space
    (:func:`~repro.experiments.workloads.adversarial_state`) — the
    arbitrary-configuration perturbation Theorem 2 quantifies over,
    applied mid-run.
    """
    # Imported lazily: repro.experiments imports repro.scenarios at module
    # level, so the reverse edge must resolve at call time only.
    from ..experiments.workloads import adversarial_state

    for attribute in ("schedule", "l_max", "wait_init", "leader_election",
                      "reset"):
        if not hasattr(protocol, attribute):
            raise ExperimentError(
                f"scramble draws over StableRanking's state space and "
                f"needs protocol.{attribute}; {protocol.name!r} does not "
                "provide it — use crash_reset or churn instead"
            )
    n = configuration.population_size
    if not 0.0 < fraction <= 1.0:
        raise ExperimentError(
            f"scramble fraction must be in (0, 1], got {fraction}"
        )
    count = max(1, int(round(fraction * n)))
    agents = np.sort(_chosen_agents(rng, n, count))
    for agent in agents:
        configuration[int(agent)] = adversarial_state(protocol, rng)
    return {"kind": "scramble", "agents": int(len(agents))}


#: Event kinds by name; each is ``fn(protocol, configuration, rng,
#: **params) -> summary dict``.  Mirrors the registries of
#: :mod:`repro.core.backends` and :mod:`repro.experiments.study`.
EVENTS: Dict[str, Callable] = {
    "rank_corruption": rank_corruption,
    "duplicate_rank": duplicate_rank,
    "missing_rank": missing_rank,
    "crash_reset": crash_reset,
    "churn": churn,
    "scramble": scramble,
}


def register_event(name: str, applier: Callable, replace: bool = False) -> Callable:
    """Add an event kind to the registry (same contract as the built-ins)."""
    if not replace and name in EVENTS:
        raise ExperimentError(f"event kind {name!r} is already registered")
    EVENTS[name] = applier
    return applier


@dataclass(frozen=True)
class ScheduledEvent:
    """One perturbation at a specified interaction count.

    ``at`` counts interactions from the start of the (segmented) run;
    ``kind`` names an entry of :data:`EVENTS`; ``params`` are the
    applier's keyword arguments (JSON-serializable, since they flow
    through :class:`~repro.experiments.study.ExperimentSpec` payloads).
    """

    at: int
    kind: str
    params: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self):
        object.__setattr__(self, "at", int(self.at))
        object.__setattr__(self, "params", dict(self.params))
        if self.at < 0:
            raise ExperimentError(
                f"event interaction count must be non-negative, got {self.at}"
            )
        if self.kind not in EVENTS:
            raise ExperimentError(
                f"unknown event kind {self.kind!r}; expected one of "
                f"{tuple(EVENTS)}"
            )


@dataclass(frozen=True)
class BoundEvent:
    """A scheduled event bound to a protocol and its own generator.

    This is what the simulators' ``run_segmented`` consumes: ``mutate``
    closes over the protocol, the applier, the parameters and a dedicated
    per-event generator, and takes only the live configuration.
    """

    at: int
    label: str
    mutate: Callable[[Configuration], dict]


def bind_schedule(
    schedule: Tuple[ScheduledEvent, ...],
    protocol,
    entropy: np.random.SeedSequence,
) -> Tuple[BoundEvent, ...]:
    """Bind a schedule to a protocol and spawn one generator per event.

    ``entropy`` is the cell's event seed sequence; each event gets its
    own spawned child (keyed by its position in the time-sorted
    schedule), so event randomness is independent of the simulation
    stream and of the other events' streams.  Note the keying is
    positional: editing the schedule re-seeds the events after the edit
    point, exactly like changing any other part of the spec identity.
    """
    ordered = sorted(schedule, key=lambda event: event.at)
    children = entropy.spawn(len(ordered)) if ordered else ()
    bound = []
    for event, child in zip(ordered, children):
        applier = EVENTS[event.kind]

        def mutate(configuration, _applier=applier, _event=event, _child=child):
            return _applier(
                protocol,
                configuration,
                np.random.default_rng(_child),
                **_event.params,
            )

        bound.append(BoundEvent(at=event.at, label=event.kind, mutate=mutate))
    return tuple(bound)
