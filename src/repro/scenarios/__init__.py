"""First-class scenarios: composable workloads with mid-run event schedules.

A :class:`~repro.scenarios.scenario.Scenario` couples an initial
condition (a workload family) with a deterministic
:class:`~repro.scenarios.events.ScheduledEvent` schedule — rank
corruption, duplicate/missing-rank injection, crash-and-reset,
adversarial re-scramble, population churn — fired at specified
interaction counts.  Scenarios live in a registry mirroring the engine
backends (:func:`get_scenario` / :func:`register_scenario`), the
experiment layer's ``workload=`` strings are back-compat aliases for the
static scenarios, and every engine that answers ``supports_events`` in
its capability probe runs event-bearing scenarios bit-identically to the
reference simulator.  See ``docs/scenarios.md`` for the model and the
determinism contract.
"""

from .events import (
    EVENTS,
    BoundEvent,
    ScheduledEvent,
    bind_schedule,
    register_event,
)
from .scenario import (
    ChurnScenario,
    FaultStormScenario,
    Scenario,
    StaticScenario,
    get_scenario,
    register_scenario,
    scenario_names,
)

__all__ = [
    "EVENTS",
    "BoundEvent",
    "ChurnScenario",
    "FaultStormScenario",
    "Scenario",
    "ScheduledEvent",
    "StaticScenario",
    "bind_schedule",
    "get_scenario",
    "register_event",
    "register_scenario",
    "scenario_names",
]
