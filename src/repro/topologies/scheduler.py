"""Graph-restricted and asynchronous interaction scheduling.

:class:`TopologyScheduler` is the drop-in sibling of
:class:`~repro.core.scheduler.UniformPairScheduler`: it subclasses the
shared :class:`~repro.core.scheduler.PairScheduler` seam, so the reference
simulator's buffered ``sample()`` calls and the array engines' whole-chunk
``sample_chunk()`` calls consume the *same* generator stream and stay
bit-identical on the same seed.

The scheduler owns the per-run mutable state: its random generator plus a
fresh :class:`PairStream` from the topology.  Plain families use the
stateless :class:`DirectPairStream`; the async ``delayed`` wrapper uses
:class:`DelayedPairStream`, which pushes each sampled interaction onto a
pending min-heap keyed by its due time and delivers the earliest pending
interaction each step — one pair in, one pair out, preserving the engines'
one-interaction-per-step contract while reordering delivery.
"""

from __future__ import annotations

import heapq
from typing import List, Tuple

import numpy as np

from ..core.rng import RandomState
from ..core.scheduler import PairScheduler
from .topology import Topology

__all__ = ["TopologyScheduler", "DirectPairStream", "DelayedPairStream"]


class DirectPairStream:
    """Stateless stream: chunks come straight from the topology sampler."""

    def __init__(self, topology: Topology):
        self._topology = topology

    def sample_chunk(self, rng: np.random.Generator, count: int) -> np.ndarray:
        return self._topology.sample_pairs(rng, count)


class DelayedPairStream:
    """Pending-interaction queue with seed-derived delivery delays.

    Per chunk the stream draws ``count`` base pairs, then ``count`` delays
    (one ``rng.random`` call — see ``DELAY_DISTRIBUTIONS``), then for each
    step pushes ``(now + delay, arrival_seq, pair)`` onto a min-heap and
    pops the earliest due entry (FIFO among ties).  Exactly one pair is
    delivered per step, so downstream engines are oblivious to the
    asynchrony; the heap carries pending interactions across chunk
    boundaries and is part of the stream's identity-relevant state.
    """

    def __init__(self, base_stream, delay_fn):
        self._base = base_stream
        self._delay_fn = delay_fn
        self._heap: List[Tuple[int, int, int, int]] = []
        self._clock = 0
        self._seq = 0

    def sample_chunk(self, rng: np.random.Generator, count: int) -> np.ndarray:
        pairs = self._base.sample_chunk(rng, count)
        delays = self._delay_fn(rng, count)
        out = np.empty((count, 2), dtype=np.int64)
        heap = self._heap
        for k in range(count):
            heapq.heappush(
                heap,
                (
                    self._clock + int(delays[k]),
                    self._seq,
                    int(pairs[k, 0]),
                    int(pairs[k, 1]),
                ),
            )
            self._seq += 1
            _, _, initiator, responder = heapq.heappop(heap)
            out[k, 0] = initiator
            out[k, 1] = responder
            self._clock += 1
        return out

    @property
    def pending(self) -> int:
        """Number of scheduled-but-undelivered interactions."""
        return len(self._heap)


class TopologyScheduler(PairScheduler):
    """Samples ordered pairs restricted to (and weighted by) a topology.

    Parameters mirror :class:`~repro.core.scheduler.UniformPairScheduler`
    with the population size replaced by a :class:`Topology`.  On the
    ``complete`` family this scheduler draws the exact generator call
    pattern of the uniform scheduler, so the two are bit-identical.
    """

    def __init__(
        self,
        topology: Topology,
        random_state: RandomState = None,
        chunk_size: int = 4096,
    ):
        super().__init__(topology.n, random_state, chunk_size)
        self._topology = topology
        self._stream = topology.stream()

    @property
    def topology(self) -> Topology:
        """The immutable topology this scheduler samples from."""
        return self._topology

    def sample_chunk(self, count: int) -> np.ndarray:
        """``count`` ordered pairs along directed edge slots of the graph."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        return self._stream.sample_chunk(self._rng, count)
