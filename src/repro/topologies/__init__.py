"""Interaction-topology subsystem: graph-restricted and async schedulers.

See :mod:`repro.topologies.topology` for the family registry and the
determinism contract, and :mod:`repro.topologies.scheduler` for the
``sample_chunk``-compatible scheduler the engines consume.
"""

from .sampling import AliasSampler, build_csr, connected_components
from .scheduler import DelayedPairStream, DirectPairStream, TopologyScheduler
from .topology import (
    DELAY_DISTRIBUTIONS,
    CompleteTopology,
    DelayedTopology,
    ErdosRenyiTopology,
    Grid2dTopology,
    PowerLawTopology,
    RandomRegularTopology,
    RingTopology,
    Topology,
    build_topology,
    describe_topology,
    get_topology,
    register_topology,
    topology_names,
)

__all__ = [
    "AliasSampler",
    "build_csr",
    "connected_components",
    "TopologyScheduler",
    "DirectPairStream",
    "DelayedPairStream",
    "Topology",
    "CompleteTopology",
    "RingTopology",
    "Grid2dTopology",
    "RandomRegularTopology",
    "ErdosRenyiTopology",
    "PowerLawTopology",
    "DelayedTopology",
    "DELAY_DISTRIBUTIONS",
    "register_topology",
    "get_topology",
    "topology_names",
    "build_topology",
    "describe_topology",
]
