"""Interaction topologies: named graph families with weighted pair sampling.

The paper's model runs the uniform random scheduler on the *complete*
interaction graph.  A :class:`Topology` restricts which ordered pairs the
scheduler may deliver: each step samples a directed edge *slot* uniformly at
random, so a pair's probability is proportional to its slot weight (its
multiplicity for multigraphs).  Two representations keep that cheap:

* **implicit** families (``complete``, ``ring``, ``grid2d``) sample slots
  arithmetically — a uniform agent plus a uniform direction — and never
  materialize an edge list;
* **CSR** families (``random_regular``, ``erdos_renyi``, ``power_law``)
  build a seed-derived edge multiset once, store it as CSR adjacency, and
  sample a degree-weighted initiator (alias method) followed by a uniform
  neighbor slot — exactly the uniform distribution over directed stubs.

The async ``delayed`` wrapper composes on top of any base family: every
sampled interaction is pushed onto a pending queue with a seed-derived
delay and delivered when it is the earliest due, modelling message latency
while preserving the one-pair-per-step engine contract.

Determinism contract
--------------------
Construction is a pure function of ``(family, n, params)``: random families
derive their graph from a dedicated :class:`numpy.random.SeedSequence` whose
entropy is a hash of exactly those coordinates (plus an optional
``graph_seed`` parameter), *never* from the simulation stream.  All seeds of
a study cell therefore share one graph, the graph is identical across
processes, and the topology is part of the cell's identity hash through the
spec's ``topology`` / ``topology_params`` fields.  Sampling draws a fixed
call pattern per chunk (sizes depend only on the requested count), which is
what keeps reference and array engines bit-identical on the same seed.

The registry mirrors :mod:`repro.core.backends` and
:mod:`repro.scenarios.scenario`: families are looked up by name
(:func:`get_topology`), user code extends the set with
:func:`register_topology`, and registration must happen at import time of a
module that worker processes also import.
"""

from __future__ import annotations

import abc
import hashlib
import json
from typing import Dict, Mapping, Optional, Tuple, Type

import numpy as np

from ..core.errors import ExperimentError
from .sampling import AliasSampler, build_csr, connected_components

__all__ = [
    "Topology",
    "CompleteTopology",
    "RingTopology",
    "Grid2dTopology",
    "RandomRegularTopology",
    "ErdosRenyiTopology",
    "PowerLawTopology",
    "DelayedTopology",
    "register_topology",
    "get_topology",
    "topology_names",
    "build_topology",
    "describe_topology",
    "DELAY_DISTRIBUTIONS",
]


def _graph_rng(family: str, n: int, params: Mapping, graph_seed: int) -> np.random.Generator:
    """Dedicated generator for seed-derived graph construction.

    Entropy is a stable hash of the topology coordinates — independent of
    the simulation seed, identical across processes and Python hash
    randomization.
    """
    canonical = json.dumps(
        {"family": family, "n": n, "params": dict(sorted(params.items())),
         "graph_seed": graph_seed},
        sort_keys=True, default=str,
    )
    digest = hashlib.sha256(canonical.encode()).digest()
    entropy = [int.from_bytes(digest[i:i + 8], "big") for i in range(0, 32, 8)]
    return np.random.default_rng(np.random.SeedSequence(entropy))


class Topology(abc.ABC):
    """An immutable interaction graph with weighted ordered-pair sampling.

    Subclasses set the class attributes and implement
    :meth:`sample_pairs` plus :meth:`pair_distribution`.  Instances hold no
    sampling state — per-run state (buffers, pending-delay queues) lives in
    the scheduler's stream, so one topology object can back many runs.
    """

    #: Registry name of the family (e.g. ``"ring"``).
    family: str = ""
    #: Representation kind: ``"implicit"``, ``"csr"`` or ``"wrapper"``.
    kind: str = "implicit"
    #: One-line description for the operator matrix.
    description: str = ""

    def __init__(self, n: int, **params):
        if n < 2:
            raise ExperimentError(
                f"topology {self.family!r} needs at least 2 agents, got n={n}"
            )
        self._n = int(n)
        self._params: Dict = dict(params)

    @property
    def n(self) -> int:
        """Population size (number of graph nodes)."""
        return self._n

    @property
    def params(self) -> Dict:
        """Canonicalized construction parameters."""
        return dict(self._params)

    @property
    def is_complete(self) -> bool:
        """Whether every ordered pair of distinct agents is possible."""
        return False

    def identity(self) -> Dict:
        """Stable coordinates of this topology (family, n, params)."""
        return {"family": self.family, "n": self._n, "params": self.params}

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def sample_pairs(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """``count`` ordered pairs as an ``(count, 2)`` int64 array.

        Must consume a generator call pattern that depends only on
        ``count`` — this is what makes the pair stream independent of how
        it is chunked *given a fixed chunk size* and keeps engines
        bit-identical.
        """

    @abc.abstractmethod
    def pair_distribution(self) -> Tuple[np.ndarray, np.ndarray]:
        """Exact sampling distribution: ``(pairs, probabilities)``.

        ``pairs`` is a ``(k, 2)`` array of the ordered pairs with positive
        probability; ``probabilities`` sums to 1.  Used by the chi-square
        uniformity tests and the operator matrix, not by the hot path.
        """

    def stream(self):
        """A fresh, stateful pair stream for one run (see scheduler)."""
        from .scheduler import DirectPairStream

        return DirectPairStream(self)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def degree_stats(self) -> Dict[str, float]:
        """Min/mean/max out-slot degree, for the operator matrix."""
        pairs, probs = self.pair_distribution()
        out_degree = np.bincount(pairs[:, 0], minlength=self._n)
        return {
            "pairs": int(len(pairs)),
            "deg_min": int(out_degree.min()),
            "deg_mean": float(out_degree.mean()),
            "deg_max": int(out_degree.max()),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(n={self._n}, params={self._params})"


class CompleteTopology(Topology):
    """Every ordered pair of distinct agents, uniformly — the paper's model."""

    family = "complete"
    kind = "implicit"
    description = "uniform random scheduler on the complete graph (paper model)"

    @property
    def is_complete(self) -> bool:
        return True

    def sample_pairs(self, rng: np.random.Generator, count: int) -> np.ndarray:
        n = self._n
        initiators = rng.integers(0, n, size=count)
        responders = rng.integers(0, n - 1, size=count)
        responders = responders + (responders >= initiators)
        return np.stack([initiators, responders], axis=1)

    def pair_distribution(self) -> Tuple[np.ndarray, np.ndarray]:
        n = self._n
        grid = np.indices((n, n)).reshape(2, -1).T
        pairs = grid[grid[:, 0] != grid[:, 1]]
        probs = np.full(len(pairs), 1.0 / (n * (n - 1)))
        return pairs.astype(np.int64), probs


class _SlotTopology(Topology):
    """Implicit family sampling a uniform agent plus a uniform direction.

    Subclasses provide ``_offsets()`` — the per-direction neighbor map.
    A pair's probability is ``slots / (n · n_dirs)`` where ``slots`` counts
    the directions mapping onto it (e.g. both ring directions reach the
    same neighbor when n == 2).
    """

    def _neighbors(self, nodes: np.ndarray, direction: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    @property
    def _n_directions(self) -> int:
        raise NotImplementedError

    def sample_pairs(self, rng: np.random.Generator, count: int) -> np.ndarray:
        initiators = rng.integers(0, self._n, size=count)
        direction = rng.integers(0, self._n_directions, size=count)
        responders = self._neighbors(initiators, direction)
        return np.stack([initiators, responders], axis=1)

    def pair_distribution(self) -> Tuple[np.ndarray, np.ndarray]:
        nodes = np.arange(self._n, dtype=np.int64)
        weights: Dict[Tuple[int, int], int] = {}
        for d in range(self._n_directions):
            direction = np.full(self._n, d, dtype=np.int64)
            responders = self._neighbors(nodes, direction)
            for i, j in zip(nodes.tolist(), responders.tolist()):
                weights[(i, j)] = weights.get((i, j), 0) + 1
        pairs = np.array(sorted(weights), dtype=np.int64)
        total = self._n * self._n_directions
        probs = np.array([weights[tuple(p)] for p in pairs.tolist()]) / total
        return pairs, probs


class RingTopology(_SlotTopology):
    """Directed cycle neighbors in both directions (Herman-style ring)."""

    family = "ring"
    kind = "implicit"
    description = "cycle graph; each agent talks to its two ring neighbors"

    def __init__(self, n: int, **params):
        super().__init__(n, **params)
        if params:
            raise ExperimentError(
                f"topology 'ring' takes no parameters, got {sorted(params)}"
            )

    @property
    def _n_directions(self) -> int:
        return 2

    def _neighbors(self, nodes: np.ndarray, direction: np.ndarray) -> np.ndarray:
        step = np.where(direction == 1, 1, -1)
        return (nodes + step) % self._n


class Grid2dTopology(_SlotTopology):
    """2-d torus grid; ``rows × cols`` must equal ``n``.

    Defaults to the most square factorization of ``n`` (a prime ``n``
    degenerates to a 1×n torus, i.e. a ring).  Axes of length 1 contribute
    no directions; axes of length 2 reach the same neighbor both ways,
    doubling that edge's slot weight.
    """

    family = "grid2d"
    kind = "implicit"
    description = "2-d torus grid (rows x cols, defaults to most-square split)"

    def __init__(self, n: int, rows: Optional[int] = None, cols: Optional[int] = None, **params):
        if params:
            raise ExperimentError(
                f"topology 'grid2d' accepts rows/cols, got {sorted(params)}"
            )
        if rows is None and cols is None:
            rows = max(d for d in range(1, int(n ** 0.5) + 1) if n % d == 0)
            cols = n // rows
        elif rows is None:
            if n % int(cols) != 0:
                raise ExperimentError(f"cols={cols} does not divide n={n}")
            cols = int(cols)
            rows = n // cols
        elif cols is None:
            if n % int(rows) != 0:
                raise ExperimentError(f"rows={rows} does not divide n={n}")
            rows = int(rows)
            cols = n // rows
        else:
            rows, cols = int(rows), int(cols)
        if rows * cols != n or rows < 1 or cols < 1:
            raise ExperimentError(
                f"grid2d needs rows*cols == n, got {rows}x{cols} != {n}"
            )
        super().__init__(n, rows=rows, cols=cols)
        self._rows, self._cols = rows, cols
        axes = []
        if rows > 1:
            axes.extend([(-1, 0), (1, 0)])
        if cols > 1:
            axes.extend([(0, -1), (0, 1)])
        if not axes:
            raise ExperimentError(f"grid2d 1x1 has no edges (n={n})")
        self._dr = np.array([a[0] for a in axes], dtype=np.int64)
        self._dc = np.array([a[1] for a in axes], dtype=np.int64)

    @property
    def _n_directions(self) -> int:
        return len(self._dr)

    def _neighbors(self, nodes: np.ndarray, direction: np.ndarray) -> np.ndarray:
        r, c = nodes // self._cols, nodes % self._cols
        r = (r + self._dr[direction]) % self._rows
        c = (c + self._dc[direction]) % self._cols
        return r * self._cols + c


class CSRTopology(Topology):
    """Arbitrary-graph family: CSR adjacency + alias-method sampling.

    Subclasses implement :meth:`_build_edges` returning the undirected edge
    multiset (drawn only from the dedicated graph generator).  Sampling
    picks an initiator proportionally to degree (alias method over stub
    counts) and then a uniform neighbor slot — the uniform distribution
    over directed stubs, so a multi-edge's weight is its multiplicity.
    """

    kind = "csr"

    def __init__(self, n: int, graph_seed: int = 0, **params):
        super().__init__(n, graph_seed=int(graph_seed), **params)
        rng = _graph_rng(self.family, n, dict(sorted(params.items())), int(graph_seed))
        edges = np.asarray(self._build_edges(rng), dtype=np.int64)
        if len(edges) == 0:
            raise ExperimentError(f"topology {self.family!r} produced no edges")
        self._indptr, self._indices, self._degrees = build_csr(n, edges)
        if np.any(self._degrees == 0):
            raise ExperimentError(
                f"topology {self.family!r} left isolated agents; "
                "construction must connect every node"
            )
        self._alias = AliasSampler(self._degrees.astype(np.float64))
        self._n_stubs = int(self._degrees.sum())

    def _build_edges(self, rng: np.random.Generator) -> np.ndarray:
        raise NotImplementedError

    @property
    def degrees(self) -> np.ndarray:
        return self._degrees.copy()

    @property
    def csr(self) -> Tuple[np.ndarray, np.ndarray]:
        return self._indptr.copy(), self._indices.copy()

    def sample_pairs(self, rng: np.random.Generator, count: int) -> np.ndarray:
        initiators = self._alias.sample(rng, count)
        u = rng.random(count)
        offsets = (u * self._degrees[initiators]).astype(np.int64)
        responders = self._indices[self._indptr[initiators] + offsets]
        return np.stack([initiators, responders], axis=1)

    def pair_distribution(self) -> Tuple[np.ndarray, np.ndarray]:
        weights: Dict[Tuple[int, int], int] = {}
        for i in range(self._n):
            for j in self._indices[self._indptr[i]:self._indptr[i + 1]].tolist():
                weights[(i, j)] = weights.get((i, j), 0) + 1
        pairs = np.array(sorted(weights), dtype=np.int64)
        probs = np.array([weights[tuple(p)] for p in pairs.tolist()]) / self._n_stubs
        return pairs, probs

    @staticmethod
    def _connect(n: int, edges: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Join components with one extra edge each, deterministically.

        Convergence experiments need a connected graph; the repair draws
        from the same graph generator, so it is part of the seed-derived
        construction.
        """
        labels = connected_components(n, edges)
        roots = np.unique(labels)
        if len(roots) == 1:
            return edges
        extra = []
        anchor_component = roots[0]
        anchors = np.flatnonzero(labels == anchor_component)
        for root in roots[1:]:
            members = np.flatnonzero(labels == root)
            a = int(members[rng.integers(0, len(members))])
            b = int(anchors[rng.integers(0, len(anchors))])
            extra.append((a, b))
        return np.concatenate([edges, np.array(extra, dtype=np.int64)])


class RandomRegularTopology(CSRTopology):
    """Random d-regular multigraph: superposed seed-derived Hamiltonian cycles.

    ``degree`` must be even (default 4): the graph is the union of
    ``degree/2`` independent random cycles, so every node has exactly
    ``degree`` stubs and the graph is connected by construction.  Repeated
    edges across cycles keep their multiplicity as sampling weight.
    """

    family = "random_regular"
    description = "random d-regular multigraph (union of degree/2 random cycles)"

    def __init__(self, n: int, degree: int = 4, graph_seed: int = 0):
        degree = int(degree)
        if degree < 2 or degree % 2 != 0:
            raise ExperimentError(
                f"random_regular degree must be a positive even integer, got {degree}"
            )
        self._degree = degree
        super().__init__(n, graph_seed=graph_seed, degree=degree)

    def _build_edges(self, rng: np.random.Generator) -> np.ndarray:
        chunks = []
        for _ in range(self._degree // 2):
            order = rng.permutation(self._n)
            chunks.append(np.stack([order, np.roll(order, -1)], axis=1))
        return np.concatenate(chunks)


class ErdosRenyiTopology(CSRTopology):
    """G(n, p) with a connectivity repair.

    ``p`` defaults to ``min(1, 4·ln(n)/n)`` — comfortably above the
    connectivity threshold.  Isolated nodes and stray components are joined
    to the first component with one extra seed-derived edge each (the graph
    would otherwise be useless for convergence measurements).
    """

    family = "erdos_renyi"
    description = "G(n, p) random graph, components joined (p ~ 4 ln n / n)"

    def __init__(self, n: int, p: Optional[float] = None, graph_seed: int = 0):
        if p is None:
            p = min(1.0, 4.0 * float(np.log(max(n, 2))) / n)
        p = float(p)
        if not 0.0 < p <= 1.0:
            raise ExperimentError(f"erdos_renyi p must be in (0, 1], got {p}")
        self._p = p
        super().__init__(n, graph_seed=graph_seed, p=p)

    def _build_edges(self, rng: np.random.Generator) -> np.ndarray:
        n = self._n
        rows, cols = np.triu_indices(n, k=1)
        mask = rng.random(len(rows)) < self._p
        edges = np.stack([rows[mask], cols[mask]], axis=1).astype(np.int64)
        if len(edges) == 0:
            edges = np.empty((0, 2), dtype=np.int64)
        return self._connect(n, edges, rng)


class PowerLawTopology(CSRTopology):
    """Barabási–Albert preferential attachment (power-law degrees).

    Starts from a clique on ``m + 1`` nodes; each later node attaches to
    ``m`` distinct existing nodes sampled proportionally to degree.
    Connected by construction.  Requires ``n > m >= 1`` (default m=2).
    """

    family = "power_law"
    description = "Barabasi-Albert preferential attachment (m edges per node)"

    def __init__(self, n: int, m: int = 2, graph_seed: int = 0):
        m = int(m)
        if m < 1:
            raise ExperimentError(f"power_law m must be >= 1, got {m}")
        if n <= m:
            raise ExperimentError(f"power_law needs n > m, got n={n}, m={m}")
        self._m = m
        super().__init__(n, graph_seed=graph_seed, m=m)

    def _build_edges(self, rng: np.random.Generator) -> np.ndarray:
        n, m = self._n, self._m
        edges = []
        stubs = []  # one entry per stub: preferential attachment weight
        core = min(m + 1, n)
        for i in range(core):
            for j in range(i + 1, core):
                edges.append((i, j))
                stubs.extend((i, j))
        for node in range(core, n):
            targets: set = set()
            while len(targets) < m:
                pick = int(stubs[int(rng.integers(0, len(stubs)))])
                targets.add(pick)
            for target in sorted(targets):
                edges.append((node, target))
                stubs.extend((node, target))
        return np.array(edges, dtype=np.int64)


# ----------------------------------------------------------------------
# Delay distributions for the async wrapper
# ----------------------------------------------------------------------
def _geometric_delay(mean: float = 4.0):
    mean = float(mean)
    if mean < 0:
        raise ExperimentError(f"geometric delay mean must be >= 0, got {mean}")
    if mean == 0:
        return lambda rng, count: (rng.random(count) * 0).astype(np.int64)
    p = 1.0 / (1.0 + mean)
    log1mp = float(np.log1p(-p))

    def draw(rng: np.random.Generator, count: int) -> np.ndarray:
        u = rng.random(count)
        # log1p(-u) is finite for u in [0, 1), so no overflow at u == 0.
        return np.floor(np.log1p(-u) / log1mp).astype(np.int64)

    return draw


def _fixed_delay(delay: int = 4):
    delay = int(delay)
    if delay < 0:
        raise ExperimentError(f"fixed delay must be >= 0, got {delay}")

    def draw(rng: np.random.Generator, count: int) -> np.ndarray:
        # Consume the same call pattern as the random distributions so
        # swapping distributions never silently shifts the base stream.
        rng.random(count)
        return np.full(count, delay, dtype=np.int64)

    return draw


def _uniform_delay(low: int = 0, high: int = 8):
    low, high = int(low), int(high)
    if not 0 <= low <= high:
        raise ExperimentError(f"uniform delay needs 0 <= low <= high, got [{low}, {high}]")

    def draw(rng: np.random.Generator, count: int) -> np.ndarray:
        u = rng.random(count)
        return (low + np.floor(u * (high - low + 1))).astype(np.int64)

    return draw


#: Pluggable delay distributions for the ``delayed`` wrapper.  Each entry is
#: a builder ``(**params) -> (rng, count) -> int64 delays``; every builder's
#: draw function consumes exactly one ``rng.random(count)`` call, so the
#: choice of distribution does not perturb the base pair stream.
DELAY_DISTRIBUTIONS = {
    "geometric": _geometric_delay,
    "fixed": _fixed_delay,
    "uniform": _uniform_delay,
}


class DelayedTopology(Topology):
    """Asynchronous wrapper: base-family pairs delivered through a delay queue.

    Each scheduled interaction is pushed onto a pending queue with a
    seed-derived delay drawn from a pluggable distribution and delivered
    when it is the earliest due (FIFO among ties), modelling message
    latency.  The long-run pair distribution equals the base family's —
    delivery is a permutation of the base stream — but bursts and
    reorderings change the trajectory.

    Parameters: ``base`` (family name, default ``"complete"``),
    ``base_params`` (dict), ``delay`` (distribution name, default
    ``"geometric"``), ``delay_params`` (dict, e.g. ``{"mean": 4.0}``).
    """

    family = "delayed"
    kind = "wrapper"
    description = "async wrapper: base family + seed-derived delivery delays"

    def __init__(
        self,
        n: int,
        base: str = "complete",
        base_params: Optional[Mapping] = None,
        delay: str = "geometric",
        delay_params: Optional[Mapping] = None,
        **params,
    ):
        if params:
            raise ExperimentError(
                f"topology 'delayed' accepts base/base_params/delay/"
                f"delay_params, got {sorted(params)}"
            )
        base_params = dict(base_params or {})
        delay_params = dict(delay_params or {})
        if base == "delayed":
            raise ExperimentError("delayed topologies cannot nest")
        if delay not in DELAY_DISTRIBUTIONS:
            raise ExperimentError(
                f"unknown delay distribution {delay!r}; "
                f"choose from {sorted(DELAY_DISTRIBUTIONS)}"
            )
        super().__init__(
            n, base=base, base_params=base_params,
            delay=delay, delay_params=delay_params,
        )
        self._base = build_topology(base, n, base_params)
        self._delay_name = delay
        self._delay_fn = DELAY_DISTRIBUTIONS[delay](**delay_params)

    @property
    def base(self) -> Topology:
        return self._base

    @property
    def delay_fn(self):
        return self._delay_fn

    @property
    def is_complete(self) -> bool:
        # Reachability matches the base graph, but delivery is asynchronous:
        # aggregate/group engines must still refuse it.
        return False

    def sample_pairs(self, rng: np.random.Generator, count: int) -> np.ndarray:
        raise ExperimentError(
            "delayed topologies are stateful; sample through stream()"
        )

    def pair_distribution(self) -> Tuple[np.ndarray, np.ndarray]:
        return self._base.pair_distribution()

    def stream(self):
        from .scheduler import DelayedPairStream

        return DelayedPairStream(self._base.stream(), self._delay_fn)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, Type[Topology]] = {}
_CACHE: Dict[str, Topology] = {}


def register_topology(cls: Type[Topology]) -> Type[Topology]:
    """Register a topology family class under ``cls.family``.

    Like the backend and scenario registries, registration must happen at
    import time of a module worker processes also import, or parallel
    studies will not find the family.
    """
    if not cls.family:
        raise ExperimentError(f"{cls.__name__} must set a non-empty family name")
    _REGISTRY[cls.family] = cls
    return cls


def get_topology(name: str) -> Type[Topology]:
    """Look up a topology family class by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ExperimentError(
            f"unknown topology {name!r}; choose from {topology_names()}"
        ) from None


def topology_names() -> Tuple[str, ...]:
    """Registered family names, in registration order."""
    return tuple(_REGISTRY)


def _cache_key(name: str, n: int, params: Mapping) -> str:
    return json.dumps(
        {"family": name, "n": n, "params": dict(sorted(params.items()))},
        sort_keys=True, default=str,
    )


def build_topology(name: str, n: int, params: Optional[Mapping] = None) -> Topology:
    """Construct (or fetch from the process-local cache) one topology.

    Construction is deterministic in ``(name, n, params)``, so caching is
    purely an optimization: random families build their graph once per
    process and share it across every seed of a cell.
    """
    params = dict(params or {})
    key = _cache_key(name, n, params)
    cached = _CACHE.get(key)
    if cached is None:
        cached = get_topology(name)(n, **params)
        _CACHE[key] = cached
    return cached


def describe_topology(name: str, n: int, params: Optional[Mapping] = None) -> Dict:
    """Family facts + degree stats at size ``n``, for the operator matrix."""
    cls = get_topology(name)
    topology = build_topology(name, n, params)
    stats = topology.degree_stats()
    return {
        "family": name,
        "kind": cls.kind,
        "description": cls.description,
        "n": n,
        **stats,
    }


for _cls in (
    CompleteTopology,
    RingTopology,
    Grid2dTopology,
    RandomRegularTopology,
    ErdosRenyiTopology,
    PowerLawTopology,
    DelayedTopology,
):
    register_topology(_cls)
