"""Compact edge-set representations and weighted samplers.

Two primitives back the arbitrary-graph topology families:

* :func:`build_csr` — a CSR (compressed sparse row) adjacency built from an
  undirected edge multiset.  Multi-edges are kept: a repeated edge appears
  twice in its endpoints' neighbor slices, which makes its sampling weight
  proportional to its multiplicity with no extra bookkeeping.
* :class:`AliasSampler` — Vose's alias method for O(1) draws from a fixed
  discrete distribution.  The topology scheduler uses it to pick interaction
  *initiators* proportionally to degree; combined with a uniform neighbor
  slot this yields the uniform distribution over directed edge slots
  (probability ``1 / (2·m)`` per stub for a graph with ``m`` undirected
  edges).

Both are deterministic functions of their inputs — construction draws no
randomness — so a topology built from a seed-derived edge list is fully
reproducible across processes.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["AliasSampler", "build_csr", "connected_components"]


class AliasSampler:
    """O(1) sampling from a fixed discrete distribution (Vose's method).

    Parameters
    ----------
    weights:
        Non-negative weights, at least one positive.  Normalized internally.
    """

    def __init__(self, weights: np.ndarray):
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 1 or len(weights) == 0:
            raise ValueError("weights must be a non-empty 1-d array")
        if np.any(weights < 0):
            raise ValueError("weights must be non-negative")
        total = float(weights.sum())
        if total <= 0:
            raise ValueError("weights must have positive sum")
        k = len(weights)
        scaled = weights * (k / total)
        prob = np.ones(k, dtype=np.float64)
        alias = np.arange(k, dtype=np.int64)
        small = [i for i in range(k) if scaled[i] < 1.0]
        large = [i for i in range(k) if scaled[i] >= 1.0]
        while small and large:
            lo = small.pop()
            hi = large.pop()
            prob[lo] = scaled[lo]
            alias[lo] = hi
            scaled[hi] = (scaled[hi] + scaled[lo]) - 1.0
            if scaled[hi] < 1.0:
                small.append(hi)
            else:
                large.append(hi)
        # Whatever remains is 1.0 up to float error; keep prob == 1 for it.
        self._prob = prob
        self._alias = alias
        self._k = k

    def __len__(self) -> int:
        return self._k

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Draw ``count`` indices; consumes one ``integers`` and one
        ``random`` call of size ``count`` regardless of the weights."""
        idx = rng.integers(0, self._k, size=count)
        u = rng.random(count)
        return np.where(u < self._prob[idx], idx, self._alias[idx])


def build_csr(
    n: int, edges: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """CSR adjacency ``(indptr, indices, degrees)`` from undirected edges.

    ``edges`` is an ``(m, 2)`` integer array of undirected edges (multi-edges
    allowed, self-loops rejected).  Each edge contributes a stub in both
    directions.  Neighbor slices are sorted, so the CSR layout is a canonical
    function of the edge *multiset* — the order edges were generated in does
    not leak into the sampling stream.
    """
    edges = np.asarray(edges, dtype=np.int64)
    if edges.ndim != 2 or edges.shape[1] != 2:
        raise ValueError(f"edges must be an (m, 2) array, got {edges.shape}")
    if len(edges) and (edges.min() < 0 or edges.max() >= n):
        raise ValueError("edge endpoints out of range")
    if np.any(edges[:, 0] == edges[:, 1]):
        raise ValueError("self-loops are not allowed")
    stubs_from = np.concatenate([edges[:, 0], edges[:, 1]])
    stubs_to = np.concatenate([edges[:, 1], edges[:, 0]])
    order = np.lexsort((stubs_to, stubs_from))
    stubs_from = stubs_from[order]
    stubs_to = stubs_to[order]
    degrees = np.bincount(stubs_from, minlength=n).astype(np.int64)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(degrees, out=indptr[1:])
    return indptr, stubs_to.astype(np.int64), degrees


def connected_components(n: int, edges: np.ndarray) -> np.ndarray:
    """Component label per node (union-find), labels are component minima."""
    parent = np.arange(n, dtype=np.int64)

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, int(parent[x])
        return root

    for a, b in np.asarray(edges, dtype=np.int64):
        ra, rb = find(int(a)), find(int(b))
        if ra != rb:
            if ra < rb:
                parent[rb] = ra
            else:
                parent[ra] = rb
    labels = np.array([find(i) for i in range(n)], dtype=np.int64)
    return labels
