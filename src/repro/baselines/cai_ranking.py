"""Cai–Izumi–Wada-style ``n``-state self-stabilizing ranking baseline.

Cai, Izumi and Wada [21] show that silent self-stabilizing leader election
is possible with exactly ``n`` states and ``O(n³)`` interactions w.h.p., and
that ``n`` states are necessary.  Their protocol is the classic
collision-increment rule on labels: every agent always holds a label in
``{1, …, n}``; when two agents with the *same* label interact, the responder
moves to the cyclically next label.  Once all labels are distinct — a
configuration the random walk on label multisets reaches in ``O(n³)``
interactions in expectation — no interaction changes any state, so the
protocol is silent, the labels form a ranking, and the agent with label 1 is
the leader.

This baseline is the "zero overhead states, cubic time" corner of the
state/time trade-off that the paper improves on (``n + O(log² n)`` states,
``O(n² log n)`` interactions).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.configuration import Configuration
from ..core.protocol import RankingProtocol, TransitionResult

__all__ = ["CaiState", "CaiRanking", "CaiStyleRanking"]


@dataclass(slots=True)
class CaiState:
    """State of one agent: nothing but a label in ``{1, …, n}``."""

    rank: int

    def copy(self) -> "CaiState":
        return CaiState(self.rank)


class CaiRanking(RankingProtocol[CaiState]):
    """Collision-increment ranking with exactly ``n`` states.

    The designated initial configuration assigns label 1 to every agent
    (the worst case); because the protocol is self-stabilizing, experiments
    may start it from any label assignment.
    """

    name = "cai-ranking"

    def initial_state(self) -> CaiState:
        return CaiState(rank=1)

    def transition(
        self,
        initiator: CaiState,
        responder: CaiState,
        rng: np.random.Generator,
    ) -> TransitionResult:
        if initiator.rank == responder.rank:
            responder.rank = responder.rank % self.n + 1
            return TransitionResult(
                changed=True, rank_assigned=responder.rank, label="collision"
            )
        return TransitionResult(changed=False)

    # ------------------------------------------------------------------
    # Array-engine capability declarations
    # ------------------------------------------------------------------
    def consumes_randomness(self) -> bool:
        """``False``: the collision-increment rule never draws randomness."""
        return False

    def codec_fields(self):
        return ("rank",)

    def seed_states(self):
        """The complete concrete state space: one state per label.

        Lets the array engine compile *complete* dense tables (for small
        ``n``) that cover every self-stabilization start, not just the
        closure of the all-ones designated configuration.
        """
        return [CaiState(rank=label) for label in range(1, self.n + 1)]

    def has_converged(self, configuration: Configuration[CaiState]) -> bool:
        return configuration.is_valid_ranking()

    def is_silent(self, configuration: Configuration[CaiState]) -> bool:
        """All labels distinct — equivalent to convergence for this protocol."""
        ranks = configuration.ranks()
        return len(set(ranks)) == len(ranks)

    def state_space_size(self) -> int:
        return self.n

    def overhead_states(self) -> int:
        """The protocol uses no states beyond the ``n`` labels."""
        return 0


#: Alias matching the naming of the other baselines (``BurmanStyleRanking``).
CaiStyleRanking = CaiRanking
