"""Burman-et-al.-style self-stabilizing ranking with ``Θ(n)`` overhead states.

Burman et al. [20] give a silent self-stabilizing leader-election protocol
(via ranking) that stabilizes in ``O(n² log n)`` interactions w.h.p. — the
same, optimal, time as the paper — but uses ``O(n)`` states *in addition* to
the ``n`` rank states, because the agent distributing the ranks keeps an
explicit "next rank to assign" counter alongside its own role.  The paper's
contribution is to shrink exactly this overhead to ``O(log² n)``.

This module implements that design point at the level of detail needed for
the comparison experiments (DESIGN.md, substitution 5).  It reuses the same
substrates as ``StableRanking`` (``PropagateReset``, ``FastLeaderElection``)
and differs only in the main protocol:

* the elected leader takes rank 1 and additionally carries a counter
  ``aux ∈ {2, …, n+1}`` holding the next rank to hand out — this is the
  ``Θ(n)`` state overhead;
* unranked agents carry a coin and a liveness counter, as in ``Ranking+``;
* errors (duplicate ranks, two counter-carrying leaders, liveness expiry)
  trigger a ``PropagateReset`` exactly as in the paper's protocol.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..core.configuration import Configuration
from ..core.protocol import RankingProtocol, TransitionResult
from ..core.state import AgentState
from ..protocols.leader_election.fast_leader_election import (
    FastLeaderElection,
    default_l_max,
)
from ..protocols.reset.propagate_reset import PropagateReset, default_reset_depths

__all__ = ["BurmanStyleRanking"]


class BurmanStyleRanking(RankingProtocol[AgentState]):
    """Self-stabilizing ranking whose leader remembers the next rank.

    Parameters mirror :class:`~repro.protocols.ranking.stable_ranking.StableRanking`
    where applicable.
    """

    name = "burman-style-ranking"

    def __init__(
        self,
        n: int,
        c_live: float = 4.0,
        l_max: Optional[int] = None,
        r_max: Optional[int] = None,
        d_max: Optional[int] = None,
    ):
        super().__init__(n)
        self._l_max = l_max if l_max is not None else default_l_max(n)
        self._alive_reset = max(1, int(math.ceil(c_live * math.log2(n))))
        default_r, default_d = default_reset_depths(n)
        self._reset = PropagateReset(
            r_max if r_max is not None else default_r,
            d_max if d_max is not None else default_d,
            restart=self._restart_leader_election,
        )
        self._leader_election = FastLeaderElection(
            n,
            l_max=self._l_max,
            on_become_waiting=self._become_counter_leader,
            on_trigger_reset=self._reset.trigger,
        )

    # ------------------------------------------------------------------
    # Sub-protocol wiring
    # ------------------------------------------------------------------
    def _restart_leader_election(self, agent: AgentState) -> None:
        self._leader_election.init_state(agent)

    def _become_counter_leader(self, agent: AgentState) -> None:
        """The elected leader takes rank 1 and starts counting from rank 2."""
        agent.rank = 1
        agent.aux = 2
        agent.coin = None
        agent.alive_count = None

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @property
    def reset(self) -> PropagateReset:
        """The reset sub-protocol."""
        return self._reset

    @property
    def l_max(self) -> int:
        """The liveness / leader-election countdown bound."""
        return self._l_max

    @staticmethod
    def _in_main(state: AgentState) -> bool:
        if state.in_reset or state.in_leader_election:
            return False
        return state.rank is not None or state.alive_count is not None

    @staticmethod
    def _is_counter_leader(state: AgentState) -> bool:
        return state.rank is not None and state.aux is not None

    # ------------------------------------------------------------------
    # PopulationProtocol interface
    # ------------------------------------------------------------------
    def initial_state(self) -> AgentState:
        agent = AgentState(coin=0)
        self._leader_election.init_state(agent)
        return agent

    def transition(
        self,
        initiator: AgentState,
        responder: AgentState,
        rng: np.random.Generator,
    ) -> TransitionResult:
        u, v = initiator, responder
        changed = False
        rank_assigned = None
        triggers_before = self._reset.triggered_count

        if self._reset.applies(u, v):
            changed = self._reset.apply(u, v) or changed

        if u.leader_done is not None and v.leader_done is not None:
            changed = self._leader_election.apply(u, v, rng) or changed

        # A leader-electing agent meeting a main-protocol agent joins as an
        # unranked agent with a fresh liveness counter.
        u_in_le = u.leader_done is not None
        v_in_le = v.leader_done is not None
        if u_in_le != v_in_le:
            le_agent, other = (u, v) if u_in_le else (v, u)
            if self._in_main(other):
                coin = le_agent.coin if le_agent.coin is not None else 0
                le_agent.clear()
                le_agent.coin = coin
                le_agent.alive_count = self._l_max
                changed = True

        if self._in_main(u) and self._in_main(v):
            outcome = self._main_transition(u, v)
            changed = changed or outcome.changed
            rank_assigned = outcome.rank_assigned

        if v.coin is not None:
            v.toggle_coin()
            changed = True

        return TransitionResult(
            changed=changed,
            rank_assigned=rank_assigned,
            reset_triggered=self._reset.triggered_count > triggers_before,
        )

    def _main_transition(self, u: AgentState, v: AgentState) -> TransitionResult:
        """The main ranking rules between two main-state agents."""
        n = self.n

        # Error detection: duplicate ranks or two counter-carrying leaders.
        if u.rank is not None and u.rank == v.rank:
            self._reset.trigger(u)
            return TransitionResult(changed=True, reset_triggered=True)
        if self._is_counter_leader(u) and self._is_counter_leader(v):
            self._reset.trigger(u)
            return TransitionResult(changed=True, reset_triggered=True)

        changed = False

        # Liveness bookkeeping, as in Ranking+ lines 5-11.
        if u.alive_count is not None and v.alive_count is not None:
            new_count = max(0, max(u.alive_count, v.alive_count) - 1)
            if (u.alive_count, v.alive_count) != (new_count, new_count):
                u.alive_count = new_count
                v.alive_count = new_count
                changed = True
        if u.rank in (n - 1, n) and v.alive_count is not None:
            v.alive_count = max(0, v.alive_count - 1)
            changed = True
        if v.alive_count == 0:
            self._reset.trigger(u)
            return TransitionResult(changed=True, reset_triggered=True)

        # The counter-carrying leader assigns the next rank to an unranked agent.
        if self._is_counter_leader(u) and v.rank is None and v.alive_count is not None:
            if u.aux <= n:
                assigned = u.aux
                v.clear()
                v.rank = assigned
                u.aux = assigned + 1
                return TransitionResult(changed=True, rank_assigned=assigned)
            # Counter exhausted but unranked agents remain: inconsistent state.
            self._reset.trigger(u)
            return TransitionResult(changed=True, reset_triggered=True)

        # Replenish the liveness counter of an unranked agent that meets the
        # leader (progress is possible, so the system is alive).
        if self._is_counter_leader(v) and u.alive_count is not None:
            if u.alive_count != self._l_max:
                u.alive_count = self._l_max
                changed = True
        return TransitionResult(changed=changed)

    # ------------------------------------------------------------------
    # Array-engine capability declarations
    # ------------------------------------------------------------------
    def consumes_randomness(self) -> bool:
        """``False``: FastLeaderElection and the ranking rules are
        deterministic functions of the two states (coins are togglings),
        so the array engine tabulates state pairs and runs warm."""
        return False

    def codec_fields(self):
        from ..core.state import AGENT_STATE_FIELDS

        return AGENT_STATE_FIELDS

    def has_converged(self, configuration: Configuration[AgentState]) -> bool:
        """A clean valid ranking in which only the leader keeps its counter."""
        if not configuration.is_valid_ranking():
            return False
        for state in configuration.states:
            if state.in_reset or state.in_leader_election:
                return False
            if state.alive_count is not None or state.phase is not None:
                return False
        return True

    def state_converged(self, state: AgentState) -> bool:
        """Screen: mirrors the per-state clauses of :meth:`has_converged`."""
        return (
            state.rank is not None
            and not state.in_reset
            and not state.in_leader_election
            and state.alive_count is None
            and state.phase is None
        )

    # ------------------------------------------------------------------
    # State accounting
    # ------------------------------------------------------------------
    def overhead_states(self) -> int:
        """``Θ(n)``: the leader's rank-1-with-counter states dominate."""
        counter_states = self.n  # rank 1 combined with a counter in {2, …, n+1}
        reset_states = (self._reset.r_max + 1) * (self._reset.d_max + 1)
        le_states = self._l_max * self._leader_election.coin_count_init * 4
        unranked_states = self._l_max
        return counter_states + 2 * (reset_states + le_states + unranked_states)

    def state_space_size(self) -> int:
        return self.n + self.overhead_states()
