"""Naive non-self-stabilizing baseline: a leader with an explicit counter.

This is the "obvious" way to rank a population once a leader exists and
memory is not a concern: the elected leader takes rank 1, remembers the next
rank to assign in an explicit counter (``Θ(n)`` overhead states) and hands
ranks out one by one — a sequential coupon-collector process that finishes
in ``Θ(n² log n)`` interactions w.h.p.

``SpaceEfficientRanking`` achieves the same running time while replacing the
``Θ(n)``-state counter with the ``Θ(log n)``-state phase/waiting machinery,
which is exactly the comparison this baseline exists for (experiment E5).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.configuration import Configuration
from ..core.protocol import RankingProtocol, TransitionResult
from ..core.state import AgentState
from ..protocols.leader_election.gs_leader_election import GSLeaderElection
from ..protocols.leader_election.interfaces import LeaderElectionModule

__all__ = ["TokenCounterRanking"]


class TokenCounterRanking(RankingProtocol[AgentState]):
    """Leader-with-counter ranking (non-self-stabilizing baseline).

    Parameters
    ----------
    n:
        Population size.
    leader_election:
        Leader-election substrate; defaults to the same GS-style substitute
        used by ``SpaceEfficientRanking`` so the comparison isolates the
        ranking phase.
    """

    name = "token-counter-ranking"

    def __init__(self, n: int, leader_election: Optional[LeaderElectionModule] = None):
        super().__init__(n)
        self._leader_election = leader_election or GSLeaderElection(n)

    def initial_state(self) -> AgentState:
        agent = AgentState()
        self._leader_election.init_state(agent)
        return agent

    def transition(
        self,
        initiator: AgentState,
        responder: AgentState,
        rng: np.random.Generator,
    ) -> TransitionResult:
        u, v = initiator, responder
        changed = False

        # Leader election among agents that have not finished it yet.
        if u.in_leader_election and v.in_leader_election:
            changed = self._leader_election.apply(u, v, rng) or changed

        # The elected leader takes rank 1 and starts the counter at 2.
        for agent in (u, v):
            if agent.is_leader == 1 and agent.leader_done == 1:
                agent.clear_leader_election()
                agent.rank = 1
                agent.aux = 2
                return TransitionResult(changed=True, rank_assigned=1)

        # A leader-electing agent meeting a non-electing agent learns that the
        # ranking has started and becomes a plain unranked agent.
        if u.in_leader_election != v.in_leader_election:
            joining = u if u.in_leader_election else v
            joining.clear_leader_election()
            changed = True

        # The counter-carrying leader assigns the next rank to an unranked agent.
        if (
            u.rank is not None
            and u.aux is not None
            and u.aux <= self.n
            and not v.in_leader_election
            and v.rank is None
        ):
            assigned = u.aux
            v.rank = assigned
            u.aux = assigned + 1
            return TransitionResult(changed=True, rank_assigned=assigned)
        return TransitionResult(changed=changed)

    # ------------------------------------------------------------------
    # Array-engine capability declarations
    # ------------------------------------------------------------------
    def consumes_randomness(self) -> bool:
        """``True``: the GS-style leader-election substrate draws random
        tags, so state pairs cannot be tabulated — the array engine runs
        this protocol on its (still bit-exact) object fallback path, and
        the ``auto`` resolver prefers the reference simulator."""
        return True

    def codec_fields(self):
        from ..core.state import AGENT_STATE_FIELDS

        return AGENT_STATE_FIELDS

    def has_converged(self, configuration: Configuration[AgentState]) -> bool:
        return configuration.is_valid_ranking()

    # ------------------------------------------------------------------
    # State accounting
    # ------------------------------------------------------------------
    def overhead_states(self) -> int:
        """``Θ(n)``: the leader's rank-1-with-counter states."""
        return self.n + 2  # counter values 2 … n+1, plus the blank unranked state

    def state_space_size(self) -> int:
        return self.n + self.overhead_states()
