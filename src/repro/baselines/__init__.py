"""Baseline ranking protocols used by the comparison experiments (E5)."""

from .burman_ranking import BurmanStyleRanking
from .cai_ranking import CaiRanking, CaiState, CaiStyleRanking
from .token_counter_ranking import TokenCounterRanking

__all__ = [
    "BurmanStyleRanking",
    "CaiRanking",
    "CaiState",
    "CaiStyleRanking",
    "TokenCounterRanking",
]
