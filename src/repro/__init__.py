"""repro — Silent Self-Stabilizing Ranking for population protocols.

A from-scratch Python reproduction of

    Berenbrink, Elsässer, Götte, Hintze, Kaaser:
    "Silent Self-Stabilizing Ranking: Time Optimal and Space Efficient",
    ICDCS 2025 (arXiv:2504.10417).

The public API re-exports the most commonly used pieces:

* the simulation core (:class:`Simulator`, :class:`Configuration`, …),
* the paper's protocols (:class:`SpaceEfficientRanking`,
  :class:`StableRanking`) and their substrates,
* the baselines and the experiment layer for the paper's figures: the
  declarative study API (:class:`ExperimentSpec`, :class:`Study`,
  :class:`ResultSet`) behind the ``python -m repro`` command line.

See ``README.md`` for a quickstart, ``docs/experiments.md`` for the study
API and CLI cookbook, and ``DESIGN.md`` for the system inventory and the
per-experiment index.
"""

from .core import (
    AgentState,
    ArraySimulator,
    Configuration,
    EngineCache,
    MetricsCollector,
    PopulationProtocol,
    RankingProtocol,
    Role,
    SimulationResult,
    Simulator,
    StateCodec,
    TransitionResult,
    classify_role,
    make_rng,
    make_simulator,
    standard_ranking_probes,
)
from .protocols.leader_election import (
    FastLeaderElection,
    FastLeaderElectionProtocol,
    GSLeaderElection,
    GSLeaderElectionProtocol,
)
from .protocols.ranking import (
    AggregateSpaceEfficientRanking,
    PhaseSchedule,
    RankingPlus,
    RankingRules,
    SpaceEfficientRanking,
    StableRanking,
)
from .protocols.reset import PropagateReset, PropagateResetProtocol
from .scenarios import (
    Scenario,
    ScheduledEvent,
    get_scenario,
    register_scenario,
    scenario_names,
)
from .experiments.store import ResultStore
from .experiments.study import ExperimentSpec, ResultSet, RunRow, Study

__version__ = "1.8.0"

__all__ = [
    "AgentState",
    "AggregateSpaceEfficientRanking",
    "ArraySimulator",
    "Configuration",
    "EngineCache",
    "ExperimentSpec",
    "FastLeaderElection",
    "FastLeaderElectionProtocol",
    "GSLeaderElection",
    "GSLeaderElectionProtocol",
    "MetricsCollector",
    "PhaseSchedule",
    "PopulationProtocol",
    "PropagateReset",
    "PropagateResetProtocol",
    "RankingPlus",
    "RankingProtocol",
    "RankingRules",
    "ResultSet",
    "ResultStore",
    "Role",
    "RunRow",
    "Scenario",
    "ScheduledEvent",
    "SimulationResult",
    "Simulator",
    "SpaceEfficientRanking",
    "StableRanking",
    "StateCodec",
    "Study",
    "TransitionResult",
    "classify_role",
    "get_scenario",
    "make_rng",
    "make_simulator",
    "register_scenario",
    "scenario_names",
    "standard_ranking_probes",
    "__version__",
]
