"""repro — Silent Self-Stabilizing Ranking for population protocols.

A from-scratch Python reproduction of

    Berenbrink, Elsässer, Götte, Hintze, Kaaser:
    "Silent Self-Stabilizing Ranking: Time Optimal and Space Efficient",
    ICDCS 2025 (arXiv:2504.10417).

The public API re-exports the most commonly used pieces:

* the simulation core (:class:`Simulator`, :class:`Configuration`, …),
* the paper's protocols (:class:`SpaceEfficientRanking`,
  :class:`StableRanking`) and their substrates,
* the baselines and the experiment drivers for the paper's figures.

See ``README.md`` for a quickstart and ``DESIGN.md`` for the system
inventory and the per-experiment index.
"""

from .core import (
    AgentState,
    ArraySimulator,
    Configuration,
    EngineCache,
    MetricsCollector,
    PopulationProtocol,
    RankingProtocol,
    Role,
    SimulationResult,
    Simulator,
    StateCodec,
    TransitionResult,
    classify_role,
    make_rng,
    make_simulator,
    standard_ranking_probes,
)
from .protocols.leader_election import (
    FastLeaderElection,
    FastLeaderElectionProtocol,
    GSLeaderElection,
    GSLeaderElectionProtocol,
)
from .protocols.ranking import (
    AggregateSpaceEfficientRanking,
    PhaseSchedule,
    RankingPlus,
    RankingRules,
    SpaceEfficientRanking,
    StableRanking,
)
from .protocols.reset import PropagateReset, PropagateResetProtocol

__version__ = "1.0.0"

__all__ = [
    "AgentState",
    "AggregateSpaceEfficientRanking",
    "ArraySimulator",
    "Configuration",
    "EngineCache",
    "FastLeaderElection",
    "FastLeaderElectionProtocol",
    "GSLeaderElection",
    "GSLeaderElectionProtocol",
    "MetricsCollector",
    "PhaseSchedule",
    "PopulationProtocol",
    "PropagateReset",
    "PropagateResetProtocol",
    "RankingPlus",
    "RankingProtocol",
    "RankingRules",
    "Role",
    "SimulationResult",
    "Simulator",
    "SpaceEfficientRanking",
    "StableRanking",
    "StateCodec",
    "TransitionResult",
    "classify_role",
    "make_rng",
    "make_simulator",
    "standard_ranking_probes",
    "__version__",
]
