"""``repro worker`` — drain one study's job queue from any process.

A worker is the scale-out unit of the serving subsystem: point any number
of them (processes, hosts sharing a filesystem) at one study directory
and they cooperatively drain its queue.  Each iteration re-reads the
store's union view, claims the first pending job whose lease it wins,
executes the unit through exactly the same code path as ``Study.run``
(:func:`repro.experiments.parallel.execute_unit`), appends the rows to
its private shard — fsynced *before* the lease is released, so a freed
job implies durable rows — and moves on.  A heartbeat thread keeps the
lease fresh during long cells; if the worker dies instead, the lease goes
stale and another worker reclaims the job, re-running it to the same
bytes (cells are deterministic in their coordinates).
"""

from __future__ import annotations

import os
import threading
import time
from pathlib import Path
from typing import Callable, Optional

from ..core.errors import ExperimentError
from ..core.table_store import ENV_VAR as _TABLE_CACHE_ENV
from ..experiments.parallel import execute_unit
from .queue import JobQueue
from .store import ShardedResultStore

__all__ = ["run_worker"]


class _Heartbeat:
    """Daemon thread touching a lease's mtime at a fixed cadence."""

    def __init__(self, lease, interval: float):
        self._lease = lease
        self._interval = max(0.05, interval)
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            self._lease.heartbeat()

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)


def run_worker(
    study_dir,
    lease_timeout: float = 60.0,
    poll: float = 0.5,
    max_jobs: Optional[int] = None,
    follow: bool = False,
    worker_id: Optional[str] = None,
    fsync: bool = True,
    progress: Optional[Callable[[str], None]] = None,
) -> int:
    """Drain the study's queue; returns the number of jobs completed.

    Parameters
    ----------
    study_dir:
        The study directory (``<name>-<hash12>``), as created by
        ``Study``/``repro serve`` and printed by submission.
    lease_timeout:
        Seconds without a heartbeat before another worker may break a
        claim.  Heartbeats fire every quarter of this.
    poll:
        Sleep between queue scans when every pending job is leased by
        someone else (or, with ``follow``, when the queue is empty).
    max_jobs:
        Stop after this many completed jobs (``None`` = unlimited).
    follow:
        Keep polling for new submissions once the queue is drained
        instead of exiting (the mode ``repro serve --workers N`` uses).
    worker_id:
        Shard / lease owner name; defaults to a fresh per-process token.
    fsync:
        Fsync shard appends before releasing a job's lease (default on).
    progress:
        Called with one human-readable line per worker event.
    """
    if not Path(study_dir).is_dir():
        raise ExperimentError(f"no study directory at {study_dir}")
    # Every worker of one study shares the study's table directory as its
    # persistent tabulation store (first contact tabulates, everyone else
    # mmaps), unless the operator pinned REPRO_TABLE_CACHE elsewhere.
    os.environ.setdefault(
        _TABLE_CACHE_ENV, str(Path(study_dir) / "tables")
    )
    store = ShardedResultStore.open(
        study_dir, worker_id=worker_id, fsync=fsync
    )
    queue = JobQueue(store.directory, lease_timeout=lease_timeout)
    say = progress if progress is not None else (lambda line: None)
    completed_jobs = 0
    while max_jobs is None or completed_jobs < max_jobs:
        completed = store.load().keys()
        candidates = queue.pending(completed)
        if not candidates:
            if follow:
                time.sleep(poll)
                continue
            break
        claimed = None
        for job in candidates:
            lease = queue.claim(job, store.worker_id)
            if lease is not None:
                claimed = (job, lease)
                break
        if claimed is None:
            # Every pending job is actively leased by another worker;
            # wait for leases to resolve (or go stale) and rescan.
            time.sleep(poll)
            continue
        job, lease = claimed
        say(
            f"[{store.worker_id}] job {job.id} {job.kind} n={job.n} "
            f"seeds={list(job.seed_indices)}"
        )
        try:
            with _Heartbeat(lease, interval=lease_timeout / 4.0):
                rows = execute_unit(job.unit)
                for row in rows:
                    store.append(row)
        finally:
            lease.release()
        completed_jobs += 1
        say(f"[{store.worker_id}] job {job.id} done ({len(rows)} rows)")
    # Drained (or hit the job budget): fold this run's shards into the
    # canonical file so a finished study converges back to one rows.jsonl.
    if not queue.pending(store.load().keys()):
        merged = store.compact()
        if merged:
            say(f"[{store.worker_id}] compacted {merged} rows into canon")
    return completed_jobs
