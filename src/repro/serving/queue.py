"""File-based work queue: cells as idempotent, leased jobs.

The queue lives entirely inside the study directory, so "a queue" needs
no broker — any process that can see the filesystem can submit or drain::

    <study-dir>/queue/
      jobs.jsonl           # append-only job manifest (deduped by job id)
      leases/<jobid>.json  # one atomic claim file per in-flight job

A *job* wraps one work unit of the study planner
(:func:`repro.experiments.study.plan_units`): either a single ``(spec, n,
seed)`` cell or a whole same-spec seed group that the batched engine runs
in lockstep — a batch unit is indivisible here too, so the lanes share
one worker's engine cache exactly as under ``Study.run``.  The job id is
a content hash over the *cell identity* (spec identity seed, ``n``, seed
indices), so re-submitting an overlapping matrix never duplicates work.

The lease protocol is at-least-once by design:

* a claim is ``O_CREAT | O_EXCL`` on the lease file — atomic on every
  platform, first writer wins;
* the owner heartbeats by touching the file's mtime; a lease whose mtime
  is older than the timeout is *stale* and may be broken by any worker
  (re-checked immediately before the unlink to shrink the race window);
* completion is defined by the *store*, not by the queue: a job is done
  exactly when all its cell keys are persisted.  There are no "done"
  markers to desynchronize — crash after append, before release, and the
  job simply reads as complete.

Two workers racing a stale lease can, in the worst interleaving, both run
the job.  That is harmless: cells are deterministic in their coordinates,
so duplicate rows are bit-identical and the store's later-duplicate-wins
union collapses them.  Correctness rides on determinism; the leases only
exist to keep the *work* (not the results) from being duplicated.
"""

from __future__ import annotations

import hashlib
import json
import os
import socket
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Collection, Dict, List, Optional, Sequence, Tuple

from ..core.errors import ExperimentError
from ..experiments.store import CellKey, append_jsonl_line, read_jsonl

__all__ = ["Job", "JobQueue", "Lease", "job_for_unit"]


@dataclass(frozen=True)
class Job:
    """One idempotent unit of study work, keyed by cell identity."""

    id: str
    kind: str  # "cell" | "batch"
    payload: dict  # the spec dictionary (ExperimentSpec.as_dict)
    n: int
    seed_indices: Tuple[int, ...]

    @property
    def unit(self) -> tuple:
        """The planner work unit this job wraps (see ``plan_units``)."""
        if self.kind == "batch":
            return ("batch", self.payload, self.n, self.seed_indices)
        return ("cell", self.payload, self.n, self.seed_indices[0])

    @property
    def cell_keys(self) -> List[CellKey]:
        """The store keys this job produces when complete."""
        variant = self.payload["variant"]
        return [(variant, self.n, seed) for seed in self.seed_indices]

    def as_dict(self) -> dict:
        return {
            "id": self.id,
            "kind": self.kind,
            "payload": self.payload,
            "n": self.n,
            "seed_indices": list(self.seed_indices),
        }

    @classmethod
    def from_dict(cls, record: dict) -> "Job":
        return cls(
            id=record["id"],
            kind=record["kind"],
            payload=dict(record["payload"]),
            n=int(record["n"]),
            seed_indices=tuple(int(s) for s in record["seed_indices"]),
        )


def job_for_unit(unit: tuple) -> Job:
    """Wrap one planner unit as a :class:`Job` with a content-hash id.

    The id hashes the spec's *identity seed* (trajectory-relevant fields
    only — the same derivation the store directory uses) plus the cell
    coordinates, so the same cells enqueued through different matrix
    extents or submission batches dedupe onto one job.
    """
    from ..experiments.study import ExperimentSpec

    kind, payload, n = unit[0], dict(unit[1]), int(unit[2])
    if kind == "batch":
        seeds = tuple(int(s) for s in unit[3])
    elif kind == "cell":
        seeds = (int(unit[3]),)
    else:
        raise ExperimentError(f"unknown work unit kind {kind!r}")
    identity = ExperimentSpec.from_dict(payload).identity_seed()
    canonical = json.dumps([kind, identity, n, list(seeds)])
    job_id = hashlib.sha256(canonical.encode()).hexdigest()[:16]
    return Job(id=job_id, kind=kind, payload=payload, n=n, seed_indices=seeds)


class Lease:
    """An exclusive claim on one job, kept alive by mtime heartbeats."""

    def __init__(self, path: Path, worker_id: str):
        self._path = Path(path)
        self._worker_id = worker_id

    @property
    def path(self) -> Path:
        return self._path

    @property
    def worker_id(self) -> str:
        return self._worker_id

    def heartbeat(self) -> None:
        """Refresh the claim (touch the lease file's mtime)."""
        try:
            os.utime(self._path)
        except OSError:
            pass  # broken by a reclaimer; the job re-runs, rows dedupe

    def release(self) -> None:
        """Drop the claim (idempotent)."""
        try:
            self._path.unlink()
        except OSError:
            pass


class JobQueue:
    """The file-based job queue of one study directory."""

    def __init__(self, directory, lease_timeout: float = 60.0):
        if lease_timeout <= 0:
            raise ExperimentError("lease_timeout must be positive")
        self._directory = Path(directory)
        self._queue_dir = self._directory / "queue"
        self._jobs_path = self._queue_dir / "jobs.jsonl"
        self._leases_dir = self._queue_dir / "leases"
        self._lease_timeout = float(lease_timeout)

    @property
    def jobs_path(self) -> Path:
        """The append-only job manifest."""
        return self._jobs_path

    @property
    def lease_timeout(self) -> float:
        """Seconds without a heartbeat after which a lease is stale."""
        return self._lease_timeout

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def enqueue_units(self, units: Sequence[tuple]) -> List[Job]:
        """Append jobs for the given planner units; returns the new jobs.

        Jobs whose id is already in the manifest are skipped, so
        re-submitting a spec (or extending its matrix, which re-plans the
        still-missing cells) is idempotent.
        """
        existing = {job.id for job in self.jobs()}
        added: List[Job] = []
        for unit in units:
            job = job_for_unit(unit)
            if job.id in existing:
                continue
            append_jsonl_line(self._jobs_path, job.as_dict(), fsync=True)
            existing.add(job.id)
            added.append(job)
        return added

    def jobs(self) -> List[Job]:
        """Every job in the manifest, in submission order (deduped)."""
        jobs: Dict[str, Job] = {}
        for record in read_jsonl(self._jobs_path):
            job = Job.from_dict(record)
            jobs.setdefault(job.id, job)
        return list(jobs.values())

    # ------------------------------------------------------------------
    # Draining
    # ------------------------------------------------------------------
    def pending(self, completed: Collection[CellKey]) -> List[Job]:
        """Jobs with at least one cell missing from ``completed``."""
        completed = set(completed)
        return [
            job
            for job in self.jobs()
            if any(key not in completed for key in job.cell_keys)
        ]

    def _lease_path(self, job: Job) -> Path:
        return self._leases_dir / f"{job.id}.json"

    def lease_state(self, job: Job) -> str:
        """``"free"``, ``"active"`` or ``"stale"`` for one job's lease."""
        try:
            age = time.time() - self._lease_path(job).stat().st_mtime
        except OSError:
            return "free"
        return "stale" if age > self._lease_timeout else "active"

    def claim(self, job: Job, worker_id: str) -> Optional[Lease]:
        """Try to claim ``job``; returns a :class:`Lease` or ``None``.

        A fresh claim is an atomic exclusive create.  A stale lease (no
        heartbeat for longer than the timeout — its owner crashed) is
        broken first: the staleness check is repeated immediately before
        the unlink, and the subsequent create is the same atomic race
        every other worker runs, so at most one claimant wins cleanly
        (and a lost double-unlink interleaving only costs duplicate
        bit-identical work, never a wrong result).
        """
        path = self._lease_path(job)
        self._leases_dir.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(
            {
                "job": job.id,
                "worker": worker_id,
                "pid": os.getpid(),
                "host": socket.gethostname(),
            },
            sort_keys=True,
        ).encode()
        for attempt in range(2):
            try:
                descriptor = os.open(
                    path, os.O_CREAT | os.O_EXCL | os.O_WRONLY
                )
            except FileExistsError:
                if attempt > 0 or self.lease_state(job) != "stale":
                    return None
                try:  # break the stale lease, then retry the atomic create
                    if time.time() - path.stat().st_mtime > self._lease_timeout:
                        path.unlink()
                except OSError:
                    pass
                continue
            try:
                os.write(descriptor, payload)
            finally:
                os.close(descriptor)
            return Lease(path, worker_id)
        return None  # pragma: no cover - both attempts raced

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self, completed: Collection[CellKey]) -> dict:
        """Queue depth and lease states against a completed-cell set."""
        jobs = self.jobs()
        completed = set(completed)
        depth = active = stale = 0
        for job in jobs:
            if all(key in completed for key in job.cell_keys):
                continue
            depth += 1
            state = self.lease_state(job)
            if state == "active":
                active += 1
            elif state == "stale":
                stale += 1
        return {
            "jobs": len(jobs),
            "pending": depth,
            "active": active,
            "stale": stale,
        }
