"""Study serving: sharded stores, a multi-worker job queue, HTTP front end.

Everything below the Study API used to be batch, single-host and
single-writer: one process owned ``rows.jsonl`` end to end.  This package
turns the result store into the coordination point so that scale-out is
*adding workers*:

* :class:`ShardedResultStore` — each writer appends to a private shard
  under the study directory; readers union shards with the canonical
  ``rows.jsonl``; a compaction pass folds shards back into canon;
* :class:`JobQueue` — cells (and the batched engine's indivisible
  seed-group units) become idempotent jobs keyed by their cell identity,
  claimed through atomic lease files with heartbeat + expiry so a crashed
  worker's claim is reclaimed;
* :func:`run_worker` — ``repro worker --study DIR`` drains one study's
  queue from any number of processes or hosts;
* :class:`StudyService` / :func:`serve` — ``repro serve``, a small
  stdlib HTTP service that accepts spec submissions, reports progress and
  serves completed rows as JSON or CSV.

The determinism contract carries through unchanged: every cell derives
its randomness from its own ``(spec identity, n, seed)`` coordinates, so
however many workers drain a study — and however often a crashed claim is
re-run — the merged rows are bit-identical to ``Study.run(jobs=1)``.
"""

from .queue import Job, JobQueue, Lease
from .server import StudyService, make_server, serve
from .store import ShardedResultStore
from .worker import run_worker

__all__ = [
    "Job",
    "JobQueue",
    "Lease",
    "ShardedResultStore",
    "StudyService",
    "make_server",
    "run_worker",
    "serve",
]
