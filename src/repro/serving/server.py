"""``repro serve`` — an HTTP front end over studies, queues and stores.

The service is deliberately small and stdlib-only
(:class:`http.server.ThreadingHTTPServer`): it owns no execution.  A
submission plans the study's missing cells into queue jobs (through the
exact planner ``Study.run`` uses, so batched seed-groups ship as one
indivisible job); any number of ``repro worker`` processes drain them;
the service reads the store's union view to answer progress and result
queries.  Endpoints::

    GET  /                        service + study overview
    GET  /studies                 one summary per study under the root
    POST /studies                 submit {"name": ..., "specs": [...]}
    GET  /studies/<id>            progress (done/total, per-backend,
                                  queue depth, shards); ?watch=SECONDS
                                  long-polls until progress changes
    GET  /studies/<id>/rows       completed rows as JSON
    GET  /studies/<id>/rows.csv   completed rows as flat CSV

``<id>`` is the study directory name (``<name>-<hash12>``), returned by
the submission response.  Submitting the same specs twice — or an
extended matrix — re-plans only the still-missing cells, exactly like
resuming a batch study.
"""

from __future__ import annotations

import csv
import io
import json
import subprocess
import sys
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Dict, List, Optional

from ..core.errors import ExperimentError
from ..experiments.store import ResultStore
from ..experiments.study import ExperimentSpec, RunRow, Study, plan_units
from .queue import JobQueue

__all__ = ["StudyService", "make_server", "serve"]


class StudyService:
    """The serving logic, independent of HTTP (tests drive it directly).

    Parameters
    ----------
    root:
        The store root; every study is a ``<name>-<hash12>`` directory
        under it, shared with ``Study``/``repro run --out``.
    lease_timeout:
        Passed through to each study's :class:`JobQueue` for depth/lease
        reporting and to spawned workers.
    workers:
        When positive, that many ``repro worker --follow`` subprocesses
        are spawned per submitted study (a convenience for single-host
        serving; remote workers attach by pointing ``repro worker`` at
        the study directory).
    """

    def __init__(self, root, lease_timeout: float = 60.0, workers: int = 0):
        self._root = Path(root)
        self._lease_timeout = float(lease_timeout)
        self._workers = int(workers)
        self._worker_processes: Dict[str, List[subprocess.Popen]] = {}

    @property
    def root(self) -> Path:
        return self._root

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, payload: dict) -> dict:
        """Create/extend a study from a submission and enqueue its cells.

        ``payload`` is either ``{"name": str, "specs": [spec dicts]}``
        with each spec dict in :meth:`ExperimentSpec.as_dict` form, or a
        preset submission ``{"preset": "figure2", ...overrides}`` whose
        remaining keys override the preset's CLI options (``n``,
        ``seeds``, ``engine``, ``topology``, ``max_factor``, ...) — the
        specs are then built by the exact code path ``python -m repro
        run`` uses, including its defaults.  Returns the study summary
        (id, directory, enqueued jobs, progress).
        """
        if not isinstance(payload, dict) or not (
            "specs" in payload or "preset" in payload
        ):
            raise ExperimentError(
                'submission must be {"name": ..., "specs": [...]} or '
                '{"preset": ..., ...overrides}'
            )
        if "preset" in payload:
            # Imported lazily: the CLI imports the serving package for
            # `repro serve`, so a module-level import would be a cycle.
            from ..experiments.cli import preset_specs

            overrides = {
                key: value
                for key, value in payload.items()
                if key not in ("preset", "name", "specs")
            }
            if "specs" in payload:
                raise ExperimentError(
                    "a submission is either raw specs or a preset, not both"
                )
            preset = str(payload["preset"])
            name = str(payload.get("name", preset))
            specs = list(preset_specs(preset, overrides))
        else:
            name = str(payload.get("name", "study"))
            specs = [
                ExperimentSpec.from_dict(spec) for spec in payload["specs"]
            ]
        study = Study(specs, name=name, store=self._root)
        store = study.store
        store.write_spec(
            {
                "study": name,
                "hash": study.content_hash(),
                "specs": [spec.as_dict() for spec in specs],
            }
        )
        known = store.load()
        units = plan_units(specs, known.keys())
        queue = JobQueue(store.directory, lease_timeout=self._lease_timeout)
        added = queue.enqueue_units(units)
        self._ensure_workers(store.directory)
        summary = self.progress(store.directory.name)
        summary["enqueued_jobs"] = len(added)
        return summary

    def _ensure_workers(self, directory: Path) -> None:
        """Keep ``self._workers`` follow-mode workers on this study."""
        if self._workers <= 0:
            return
        procs = [
            proc
            for proc in self._worker_processes.get(directory.name, [])
            if proc.poll() is None
        ]
        while len(procs) < self._workers:
            procs.append(
                subprocess.Popen(
                    [
                        sys.executable, "-m", "repro", "worker",
                        "--study", str(directory), "--follow",
                        "--lease-timeout", str(self._lease_timeout),
                        "--quiet",
                    ]
                )
            )
        self._worker_processes[directory.name] = procs

    def shutdown(self) -> None:
        """Terminate every worker subprocess this service spawned."""
        for procs in self._worker_processes.values():
            for proc in procs:
                if proc.poll() is None:
                    proc.terminate()
        for procs in self._worker_processes.values():
            for proc in procs:
                try:
                    proc.wait(timeout=10.0)
                except subprocess.TimeoutExpired:  # pragma: no cover
                    proc.kill()
        self._worker_processes.clear()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def _study_dirs(self) -> List[Path]:
        if not self._root.is_dir():
            return []
        return sorted(
            path
            for path in self._root.iterdir()
            if path.is_dir() and (path / "spec.json").exists()
        )

    def _open(self, study_id: str):
        directory = self._root / study_id
        if not (directory / "spec.json").exists():
            raise ExperimentError(f"unknown study {study_id!r}")
        store = ResultStore.open(directory)
        spec_payload = store.read_spec()
        specs = [
            ExperimentSpec.from_dict(spec)
            for spec in spec_payload.get("specs", [])
        ]
        return store, specs

    def studies(self) -> List[dict]:
        """One progress summary per study directory under the root."""
        return [self.progress(path.name) for path in self._study_dirs()]

    def progress(self, study_id: str) -> dict:
        """Done/total cells, per-backend breakdown, queue depth, shards.

        The matrix (and so ``total``) comes from the latest recorded
        spec.json — an extension submission rewrites it, so progress
        always tracks the widest requested matrix.
        """
        store, specs = self._open(study_id)
        matrix = [
            (spec.variant, n, seed)
            for spec in specs
            for n in spec.n_values
            for seed in range(spec.seeds)
        ]
        rows = store.load()
        done = [key for key in matrix if key in rows]
        by_engine: Dict[str, int] = {}
        for key in done:
            engine = rows[key].get("engine", "?")
            by_engine[engine] = by_engine.get(engine, 0) + 1
        queue = JobQueue(store.directory, lease_timeout=self._lease_timeout)
        return {
            "study": study_id,
            "name": store.read_spec().get("study", study_id),
            "directory": str(store.directory),
            "total": len(matrix),
            "done": len(done),
            "complete": len(done) == len(matrix),
            "by_engine": dict(sorted(by_engine.items())),
            "queue": queue.stats(rows.keys()),
            "shards": len(store.shard_paths()),
        }

    def watch(self, study_id: str, timeout: float = 25.0,
              interval: float = 0.25) -> dict:
        """Long-poll :meth:`progress` until ``done`` changes or timeout."""
        baseline = self.progress(study_id)
        if baseline["complete"]:
            return baseline
        deadline = time.monotonic() + max(0.0, timeout)
        while time.monotonic() < deadline:
            time.sleep(interval)
            current = self.progress(study_id)
            if current["done"] != baseline["done"] or current["complete"]:
                return current
        return self.progress(study_id)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def rows(self, study_id: str) -> List[dict]:
        """Every completed row, in canonical (variant, n, seed) order."""
        store, _ = self._open(study_id)
        persisted = store.load()
        return [persisted[key] for key in sorted(persisted)]

    def rows_csv(self, study_id: str) -> str:
        """The completed rows as flat CSV text (series omitted)."""
        store, _ = self._open(study_id)
        name = store.read_spec().get("study", study_id)
        flat = []
        for payload in self.rows(study_id):
            row = RunRow.from_dict(payload)
            row.study = name
            flat.append(row.flat_dict())
        fieldnames: List[str] = []
        for row in flat:
            for key in row:
                if key not in fieldnames:
                    fieldnames.append(key)
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=fieldnames)
        writer.writeheader()
        for row in flat:
            writer.writerow({key: row.get(key, "") for key in fieldnames})
        return buffer.getvalue()


class _Handler(BaseHTTPRequestHandler):
    """Thin JSON routing over the service (one instance per request)."""

    service: StudyService = None  # set by make_server on the subclass
    quiet = True

    # ------------------------------------------------------------------
    def _send(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, payload, status: int = 200) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        self._send(status, body, "application/json")

    def _error(self, status: int, message: str) -> None:
        self._send_json({"error": message}, status=status)

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if not self.quiet:  # pragma: no cover - debug aid
            super().log_message(format, *args)

    def _query(self) -> Dict[str, str]:
        if "?" not in self.path:
            return {}
        query = {}
        for chunk in self.path.split("?", 1)[1].split("&"):
            if "=" in chunk:
                key, value = chunk.split("=", 1)
                query[key] = value
        return query

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        path = self.path.split("?", 1)[0].rstrip("/")
        try:
            if path in ("", "/index.html"):
                self._send_json(
                    {
                        "service": "repro-serve",
                        "studies": self.service.studies(),
                    }
                )
            elif path == "/studies":
                self._send_json(self.service.studies())
            elif path.startswith("/studies/"):
                parts = path[len("/studies/"):].split("/")
                study_id = parts[0]
                tail = parts[1] if len(parts) > 1 else ""
                if tail in ("", "progress"):
                    watch = self._query().get("watch")
                    if watch is not None:
                        self._send_json(
                            self.service.watch(
                                study_id, timeout=float(watch)
                            )
                        )
                    else:
                        self._send_json(self.service.progress(study_id))
                elif tail == "rows":
                    self._send_json(
                        {
                            "study": study_id,
                            "rows": self.service.rows(study_id),
                        }
                    )
                elif tail == "rows.csv":
                    body = self.service.rows_csv(study_id).encode()
                    self._send(200, body, "text/csv")
                else:
                    self._error(404, f"unknown resource {tail!r}")
            else:
                self._error(404, f"unknown path {path!r}")
        except ExperimentError as error:
            self._error(404, str(error))
        except Exception as error:  # pragma: no cover - defensive
            self._error(500, f"{type(error).__name__}: {error}")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        path = self.path.split("?", 1)[0].rstrip("/")
        if path != "/studies":
            self._error(404, f"unknown path {path!r}")
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            payload = json.loads(self.rfile.read(length) or b"{}")
            summary = self.service.submit(payload)
            self._send_json(summary, status=201)
        except (ExperimentError, json.JSONDecodeError, TypeError,
                ValueError) as error:
            self._error(400, str(error))
        except Exception as error:  # pragma: no cover - defensive
            self._error(500, f"{type(error).__name__}: {error}")


def make_server(
    root,
    host: str = "127.0.0.1",
    port: int = 0,
    lease_timeout: float = 60.0,
    workers: int = 0,
    quiet: bool = True,
):
    """Build a ready-to-serve HTTP server; returns ``(httpd, service)``.

    ``port=0`` binds an ephemeral port (``httpd.server_address[1]`` holds
    the real one) — what the tests and smoke jobs use.
    """
    service = StudyService(root, lease_timeout=lease_timeout,
                           workers=workers)
    handler = type(
        "BoundHandler", (_Handler,), {"service": service, "quiet": quiet}
    )
    httpd = ThreadingHTTPServer((host, port), handler)
    httpd.daemon_threads = True
    return httpd, service


def serve(
    root,
    host: str = "127.0.0.1",
    port: int = 8765,
    lease_timeout: float = 60.0,
    workers: int = 0,
    quiet: bool = False,
) -> int:
    """Run the front end until interrupted (the ``repro serve`` command)."""
    httpd, service = make_server(
        root, host=host, port=port, lease_timeout=lease_timeout,
        workers=workers, quiet=quiet,
    )
    bound_host, bound_port = httpd.server_address[:2]
    print(f"repro serve on http://{bound_host}:{bound_port} "
          f"(store root: {root}, workers per study: {workers})", flush=True)
    try:
        httpd.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    finally:
        httpd.server_close()
        service.shutdown()
    return 0
