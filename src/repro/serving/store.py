"""Per-worker shard writer over the study result store.

A :class:`~repro.experiments.store.ResultStore` already reads the union
of the canonical ``rows.jsonl`` and every shard file; what a concurrent
worker additionally needs is a *private* append target so that no two
processes ever write the same file.  :class:`ShardedResultStore` is that
writer: appends go to ``shards/<worker>.jsonl`` (atomic single-write
lines, fsynced by default so a released lease implies persisted rows),
everything else — union reads, resume, compaction — is inherited.
"""

from __future__ import annotations

import os
import uuid
from typing import Optional

from ..experiments.store import ResultStore, append_jsonl_line

__all__ = ["ShardedResultStore"]


class ShardedResultStore(ResultStore):
    """A result store whose appends target a worker-private shard.

    Parameters
    ----------
    root, name, content_hash:
        As for :class:`~repro.experiments.store.ResultStore` (use
        :meth:`~repro.experiments.store.ResultStore.open` to attach to an
        existing study directory by path).
    worker_id:
        The shard name.  Defaults to a fresh ``w<pid>-<token>`` per
        store instance, so a restarted worker never appends to a file
        that may carry a crashed predecessor's torn tail.
    fsync:
        Defaults to *on* for shard writers: a work-queue lease is only
        released once the job's rows are durable.
    """

    def __init__(self, root, name: str, content_hash: str,
                 worker_id: Optional[str] = None, fsync: bool = True):
        super().__init__(root, name, content_hash, fsync=fsync)
        if worker_id is None:
            worker_id = f"w{os.getpid()}-{uuid.uuid4().hex[:8]}"
        self._worker_id = str(worker_id)
        self._shard_path = self.shards_directory / f"{self._worker_id}.jsonl"

    @property
    def worker_id(self) -> str:
        """The shard name this store appends under."""
        return self._worker_id

    @property
    def shard_path(self):
        """This worker's private shard file."""
        return self._shard_path

    def append(self, row: dict) -> None:
        """Append one row to this worker's shard (atomic, fsynced)."""
        append_jsonl_line(self._shard_path, row, fsync=self._fsync)
