"""Structured trace events.

The simulator can optionally record notable events (rank assignments, resets,
leader elections) into a bounded :class:`TraceLog`.  Traces are intended for
debugging and for the worked examples, not for large experiments, so the log
keeps at most ``capacity`` entries and simply drops the oldest ones beyond
that.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterator, List, Optional

__all__ = ["TraceEvent", "TraceLog"]


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One notable simulation event.

    Attributes
    ----------
    interaction:
        The interaction index (time step) at which the event occurred.
    kind:
        Short machine-readable tag, e.g. ``"rank_assigned"`` or ``"reset"``.
    initiator / responder:
        Indices of the interacting agents.
    detail:
        Optional extra payload (e.g. the assigned rank).
    """

    interaction: int
    kind: str
    initiator: int
    responder: int
    detail: Optional[object] = None


class TraceLog:
    """A bounded log of :class:`TraceEvent` entries."""

    def __init__(self, capacity: int = 10_000):
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self._dropped = 0
        self._capacity = capacity

    @property
    def capacity(self) -> int:
        """Maximum number of retained events."""
        return self._capacity

    @property
    def dropped(self) -> int:
        """Number of events discarded because the log was full."""
        return self._dropped

    def append(self, event: TraceEvent) -> None:
        """Add ``event``, evicting the oldest entry if the log is full."""
        if len(self._events) == self._events.maxlen:
            self._dropped += 1
        self._events.append(event)

    def record(
        self,
        interaction: int,
        kind: str,
        initiator: int,
        responder: int,
        detail: Optional[object] = None,
    ) -> None:
        """Convenience wrapper constructing and appending a :class:`TraceEvent`."""
        self.append(TraceEvent(interaction, kind, initiator, responder, detail))

    def events(self, kind: Optional[str] = None) -> List[TraceEvent]:
        """Return recorded events, optionally filtered by ``kind``."""
        if kind is None:
            return list(self._events)
        return [event for event in self._events if event.kind == kind]

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)
