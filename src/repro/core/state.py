"""Agent state representation for the paper's protocols.

The protocols of Berenbrink et al. operate on a *disjoint union* state space:
at any time each agent holds exactly one of a small set of variables
(``rank``, ``phase``, ``waitCount``, or a leader-election state), optionally
extended in the self-stabilizing protocol by a synthetic ``coin``, the
``aliveCount`` liveness counter and the ``resetCount``/``delayCount`` pair of
the reset sub-protocol.

:class:`AgentState` stores the superset of these variables; every field uses
``None`` to encode the paper's "undefined" value ``⊥``.  The accompanying
:class:`Role` enumeration and :func:`classify_role` implement the paper's
vocabulary (leader-electing, waiting, phase, ranked, propagating, dormant
agents).  Protocol implementations keep the paper's invariant that exactly
one *main* variable is defined; the self-stabilizing protocol must also cope
with adversarial states that violate it, which is why the invariant is
checked by helpers instead of being baked into the data structure.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, fields
from typing import Optional

__all__ = [
    "AgentState",
    "AGENT_STATE_FIELDS",
    "Role",
    "classify_role",
    "UNDEFINED",
]

#: Alias documenting that ``None`` plays the role of the paper's ``⊥``.
UNDEFINED = None

#: Field names of :class:`AgentState` in declaration (= ``as_tuple``) order,
#: derived from the dataclass so a newly added field can never be silently
#: missing from ``codec_fields()`` projections.  Protocols whose agents are
#: plain :class:`AgentState` return this from ``codec_fields()``.
#: (Assigned below the class definition.)


class Role(enum.Enum):
    """The paper's classification of agents by which variable they hold."""

    #: The agent is still executing the leader-election sub-protocol.
    LEADER_ELECTING = "leader_electing"
    #: The agent holds ``waitCount`` (it is the leader waiting out a phase
    #: transition).
    WAITING = "waiting"
    #: The agent holds ``phase`` (it is unranked and tracks the current phase).
    PHASE = "phase"
    #: The agent holds ``rank``.
    RANKED = "ranked"
    #: The agent is propagating a reset (``resetCount > 0``).
    PROPAGATING = "propagating"
    #: The agent finished propagating and waits to restart (``resetCount == 0``
    #: and ``delayCount > 0``).
    DORMANT = "dormant"
    #: None of the above — only possible in adversarial initial configurations
    #: of the self-stabilizing protocol.
    BLANK = "blank"


@dataclass(slots=True)
class AgentState:
    """Mutable state of a single agent.

    Every field defaults to ``None`` (the paper's ``⊥``).  Protocols mutate
    states in place during a transition; :meth:`copy` produces an independent
    snapshot when needed (e.g. for traces or tests).

    Attributes
    ----------
    rank:
        The assigned rank in ``{1, …, n}``, or ``None`` if unranked.
    phase:
        The phase counter of an unranked agent (``{1, …, ⌈log₂ n⌉}``).
    wait_count:
        The leader's wait counter during a phase transition
        (``{1, …, ⌈c_wait log n⌉}``).
    coin:
        The synthetic coin bit (0/1), flipped on every activation
        (self-stabilizing protocol only).
    alive_count:
        The liveness counter of ``Ranking+`` used to detect lack of progress.
    reset_count / delay_count:
        Counters of the ``PropagateReset`` sub-protocol.
    is_leader / leader_done:
        Flags exposed by the leader-election sub-protocols.
    le_count:
        Interaction countdown timer of ``FastLeaderElection`` (``LECount``)
        or of the GS-style substrate.
    coin_count:
        Remaining number of consecutive heads ``FastLeaderElection`` needs to
        observe before declaring leadership (``coinCount``).
    le_level:
        Lottery level used by the GS-style leader-election substrate.
    aux:
        Auxiliary counter used by the baseline protocols (e.g. the
        next-rank counter the Burman-style leader carries); unused by the
        paper's protocols.
    """

    rank: Optional[int] = None
    phase: Optional[int] = None
    wait_count: Optional[int] = None
    coin: Optional[int] = None
    alive_count: Optional[int] = None
    reset_count: Optional[int] = None
    delay_count: Optional[int] = None
    is_leader: Optional[int] = None
    leader_done: Optional[int] = None
    le_count: Optional[int] = None
    coin_count: Optional[int] = None
    le_level: Optional[int] = None
    aux: Optional[int] = None

    # ------------------------------------------------------------------
    # Copying and equality helpers
    # ------------------------------------------------------------------
    # Both helpers are hand-rolled rather than built on dataclasses.replace /
    # dataclasses.fields: the array engine's transition tabulation calls them
    # for every cache miss, and the generic versions cost ~10x as much.
    def copy(self) -> "AgentState":
        """Return an independent copy of this state."""
        return AgentState(
            self.rank,
            self.phase,
            self.wait_count,
            self.coin,
            self.alive_count,
            self.reset_count,
            self.delay_count,
            self.is_leader,
            self.leader_done,
            self.le_count,
            self.coin_count,
            self.le_level,
            self.aux,
        )

    def as_tuple(self) -> tuple:
        """Return the state as a hashable tuple (field order is fixed)."""
        return (
            self.rank,
            self.phase,
            self.wait_count,
            self.coin,
            self.alive_count,
            self.reset_count,
            self.delay_count,
            self.is_leader,
            self.leader_done,
            self.le_count,
            self.coin_count,
            self.le_level,
            self.aux,
        )

    # ------------------------------------------------------------------
    # Queries used throughout the protocols
    # ------------------------------------------------------------------
    @property
    def is_ranked(self) -> bool:
        """Whether the agent currently holds a rank."""
        return self.rank is not None

    @property
    def is_phase_agent(self) -> bool:
        """Whether the agent currently holds a phase counter."""
        return self.phase is not None

    @property
    def is_waiting(self) -> bool:
        """Whether the agent currently holds a wait counter."""
        return self.wait_count is not None

    @property
    def in_leader_election(self) -> bool:
        """Whether the agent holds any leader-election variable (``qLE ≠ ⊥``)."""
        return self.leader_done is not None

    @property
    def is_propagating(self) -> bool:
        """Whether the agent is propagating a reset."""
        return self.reset_count is not None and self.reset_count > 0

    @property
    def is_dormant(self) -> bool:
        """Whether the agent is dormant (reset finished, waiting to restart)."""
        return (
            self.reset_count is not None
            and self.reset_count == 0
            and self.delay_count is not None
            and self.delay_count > 0
        )

    @property
    def in_reset(self) -> bool:
        """Whether the agent holds any ``PropagateReset`` variable."""
        return self.reset_count is not None or self.delay_count is not None

    def main_variables(self) -> dict[str, int]:
        """Return the defined *main* variables (rank/phase/waitCount/LE).

        The paper's protocols maintain the invariant that exactly one main
        variable is defined; the returned mapping makes that easy to assert
        in tests without constraining adversarial configurations.
        """
        defined: dict[str, int] = {}
        if self.rank is not None:
            defined["rank"] = self.rank
        if self.phase is not None:
            defined["phase"] = self.phase
        if self.wait_count is not None:
            defined["wait_count"] = self.wait_count
        if self.leader_done is not None:
            defined["leader_election"] = self.leader_done
        return defined

    # ------------------------------------------------------------------
    # Mutation helpers shared by the protocol implementations
    # ------------------------------------------------------------------
    def clear(self, *, keep_coin: bool = False) -> None:
        """Set every variable to ``⊥``, optionally preserving the coin.

        The paper's reset and role-switch rules repeatedly "forget" all state
        except the synthetic coin; this helper centralizes that operation.
        """
        coin = self.coin if keep_coin else None
        self.rank = None
        self.phase = None
        self.wait_count = None
        self.alive_count = None
        self.reset_count = None
        self.delay_count = None
        self.is_leader = None
        self.leader_done = None
        self.le_count = None
        self.coin_count = None
        self.le_level = None
        self.aux = None
        self.coin = coin

    def clear_leader_election(self) -> None:
        """Forget all leader-election variables (``qLE ← ⊥``)."""
        self.is_leader = None
        self.leader_done = None
        self.le_count = None
        self.coin_count = None
        self.le_level = None

    def toggle_coin(self) -> None:
        """Flip the synthetic coin if the agent has one (cf. Protocol 3, line 9)."""
        if self.coin is not None:
            self.coin = 1 - self.coin


AGENT_STATE_FIELDS = tuple(field.name for field in fields(AgentState))


def classify_role(state: AgentState) -> Role:
    """Classify ``state`` into the paper's agent roles.

    Reset-related roles take precedence because a propagating or dormant
    agent has forgotten all its other variables by construction; the ordering
    below also gives a sensible answer for adversarial configurations in
    which several variables are defined simultaneously.
    """
    if state.is_propagating:
        return Role.PROPAGATING
    if state.is_dormant:
        return Role.DORMANT
    if state.in_leader_election:
        return Role.LEADER_ELECTING
    if state.is_waiting:
        return Role.WAITING
    if state.is_phase_agent:
        return Role.PHASE
    if state.is_ranked:
        return Role.RANKED
    return Role.BLANK
