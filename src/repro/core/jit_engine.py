"""Optional numba-compiled variant of the array engine's chunk loops.

The array engine's table paths are numpy-vectorized but still pay Python
dispatch per chunk step; with `numba <https://numba.pydata.org/>`_
available, the innermost dense-table walk compiles to one native loop
over the whole chunk.  numba is an *optional* dependency: this module
imports it lazily and degrades explicitly —
:func:`numba_unavailable_reason` answers why compilation is off (the
backend registry surfaces that as its capability reason), and
:class:`JitArraySimulator` falls back to the plain
:class:`~repro.core.array_engine.ArraySimulator` behaviour rather than
letting an ``ImportError`` escape, so environments without numba (CI's
``no-numba`` leg, minimal installs) lose only speed, never runs.
"""

from __future__ import annotations

from typing import Optional

from .array_engine import (
    _CHANGED_BIT,
    _CODE_MASK,
    _CODE_BITS,
    _RANK_FIELD,
    _RESET_BIT,
    ArraySimulator,
)

__all__ = [
    "JitArraySimulator",
    "numba_available",
    "numba_unavailable_reason",
]

#: Memoized import outcome: ``None`` until probed, then ``(module, reason)``
#: with exactly one of the two set.
_NUMBA_PROBE: Optional[tuple] = None


def _probe_numba():
    global _NUMBA_PROBE
    if _NUMBA_PROBE is None:
        try:
            import numba
        except Exception as exc:  # ImportError, or a broken install
            _NUMBA_PROBE = (None, f"numba is not installed ({exc.__class__.__name__})")
        else:
            _NUMBA_PROBE = (numba, None)
    return _NUMBA_PROBE


def numba_available() -> bool:
    """Whether the compiled chunk loops can be built in this process."""
    return _probe_numba()[0] is not None


def numba_unavailable_reason() -> Optional[str]:
    """Why compilation is unavailable, or ``None`` when numba imports."""
    module, reason = _probe_numba()
    if module is not None:
        return None
    return "numba is not installed"


#: Memoized compiled kernel (compilation is paid once per process).
_COMPILED_DENSE_LOOP = None


def _dense_chunk_loop():
    """Compile (once) the dense-mode chunk walk as a native loop.

    The loop mirrors ``ArraySimulator._advance``'s dense path exactly:
    for each ordered pair, look up the packed transition, write both next
    codes, and accumulate the changed/rank/reset flags — the same packed
    layout (:data:`_CODE_MASK`, :data:`_CHANGED_BIT`, :data:`_RANK_FIELD`,
    :data:`_RESET_BIT`), so trajectories stay bit-identical.
    """
    global _COMPILED_DENSE_LOOP
    if _COMPILED_DENSE_LOOP is not None:
        return _COMPILED_DENSE_LOOP
    numba, _ = _probe_numba()
    if numba is None:
        return None

    @numba.njit(cache=False)
    def dense_loop(codes, initiators, responders, packed, size):
        changed = False
        ranks = 0
        resets = 0
        for index in range(len(initiators)):
            i = initiators[index]
            j = responders[index]
            value = packed[codes[i] * size + codes[j]]
            codes[i] = value & _CODE_MASK
            codes[j] = (value >> _CODE_BITS) & _CODE_MASK
            if value & _CHANGED_BIT:
                changed = True
            if value & _RANK_FIELD:
                ranks += 1
            if value & _RESET_BIT:
                resets += 1
        return changed, ranks, resets

    _COMPILED_DENSE_LOOP = dense_loop
    return dense_loop


class JitArraySimulator(ArraySimulator):
    """:class:`ArraySimulator` with numba-compiled dense chunk walks.

    Dense mode (complete packed tables) is where a native loop pays off:
    the entire chunk becomes one compiled call with zero per-step Python —
    applying every pair in order through the packed outcome matrix, which
    is the dense walk's exact semantics (the parent's bulk eliminations
    are optimizations with identical observable behaviour).  Lazy and
    object modes inherit the parent paths unchanged — their cost is
    dominated by tabulation and protocol Python, which compilation cannot
    reach.  Without numba the class *is* the parent: construction
    succeeds, every run takes the interpreted paths, and the only signal
    is :func:`numba_available` (the backend registry reports the cell as
    unsupported before it gets here, but direct construction must degrade
    gracefully too).
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._jit_loop = _dense_chunk_loop()

    def _process_chunk(self, pairs) -> None:
        loop = self._jit_loop
        if loop is None or self._mode != "dense":
            super()._process_chunk(pairs)
            return
        kernel = self._kernel
        changed, ranks, resets = loop(
            self._codes_np,
            pairs[:, 0],
            pairs[:, 1],
            kernel.packed.reshape(-1),
            kernel.packed.shape[0],
        )
        # The walk paths keep the Python code list as the canonical view;
        # mirror the natively updated array back into it.
        self._code_list = self._codes_np.tolist()
        self._interactions += len(pairs)
        self._rank_assignments += ranks
        self._resets += resets
        if changed:
            self._changed_since_check = True
