"""Optional numba-compiled variant of the array engine's chunk loops.

The array engine's table paths are numpy-vectorized but still pay Python
dispatch per chunk step; with `numba <https://numba.pydata.org/>`_
available, the innermost loops compile to native code.  Three loops are
covered: the dense-table chunk walk (one compiled call per chunk), the
lazy-mode walk (a compiled prefix over a sorted snapshot of the pair
cache, delegating to the interpreted walk at the first un-snapshot pair),
and the batched engine's lockstep step loop (compiled fast-forward
through warm steps, returning to the interpreted loop at the first miss).
numba is an *optional* dependency: this module imports it lazily and
degrades explicitly — :func:`numba_unavailable_reason` answers why
compilation is off (the backend registry surfaces that as its capability
reason), and :class:`JitArraySimulator` falls back to the plain
:class:`~repro.core.array_engine.ArraySimulator` behaviour rather than
letting an ``ImportError`` escape, so environments without numba (CI's
``no-numba`` leg, minimal installs) lose only speed, never runs.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .array_engine import (
    _CHANGED_BIT,
    _CODE_MASK,
    _CODE_BITS,
    _RANK_FIELD,
    _RESET_BIT,
    ArraySimulator,
)

__all__ = [
    "JitArraySimulator",
    "batched_lockstep_loop",
    "numba_available",
    "numba_unavailable_reason",
]

#: New tabulations tolerated before the lazy walk's sorted snapshot is
#: rebuilt (base plus an eighth of the snapshot, like the batched
#: engine's sorted-array sync cadence).  Staleness is a pure performance
#: matter: pairs missing from the snapshot fall back to the interpreted
#: walk, never to a wrong value.
_SNAP_SYNC_BASE = 64

#: Memoized import outcome: ``None`` until probed, then ``(module, reason)``
#: with exactly one of the two set.
_NUMBA_PROBE: Optional[tuple] = None


def _probe_numba():
    global _NUMBA_PROBE
    if _NUMBA_PROBE is None:
        try:
            import numba
        except Exception as exc:  # ImportError, or a broken install
            _NUMBA_PROBE = (None, f"numba is not installed ({exc.__class__.__name__})")
        else:
            _NUMBA_PROBE = (numba, None)
    return _NUMBA_PROBE


def numba_available() -> bool:
    """Whether the compiled chunk loops can be built in this process."""
    return _probe_numba()[0] is not None


def numba_unavailable_reason() -> Optional[str]:
    """Why compilation is unavailable, or ``None`` when numba imports."""
    module, reason = _probe_numba()
    if module is not None:
        return None
    return "numba is not installed"


#: Memoized compiled kernel (compilation is paid once per process).
_COMPILED_DENSE_LOOP = None


def _dense_chunk_loop():
    """Compile (once) the dense-mode chunk walk as a native loop.

    The loop mirrors ``ArraySimulator._advance``'s dense path exactly:
    for each ordered pair, look up the packed transition, write both next
    codes, and accumulate the changed/rank/reset flags — the same packed
    layout (:data:`_CODE_MASK`, :data:`_CHANGED_BIT`, :data:`_RANK_FIELD`,
    :data:`_RESET_BIT`), so trajectories stay bit-identical.
    """
    global _COMPILED_DENSE_LOOP
    if _COMPILED_DENSE_LOOP is not None:
        return _COMPILED_DENSE_LOOP
    numba, _ = _probe_numba()
    if numba is None:
        return None

    @numba.njit(cache=False)
    def dense_loop(codes, initiators, responders, packed, size):
        changed = False
        ranks = 0
        resets = 0
        for index in range(len(initiators)):
            i = initiators[index]
            j = responders[index]
            value = packed[codes[i] * size + codes[j]]
            codes[i] = value & _CODE_MASK
            codes[j] = (value >> _CODE_BITS) & _CODE_MASK
            if value & _CHANGED_BIT:
                changed = True
            if value & _RANK_FIELD:
                ranks += 1
            if value & _RESET_BIT:
                resets += 1
        return changed, ranks, resets

    _COMPILED_DENSE_LOOP = dense_loop
    return dense_loop


#: Memoized compiled lazy-walk kernel.
_COMPILED_LAZY_WALK = None


def _lazy_walk_loop():
    """Compile (once) the lazy-mode walk prefix as a native loop.

    The loop mirrors ``ArraySimulator._walk_all``'s warm path exactly —
    per ordered pair: probe the packed key, apply both next codes,
    accumulate the changed/rank/reset flags — except the probe runs
    against a *sorted snapshot* of the pair cache (binary search) instead
    of the live dict, and the loop stops in front of the first pair the
    snapshot does not hold.  The caller finishes the chunk on the
    interpreted walk, which consults the live dict and can tabulate, so
    a stale snapshot costs speed, never correctness.
    """
    global _COMPILED_LAZY_WALK
    if _COMPILED_LAZY_WALK is not None:
        return _COMPILED_LAZY_WALK
    numba, _ = _probe_numba()
    if numba is None:
        return None

    @numba.njit(cache=False)
    def lazy_walk(codes, initiators, responders, sorted_keys, sorted_vals):
        walked = 0
        changed = False
        ranks = 0
        resets = 0
        count = sorted_keys.shape[0]
        for index in range(len(initiators)):
            i = initiators[index]
            j = responders[index]
            key = (codes[i] << _CODE_BITS) | codes[j]
            pos = np.searchsorted(sorted_keys, key)
            if pos >= count or sorted_keys[pos] != key:
                break
            value = sorted_vals[pos]
            codes[i] = value & _CODE_MASK
            codes[j] = (value >> _CODE_BITS) & _CODE_MASK
            walked += 1
            if value & _CHANGED_BIT:
                changed = True
            if value & _RANK_FIELD:
                ranks += 1
            if value & _RESET_BIT:
                resets += 1
        return walked, changed, ranks, resets

    _COMPILED_LAZY_WALK = lazy_walk
    return lazy_walk


#: Memoized compiled batched lockstep kernel.
_COMPILED_LOCKSTEP_LOOP = None


def batched_lockstep_loop():
    """Compile (once) the batched engine's lockstep step loop.

    Fast-forwards ``BatchedArraySimulator._run_segment`` through
    consecutive fully-warm steps: for each step, gather both codes of
    every lane, look the packed outcome up in a flat direct-address table
    (the dense table or the LUT mirror, both addressed ``a * dim + b``
    with ``-1`` as the miss sentinel), and — only once every lane hit —
    scatter the next codes back.  Returns the first step *not* applied
    (a step with at least one miss, left untouched for the interpreted
    loop to resolve), or ``seg`` when the segment completed.  Applied
    steps record their packed values in ``vals_block`` so the caller's
    flag accumulation sees exactly what the interpreted loop would have
    written.
    """
    global _COMPILED_LOCKSTEP_LOOP
    if _COMPILED_LOCKSTEP_LOOP is not None:
        return _COMPILED_LOCKSTEP_LOOP
    numba, _ = _probe_numba()
    if numba is None:
        return None

    @numba.njit(cache=False)
    def lockstep_loop(flat, gij, table_flat, dim, vals_block, width, start, seg):
        for step in range(start, seg):
            # Probe every lane before writing anything: a step with a
            # miss must be left exactly pre-step for the interpreted
            # resolver (which batch-evaluates the misses and may demote).
            for lane in range(width):
                value = table_flat[
                    flat[gij[step, lane]] * dim + flat[gij[step, width + lane]]
                ]
                if value < 0:
                    return step
                vals_block[step, lane] = value
            # Lanes occupy disjoint agent ranges and i != j within a
            # lane, so per-lane immediate writes match the interpreted
            # loop's gather-all-then-scatter-all semantics.
            for lane in range(width):
                value = vals_block[step, lane]
                flat[gij[step, lane]] = value & _CODE_MASK
                flat[gij[step, width + lane]] = (value >> _CODE_BITS) & _CODE_MASK
        return seg

    _COMPILED_LOCKSTEP_LOOP = lockstep_loop
    return lockstep_loop


class JitArraySimulator(ArraySimulator):
    """:class:`ArraySimulator` with numba-compiled chunk walks.

    Dense mode (complete packed tables) is where a native loop pays off
    most: the entire chunk becomes one compiled call with zero per-step
    Python — applying every pair in order through the packed outcome
    matrix, which is the dense walk's exact semantics (the parent's bulk
    eliminations are optimizations with identical observable behaviour).
    Lazy mode compiles the *warm prefix* of each walk: pairs already in
    a sorted snapshot of the pair cache run natively, and the walk
    returns to the interpreted parent at the first pair the snapshot
    misses (tabulation and demotion stay pure Python).  Object mode
    inherits the parent paths unchanged — its cost is protocol Python,
    which compilation cannot reach.  Without numba the class *is* the
    parent: construction succeeds, every run takes the interpreted
    paths, and the only signal is :func:`numba_available` (the backend
    registry reports the cell as unsupported before it gets here, but
    direct construction must degrade gracefully too).
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._jit_loop = _dense_chunk_loop()
        self._jit_walk = _lazy_walk_loop()
        self._jit_sk: Optional[np.ndarray] = None
        self._jit_sv: Optional[np.ndarray] = None
        self._jit_snap_len = 0

    def _process_chunk(self, pairs) -> None:
        loop = self._jit_loop
        if loop is None or self._mode != "dense":
            super()._process_chunk(pairs)
            return
        kernel = self._kernel
        changed, ranks, resets = loop(
            self._codes_np,
            pairs[:, 0],
            pairs[:, 1],
            kernel.packed.reshape(-1),
            kernel.packed.shape[0],
        )
        # The walk paths keep the Python code list as the canonical view;
        # mirror the natively updated array back into it.
        self._code_list = self._codes_np.tolist()
        self._interactions += len(pairs)
        self._rank_assignments += ranks
        self._resets += resets
        if changed:
            self._changed_since_check = True

    # ------------------------------------------------------------------
    # Compiled lazy walk
    # ------------------------------------------------------------------
    def _jit_snapshot(self):
        """Sorted (keys, values) snapshot of the pair cache, resynced on
        the usual base-plus-an-eighth cadence."""
        pair_dict = self._kernel.pair_dict
        count = len(pair_dict)
        if self._jit_sk is not None and count < (
            self._jit_snap_len
            + _SNAP_SYNC_BASE
            + (self._jit_snap_len >> 3)
        ):
            return self._jit_sk, self._jit_sv
        keys = np.fromiter(pair_dict.keys(), dtype=np.int64, count=count)
        vals = np.fromiter(pair_dict.values(), dtype=np.int64, count=count)
        order = np.argsort(keys)
        self._jit_sk = keys[order]
        self._jit_sv = vals[order]
        self._jit_snap_len = count
        return self._jit_sk, self._jit_sv

    def _jit_walk_prefix(self, ai, ar) -> int:
        """Run the compiled warm prefix over ``(ai, ar)``; returns how
        many leading pairs it consumed (their effects fully applied)."""
        sk, sv = self._jit_snapshot()
        walked, changed, ranks, resets = self._jit_walk(
            self._codes_np,
            np.asarray(ai, dtype=np.int64),
            np.asarray(ar, dtype=np.int64),
            sk,
            sv,
        )
        if walked:
            self._code_list = self._codes_np.tolist()
            self._interactions += walked
            self._rank_assignments += ranks
            self._resets += resets
            if changed:
                self._changed_since_check = True
        return walked

    def _walk_all(self, ai, ar) -> None:
        if self._jit_walk is None or self._mode != "lazy":
            super()._walk_all(ai, ar)
            return
        walked = self._jit_walk_prefix(ai, ar)
        if walked < len(ai):
            super()._walk_all(ai[walked:], ar[walked:])

    def _walk_while_tabulated(self, ai, ar) -> int:
        if self._jit_walk is None or self._mode != "lazy":
            return super()._walk_while_tabulated(ai, ar)
        walked = self._jit_walk_prefix(ai, ar)
        if walked < len(ai):
            # The snapshot may simply be stale: let the interpreted walk
            # (live dict) extend the run before declaring the stop point.
            walked += super()._walk_while_tabulated(ai[walked:], ar[walked:])
        return walked
