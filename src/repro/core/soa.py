"""Struct-of-arrays (SoA) vectorized kernels for the array engine.

The array engine's table paths resolve *every* state-changing interaction
through an ordered scalar walk (:mod:`repro.core.array_engine`), which is
exact but caps the mid-run regime of the paper's protocols at roughly half a
microsecond per interaction: while many unranked agents toggle synthetic
coins and churn liveness counters, nearly every pair writes *something* and
nothing retires in bulk.  This module defines the protocol-provided escape
hatch: a protocol that understands its own hot path can hand the engine a
:class:`VectorizedKernel` that consumes chunk *prefixes* with numpy
column operations instead of per-pair Python.

The division of labour:

* :class:`~repro.core.codec.StateCodec` projects interned states into
  per-field integer columns (``field_columns``) and back
  (``variant_code``) — states stay the single source of truth; columns are
  a view.
* :class:`ColumnStore` owns the per-*code* columns (grown incrementally as
  the codec interns new states), the live per-*agent* code array shared
  with the engine, and a memoized field-update → code lookup.
* A :class:`VectorizedKernel` (implemented per protocol, see
  ``StableRanking.vectorized_kernel`` and
  ``OneWayEpidemicProtocol.vectorized_kernel``) declares the fields it
  needs via :meth:`~VectorizedKernel.columns` and consumes pair chunks via
  :meth:`~VectorizedKernel.apply_chunk`.

Exactness contract
------------------
``apply_chunk`` must preserve *sequential* semantics bit-for-bit: the
committed prefix must leave the population in exactly the configuration the
reference :class:`~repro.core.simulation.Simulator` would reach after the
same pairs, and the returned statistics must match the reference's
transition results for those pairs.  A kernel is free to stop early — at
the first pair whose outcome it cannot prove vectorizedly (a rank
assignment, a reset, an agent in a state class outside its fast path) — by
returning ``processed < len(pairs)``; the engine then resolves the
following pairs through its validated ordered walk and re-enters the
kernel.  Returning ``processed == 0`` is always safe, so kernels should be
*conservative*: when in doubt about a pair, stop before it.

Kernels receive per-pair **agent indices**, not state codes: exact chunk
processing is all about the order in which the same agent re-appears
(synthetic-coin parity, counter chains), which the codes alone cannot
express.  The current codes are one gather away via ``columns.codes``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Protocol, Sequence, Tuple, runtime_checkable

import numpy as np

__all__ = [
    "ChunkOutcome",
    "ColumnStore",
    "VectorizedKernel",
    "grow_column",
    "occurrence_index",
]


def grow_column(column: np.ndarray, filled: int, size: int,
                minimum: int = 256) -> np.ndarray:
    """Return ``column`` with capacity ≥ ``size``, preserving ``filled``.

    The shared growth step of every incrementally classified per-code
    array (the column store and the kernels' derived attribute arrays):
    capacity doubles so amortized growth is linear, and only the filled
    prefix is copied — entries beyond it are uninitialized.
    """
    if size <= len(column):
        return column
    capacity = max(minimum, 2 * len(column), size)
    grown = np.empty(capacity, dtype=column.dtype)
    grown[:filled] = column[:filled]
    return grown


@dataclass(slots=True)
class ChunkOutcome:
    """What a kernel did with (a prefix of) a pair chunk.

    Attributes
    ----------
    processed:
        Number of pairs consumed exactly, counted from the front of the
        chunk.  The engine resolves ``pairs[processed:]`` itself.
    changed:
        Whether any committed pair changed some agent's state — drives the
        engine's convergence-check skipping exactly like the reference
        simulator's per-step ``TransitionResult.changed``.
    rank_assignments:
        Ranks assigned inside the prefix (the shipped kernels stop *before*
        rank-assigning pairs, so they always report 0).
    resets:
        Resets triggered inside the prefix (likewise 0 for kernels that
        stop before reset-triggering pairs).
    reset_positions:
        Chunk-relative positions of those resets, or ``None`` when
        ``resets`` is 0.  Single-population engines only need the count;
        the batched engine feeds one kernel call with pairs from many
        independent replicas and attributes each reset to its replica by
        position.
    """

    processed: int
    changed: bool = False
    rank_assignments: int = 0
    resets: int = 0
    reset_positions: Optional[list] = None


@runtime_checkable
class VectorizedKernel(Protocol):
    """Optional protocol-provided fast path for the array engine.

    Protocols opt in by returning an implementation from
    :meth:`~repro.core.protocol.PopulationProtocol.vectorized_kernel`.
    """

    def columns(self) -> Tuple[str, ...]:
        """State field names the kernel reads through the column store."""
        ...  # pragma: no cover - protocol signature

    def apply_chunk(
        self,
        initiators: np.ndarray,
        responders: np.ndarray,
        columns: "ColumnStore",
        rng: np.random.Generator,
    ) -> ChunkOutcome:
        """Exactly consume a maximal prefix of the ordered pair chunk.

        ``initiators``/``responders`` are parallel int64 arrays of agent
        indices (one ordered pair per position, in simulation order).
        State reads and writes go through ``columns``; ``rng`` is the
        run's generator and must not be consumed by tabulated protocols.
        """
        ...  # pragma: no cover - protocol signature


def occurrence_index(agents: np.ndarray) -> np.ndarray:
    """For each position, count earlier positions holding the same agent.

    The workhorse of coin-parity bookkeeping: an agent's synthetic coin at
    its ``k``-th appearance as responder differs from its chunk-start coin
    by the parity of ``k``.  Runs in one stable argsort over the chunk.
    """
    count = len(agents)
    if count == 0:
        return np.empty(0, dtype=np.int64)
    order = np.argsort(agents, kind="stable")
    sorted_agents = agents[order]
    is_start = np.empty(count, dtype=bool)
    is_start[0] = True
    np.not_equal(sorted_agents[1:], sorted_agents[:-1], out=is_start[1:])
    starts = np.flatnonzero(is_start)
    lengths = np.diff(np.append(starts, count))
    within = np.arange(count, dtype=np.int64) - np.repeat(starts, lengths)
    occurrence = np.empty(count, dtype=np.int64)
    occurrence[order] = within
    return occurrence


class ColumnStore:
    """Per-code field columns plus the live per-agent code view.

    One store is built per :class:`~repro.core.array_engine.ArraySimulator`
    run; the underlying codec may be shared across runs through an
    :class:`~repro.core.array_engine.EngineCache`, so the store grows its
    columns lazily whenever the codec has interned states it has not
    projected yet.
    """

    __slots__ = (
        "_codec",
        "_fields",
        "_columns",
        "_filled",
        "_variants",
        "_codes",
        "_code_list",
    )

    def __init__(self, codec, fields: Sequence[str]):
        self._codec = codec
        self._fields: Tuple[str, ...] = tuple(fields)
        self._columns: Dict[str, np.ndarray] = {
            field: np.empty(0, dtype=np.int64) for field in self._fields
        }
        self._filled = 0
        self._variants: Dict[tuple, int] = {}
        self._codes: Optional[np.ndarray] = None
        self._code_list: Optional[list] = None

    # ------------------------------------------------------------------
    # Live population view
    # ------------------------------------------------------------------
    def bind(self, codes: np.ndarray, code_list: list) -> None:
        """Attach the engine's canonical per-agent code containers."""
        self._codes = codes
        self._code_list = code_list

    @property
    def codec(self):
        """The underlying :class:`~repro.core.codec.StateCodec`."""
        return self._codec

    @property
    def fields(self) -> Tuple[str, ...]:
        """The projected field names, in declaration order."""
        return self._fields

    @property
    def codes(self) -> np.ndarray:
        """The live per-agent code array (shared with the engine)."""
        return self._codes

    @property
    def size(self) -> int:
        """Number of codes currently covered by the columns."""
        return self._filled

    def commit(self, agents: Sequence[int], codes: Sequence[int]) -> None:
        """Write updated codes for ``agents`` into both engine views."""
        self._codes[list(agents)] = list(codes)
        code_list = self._code_list
        for agent, code in zip(agents, codes):
            code_list[agent] = code

    # ------------------------------------------------------------------
    # Column access
    # ------------------------------------------------------------------
    def refresh(self) -> int:
        """Extend the columns over newly interned codes; return the size."""
        size = self._codec.size
        filled = self._filled
        if size > filled:
            fresh = self._codec.field_columns(self._fields, start=filled)
            for field, column in self._columns.items():
                column = grow_column(column, filled, size)
                column[filled:size] = fresh[field]
                self._columns[field] = column
            self._filled = size
        return self._filled

    def column(self, field: str) -> np.ndarray:
        """The per-code column for ``field`` (length ≥ ``codec.size``).

        Undefined values (``None`` in the state object) read as ``-1``.
        Treat as read-only; the store owns the buffers.
        """
        self.refresh()
        return self._columns[field]

    # ------------------------------------------------------------------
    # Back-projection
    # ------------------------------------------------------------------
    def variant(self, code: int, **updates) -> int:
        """Memoized :meth:`~repro.core.codec.StateCodec.variant_code`."""
        key = (code, tuple(sorted(updates.items())))
        cached = self._variants.get(key)
        if cached is None:
            cached = self._codec.variant_code(code, **updates)
            self._variants[key] = cached
        return cached
