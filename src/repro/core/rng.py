"""Random number generation helpers.

Population protocol simulations are Monte-Carlo experiments, so every entry
point in the library accepts either an integer seed or an already constructed
:class:`numpy.random.Generator`.  This module centralizes that normalization
and provides deterministic seed spawning for repeated or parallel runs.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

import numpy as np

__all__ = [
    "RandomState",
    "make_rng",
    "spawn_seeds",
    "spawn_rngs",
    "cell_seed_sequences",
]

#: Anything accepted where a source of randomness is expected.
RandomState = Union[None, int, np.random.Generator, np.random.SeedSequence]


def make_rng(random_state: RandomState = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``random_state``.

    Parameters
    ----------
    random_state:
        ``None`` for OS entropy, an ``int`` seed, a ``SeedSequence``, or an
        existing ``Generator`` (returned unchanged).
    """
    if isinstance(random_state, np.random.Generator):
        return random_state
    if isinstance(random_state, np.random.SeedSequence):
        return np.random.default_rng(random_state)
    if random_state is None or isinstance(random_state, (int, np.integer)):
        return np.random.default_rng(random_state)
    raise TypeError(
        f"random_state must be None, int, SeedSequence or Generator, "
        f"got {type(random_state).__name__}"
    )


def spawn_seeds(random_state: RandomState, count: int) -> list[np.random.SeedSequence]:
    """Derive ``count`` independent seed sequences from ``random_state``.

    The derivation is deterministic for a fixed integer seed, which makes
    repeated experiments reproducible while keeping the child streams
    statistically independent.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(random_state, np.random.SeedSequence):
        base = random_state
    elif isinstance(random_state, np.random.Generator):
        # Derive a seed from the generator's stream; this consumes entropy
        # from the generator, which is intended.
        base = np.random.SeedSequence(int(random_state.integers(0, 2**63 - 1)))
    else:
        base = np.random.SeedSequence(random_state)
    return list(base.spawn(count))


def spawn_rngs(random_state: RandomState, count: int) -> list[np.random.Generator]:
    """Return ``count`` independent generators derived from ``random_state``."""
    return [np.random.default_rng(seq) for seq in spawn_seeds(random_state, count)]


def cell_seed_sequences(
    identity_seed: int, n: int, seed_index: int, count: int = 3
) -> list[np.random.SeedSequence]:
    """``count`` independent seed sequences for one experiment cell.

    The canonical derivation of a study cell's randomness from its
    coordinates: entropy ``[identity_seed, n, seed_index]`` through
    :class:`numpy.random.SeedSequence`, spawned into ``count`` children
    (workload, run, events in the experiment layer's convention).  It is
    deterministic and process-stable (unlike ``hash()``), which makes
    parallel studies bit-identical to serial ones, and it depends only on
    the cell's own coordinates — never on which cells run alongside it —
    which is what lets the batched engine advance any subset of a cell
    group with streams identical to per-seed serial execution.
    """
    base = np.random.SeedSequence([int(identity_seed), int(n), int(seed_index)])
    return list(base.spawn(count))


def geometric(rng: np.random.Generator, success_probability: float) -> int:
    """Sample the number of Bernoulli trials up to and including the first success.

    A thin wrapper around :meth:`numpy.random.Generator.geometric` that guards
    against degenerate probabilities.  Used by the event-driven simulators to
    skip runs of no-op interactions exactly.
    """
    if not 0.0 < success_probability <= 1.0:
        raise ValueError(
            f"success_probability must be in (0, 1], got {success_probability}"
        )
    if success_probability == 1.0:
        return 1
    return int(rng.geometric(success_probability))


def choice_weighted(
    rng: np.random.Generator,
    items: Sequence,
    weights: Iterable[float],
) -> object:
    """Pick one element of ``items`` with probability proportional to ``weights``."""
    weights = np.asarray(list(weights), dtype=float)
    if len(items) != len(weights):
        raise ValueError("items and weights must have the same length")
    total = float(weights.sum())
    if total <= 0:
        raise ValueError("weights must have a positive sum")
    index = rng.choice(len(items), p=weights / total)
    return items[int(index)]
